//! Quickstart: build a small hierarchical problem, run HierMinimax, and
//! inspect the fairness metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use hierminimax::core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hierminimax::core::metrics::evaluate;
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::scenarios;
use hierminimax::simnet::Parallelism;

fn main() {
    // 1. Data: a miniature client-edge-cloud scenario — 4 edge areas of
    //    2 clients each, one image class per edge area (maximally
    //    heterogeneous, like the paper's §6.1 setup).
    let scenario = scenarios::tiny_problem(4, 2, 42);

    // 2. Problem: multinomial logistic regression (convex), W = R^d,
    //    P = the probability simplex over edge areas.
    let problem = FederatedProblem::logistic_from_scenario(&scenario);
    println!(
        "problem: {} edges x {} clients, d = {} parameters",
        problem.num_edges(),
        problem.clients_per_edge(),
        problem.num_params()
    );

    // 3. Algorithm 1 with tau1 = tau2 = 2 (two local SGD steps per
    //    client-edge aggregation, two aggregations per round).
    let cfg = HierMinimaxConfig {
        rounds: 150,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        eta_w: 0.1,
        eta_p: 0.005,
        batch_size: 4,
        loss_batch: 16,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts: RunOpts {
            eval_every: 25,
            parallelism: Parallelism::Rayon,
            trace: false,
            ..Default::default()
        },
    };
    let result = HierMinimax::new(cfg).run(&problem, 7);

    // 4. Results: per-edge fairness and communication cost.
    let eval = evaluate(&problem, &result.final_w, Parallelism::Rayon);
    println!("\nper-edge test accuracy: {:?}", eval.per_edge_accuracy);
    println!(
        "average = {:.3}, worst = {:.3}, variance = {:.2} pp^2",
        eval.average, eval.worst, eval.variance_pp
    );
    println!("learned edge weights p = {:?}", result.final_p);
    println!(
        "communication: {} cloud rounds, {} client-edge rounds, {} floats moved",
        result.comm.cloud_rounds(),
        result.comm.rounds(hierminimax::simnet::Link::ClientEdge),
        result.comm.total_floats()
    );
}
