//! Minimax fairness vs plain minimization on a heterogeneous image task.
//!
//! Trains HierFAVG (solves `min_w Σ q_e f_e`) and HierMinimax (solves
//! `min_w max_p Σ p_e f_e`) on the same one-class-per-edge scenario with
//! asymmetric class difficulty, and prints the per-edge accuracy profile of
//! both — the §6.3 story: minimax trades a sliver of average accuracy for
//! a materially better worst edge and far lower variance.
//!
//! ```bash
//! cargo run --release --example fair_vs_unfair
//! ```

use hierminimax::core::algorithms::{
    Algorithm, HierFavg, HierFavgConfig, HierMinimax, HierMinimaxConfig, RunOpts,
};
use hierminimax::core::metrics::evaluate;
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::generators::synthetic_images::ImageConfig;
use hierminimax::data::scenarios::one_class_per_edge;
use hierminimax::simnet::Parallelism;

fn main() {
    let scenario = one_class_per_edge(ImageConfig::emnist_digits_like(), 10, 3, 60, 200, 99);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);
    let opts = RunOpts {
        eval_every: 0,
        parallelism: Parallelism::Rayon,
        trace: false,
        ..Default::default()
    };

    println!("training HierFAVG (minimization) ...");
    let favg = HierFavg::new(HierFavgConfig {
        rounds: 1500,
        tau1: 2,
        tau2: 2,
        m_edges: 5,
        eta_w: 0.05,
        batch_size: 2,
        quantizer: Default::default(),
        dropout: 0.0,
        opts: opts.clone(),
    })
    .run(&problem, 1);

    println!("training HierMinimax (minimax) ...");
    let hm = HierMinimax::new(HierMinimaxConfig {
        rounds: 1500,
        tau1: 2,
        tau2: 2,
        m_edges: 5,
        eta_w: 0.05,
        eta_p: 0.002,
        batch_size: 2,
        loss_batch: 16,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts,
    })
    .run(&problem, 1);

    let e_favg = evaluate(&problem, &favg.final_w, Parallelism::Rayon);
    let e_hm = evaluate(&problem, &hm.final_w, Parallelism::Rayon);

    println!("\nper-edge accuracy (class difficulty rises with the edge index):");
    println!(
        "edge      {}",
        (0..10).map(|e| format!("{e:>6}")).collect::<String>()
    );
    println!(
        "HierFAVG  {}",
        e_favg
            .per_edge_accuracy
            .iter()
            .map(|a| format!("{a:>6.2}"))
            .collect::<String>()
    );
    println!(
        "HierMinimax{}",
        e_hm.per_edge_accuracy
            .iter()
            .map(|a| format!("{a:>5.2} "))
            .collect::<String>()
    );
    println!("\n                 average   worst   variance(pp^2)");
    println!(
        "HierFAVG         {:.4}    {:.4}  {:.2}",
        e_favg.average, e_favg.worst, e_favg.variance_pp
    );
    println!(
        "HierMinimax      {:.4}    {:.4}  {:.2}",
        e_hm.average, e_hm.worst, e_hm.variance_pp
    );
    println!(
        "\nlearned minimax weights p (mass concentrates on the hard edges):\n{:?}",
        hm.final_p
    );
}
