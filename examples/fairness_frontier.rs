//! The fairness frontier: two mechanisms, one axis.
//!
//! q-FFL (Li et al. 2020) softens fairness through the exponent `q`
//! (0 = plain FedAvg, larger = more uniform); HierMinimax reaches the
//! minimax end of the same axis through explicit weight ascent, and its
//! capped-simplex variant interpolates from the other side. This example
//! sweeps both and prints the average-vs-worst frontier they trace.
//!
//! ```bash
//! cargo run --release --example fairness_frontier
//! ```

use hierminimax::core::algorithms::{
    Algorithm, HierMinimax, HierMinimaxConfig, QFedAvg, QfflConfig, RunOpts,
};
use hierminimax::core::metrics::evaluate;
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::generators::synthetic_images::ImageConfig;
use hierminimax::data::scenarios::{linear_sizes, one_class_per_edge_sized};
use hierminimax::optim::ProjectionOp;
use hierminimax::simnet::Parallelism;

fn main() {
    let cfg = ImageConfig::emnist_digits_like();
    let sizes = linear_sizes(60, 0.15, 10);
    let scenario = one_class_per_edge_sized(cfg, 10, 3, &sizes, 300, 23);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);
    let opts = RunOpts {
        eval_every: 0,
        parallelism: Parallelism::Rayon,
        trace: false,
        ..Default::default()
    };

    println!(
        "{:<28}{:>10}{:>10}{:>12}",
        "method", "avg", "worst", "var (pp^2)"
    );

    // q-FFL sweep: soft fairness.
    for q in [0.0, 1.0, 3.0] {
        let r = QFedAvg::new(QfflConfig {
            rounds: 1500,
            tau1: 2,
            m_clients: 15,
            q,
            eta_w: 0.05,
            batch_size: 1,
            loss_batch: 32,
            opts: opts.clone(),
        })
        .run(&problem, 3);
        let e = evaluate(&problem, &r.final_w, Parallelism::Rayon);
        println!(
            "{:<28}{:>10.4}{:>10.4}{:>12.2}",
            format!("q-FedAvg (q = {q})"),
            e.average,
            e.worst,
            e.variance_pp
        );
    }

    // HierMinimax: capped simplex sweep up to the full minimax end.
    for cap in [0.15_f32, 0.3, 1.0] {
        let mut p = problem.clone();
        p.p_domain = ProjectionOp::CappedSimplex { lo: 0.0, hi: cap };
        let r = HierMinimax::new(HierMinimaxConfig {
            rounds: 750,
            tau1: 2,
            tau2: 2,
            m_edges: 5,
            eta_w: 0.05,
            eta_p: 0.002,
            batch_size: 1,
            loss_batch: 32,
            weight_update_model: Default::default(),
            quantizer: Default::default(),
            dropout: 0.0,
            tau2_per_edge: None,
            opts: opts.clone(),
        })
        .run(&p, 3);
        let e = evaluate(&p, &r.final_w, Parallelism::Rayon);
        println!(
            "{:<28}{:>10.4}{:>10.4}{:>12.2}",
            format!("HierMinimax (cap = {cap})"),
            e.average,
            e.worst,
            e.variance_pp
        );
    }
    println!("\nBoth mechanisms trade average for worst accuracy; the minimax end");
    println!("(cap = 1.0) should dominate the q-FFL points on the worst axis.");
}
