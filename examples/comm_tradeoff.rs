//! The communication–convergence tradeoff of Theorems 1–2, hands on.
//!
//! Sweeps the tradeoff exponent α: larger α means more local work per
//! round (`τ1 τ2 = ⌈T^α⌉`), hence fewer edge-cloud communication rounds
//! (`Θ(T^{1−α})`), at a gently degrading duality gap — the knob that lets
//! a deployment trade cloud bandwidth for convergence speed.
//!
//! ```bash
//! cargo run --release --example comm_tradeoff
//! ```

use hierminimax::core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hierminimax::core::duality::{duality_gap, GapConfig};
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::optim::schedules::{schedule, split_tau, LossClass};
use hierminimax::simnet::{Link, Parallelism};

fn main() {
    let total_slots = 1024;
    let scenario = tiny_problem(5, 2, 3);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);
    let gap_cfg = GapConfig::default();

    println!("T = {total_slots} slots on a 5-edge toy problem\n");
    println!(
        "{:<8}{:<12}{:<10}{:<20}{:<14}",
        "alpha", "tau1 x tau2", "rounds", "edge-cloud rounds", "duality gap"
    );
    for &alpha in &[0.0, 0.3, 0.6] {
        let s = schedule(LossClass::Convex, total_slots, alpha, 2.0, 1.0);
        let (tau1, tau2) = split_tau(s.tau_product);
        let cfg = HierMinimaxConfig {
            rounds: s.rounds,
            tau1,
            tau2,
            m_edges: 3,
            eta_w: (s.eta_w as f32).min(0.1),
            eta_p: (s.eta_p as f32).min(0.05),
            batch_size: 2,
            loss_batch: 8,
            weight_update_model: Default::default(),
            quantizer: Default::default(),
            dropout: 0.0,
            tau2_per_edge: None,
            opts: RunOpts {
                eval_every: 0,
                parallelism: Parallelism::Rayon,
                trace: false,
                ..Default::default()
            },
        };
        let r = HierMinimax::new(cfg).run(&problem, 11);
        let gap = duality_gap(&problem, &r.avg_w, &r.avg_p, &gap_cfg);
        println!(
            "{:<8.2}{:<12}{:<10}{:<20}{:<14.4}",
            alpha,
            format!("{tau1} x {tau2}"),
            s.rounds,
            r.comm.rounds(Link::EdgeCloud),
            gap.gap
        );
    }
    println!("\nHigher alpha: fewer cloud rounds, looser gap — Theorem 1's tradeoff.");
}
