//! Constrained weight domains: `P` as a *capped* simplex.
//!
//! The paper's formulation allows any compact convex `P ⊆ Δ` — e.g. "prior
//! knowledge or parameter regularization" (§3, footnote 1). Capping each
//! edge's weight bounds how far the optimizer may tilt toward the worst
//! edge, interpolating between plain minimization (`p` pinned at uniform)
//! and full minimax fairness (`P = Δ`). This example sweeps the cap and
//! shows the resulting average-vs-worst accuracy frontier.
//!
//! ```bash
//! cargo run --release --example constrained_weights
//! ```

use hierminimax::core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hierminimax::core::metrics::evaluate;
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::generators::synthetic_images::ImageConfig;
use hierminimax::data::scenarios::{linear_sizes, one_class_per_edge_sized};
use hierminimax::optim::ProjectionOp;
use hierminimax::simnet::Parallelism;

fn main() {
    let cfg = ImageConfig::emnist_digits_like();
    let sizes = linear_sizes(60, 0.15, 10);
    let scenario = one_class_per_edge_sized(cfg, 10, 3, &sizes, 300, 5);

    println!("cap      avg acc   worst acc   variance(pp^2)   max p");
    for &cap in &[0.1_f32, 0.15, 0.25, 0.5, 1.0] {
        let mut problem = FederatedProblem::logistic_from_scenario(&scenario);
        // cap = 0.1 = 1/N_E pins p at uniform (pure minimization);
        // cap = 1.0 is the unconstrained simplex (full minimax).
        problem.p_domain = ProjectionOp::CappedSimplex { lo: 0.0, hi: cap };
        let hm = HierMinimax::new(HierMinimaxConfig {
            rounds: 1000,
            tau1: 2,
            tau2: 2,
            m_edges: 5,
            eta_w: 0.02,
            eta_p: 0.005,
            batch_size: 1,
            loss_batch: 16,
            weight_update_model: Default::default(),
            quantizer: Default::default(),
            dropout: 0.0,
            tau2_per_edge: None,
            opts: RunOpts {
                eval_every: 0,
                parallelism: Parallelism::Rayon,
                trace: false,
                ..Default::default()
            },
        });
        let r = hm.run(&problem, 17);
        let e = evaluate(&problem, &r.final_w, Parallelism::Rayon);
        let max_p = r.final_p.iter().copied().fold(0.0_f32, f32::max);
        println!(
            "{cap:<9}{:<10.4}{:<12.4}{:<17.2}{max_p:.3}",
            e.average, e.worst, e.variance_pp
        );
    }
    println!("\nRaising the cap frees the minimax weights: the worst edge improves");
    println!("while the average dips — the fairness frontier of constraint set P.");
}
