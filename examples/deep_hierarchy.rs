//! Four- and five-layer hierarchies: the paper's §3 generalisation.
//!
//! Builds a 16-edge problem and runs minimax fair optimization over
//! successively deeper trees — 3 layers (client-edge-cloud), 4 layers
//! (+regions), 5 layers (+super-regions) — with a matched slot budget, and
//! shows how cloud communication shrinks with depth while the fairness
//! metrics stay comparable.
//!
//! ```bash
//! cargo run --release --example deep_hierarchy
//! ```

use hierminimax::core::algorithms::{
    Algorithm, MultiLevelConfig, MultiLevelMinimax, RunOpts, UpperLevel,
};
use hierminimax::core::metrics::evaluate;
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::generators::synthetic_images::ImageConfig;
use hierminimax::data::scenarios::{linear_sizes, one_class_per_edge_sized};
use hierminimax::simnet::{Link, Parallelism};

fn main() {
    let cfg = ImageConfig {
        num_classes: 16,
        ..ImageConfig::emnist_digits_like()
    };
    let sizes = linear_sizes(40, 0.2, 16);
    let scenario = one_class_per_edge_sized(cfg, 16, 2, &sizes, 200, 13);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);
    let total_slots = 8_000;

    let depths: [(&str, Vec<UpperLevel>); 3] = [
        ("3-layer (client-edge-cloud)", vec![]),
        (
            "4-layer (+4 regions)",
            vec![UpperLevel {
                group_size: 4,
                tau: 2,
            }],
        ),
        (
            "5-layer (+2 super-regions)",
            vec![
                UpperLevel {
                    group_size: 2,
                    tau: 2,
                }, // super-regions of 2 regions
                UpperLevel {
                    group_size: 4,
                    tau: 2,
                }, // regions of 4 edges
            ],
        ),
    ];

    println!(
        "{:<30}{:>8}{:>14}{:>14}{:>10}{:>10}",
        "hierarchy", "groups", "cloud rounds", "local rounds", "avg", "worst"
    );
    for (label, upper) in depths {
        let cfg = MultiLevelConfig {
            rounds: 0, // set below from the slot budget
            tau1: 2,
            tau2: 2,
            upper,
            m_groups: 2,
            eta_w: 0.02,
            eta_p: 0.002,
            batch_size: 1,
            loss_batch: 16,
            dropout: 0.0,
            opts: RunOpts {
                eval_every: 0,
                parallelism: Parallelism::Rayon,
                trace: false,
                ..Default::default()
            },
        };
        let cfg = MultiLevelConfig {
            rounds: (total_slots / cfg.slots_per_round()).max(1),
            ..cfg
        };
        let alg = MultiLevelMinimax::new(cfg);
        let groups = alg.num_groups(&problem);
        let r = alg.run(&problem, 29);
        let e = evaluate(&problem, &r.final_w, Parallelism::Rayon);
        println!(
            "{:<30}{:>8}{:>14}{:>14}{:>10.3}{:>10.3}",
            label,
            groups,
            r.comm.cloud_rounds(),
            r.comm.rounds(Link::ClientEdge),
            e.average,
            e.worst,
        );
    }
    println!("\nDeeper trees push more synchronisation onto cheap local links: the");
    println!("cloud-round count falls by the extra levels' tau factors at a matched");
    println!("slot budget, while fairness metrics remain in the same range.");
}
