//! A deployment-flavoured run: everything at once.
//!
//! Combines the robustness and efficiency extensions on one problem —
//! 8-bit quantized uplinks, 10% client dropout, straggler-aware
//! over-selection — and compares fairness, uplink volume, and simulated
//! wall-clock against the vanilla algorithm.
//!
//! ```bash
//! cargo run --release --example robust_deployment
//! ```

use hierminimax::core::algorithms::{
    Algorithm, HierMinimax, HierMinimaxConfig, OverselectConfig, OverselectMinimax, RunOpts,
};
use hierminimax::core::metrics::evaluate;
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::generators::synthetic_images::ImageConfig;
use hierminimax::data::scenarios::{linear_sizes, one_class_per_edge_sized};
use hierminimax::simnet::{Link, Parallelism, Quantizer};

fn main() {
    let cfg = ImageConfig::emnist_digits_like();
    let sizes = linear_sizes(60, 0.15, 10);
    let scenario = one_class_per_edge_sized(cfg, 10, 3, &sizes, 300, 31);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);
    let opts = RunOpts {
        eval_every: 0,
        parallelism: Parallelism::Rayon,
        trace: false,
        ..Default::default()
    };
    let rounds = 1500;

    // Vanilla HierMinimax (the paper's algorithm).
    let vanilla = HierMinimax::new(HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 5,
        eta_w: 0.02,
        eta_p: 0.005,
        batch_size: 1,
        loss_batch: 16,
        weight_update_model: Default::default(),
        quantizer: Quantizer::Exact,
        dropout: 0.0,
        tau2_per_edge: None,
        opts: opts.clone(),
    })
    .run(&problem, 3);

    // Hardened variant: quantized + dropout-tolerant.
    let hardened = HierMinimax::new(HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 5,
        eta_w: 0.02,
        eta_p: 0.005,
        batch_size: 1,
        loss_batch: 16,
        weight_update_model: Default::default(),
        quantizer: Quantizer::Stochastic { bits: 8 },
        dropout: 0.1,
        tau2_per_edge: None,
        opts: opts.clone(),
    })
    .run(&problem, 3);

    // Over-selection against a straggler profile (edges 8, 9 are 8x slow).
    let mut speeds = vec![1.0_f64; 10];
    speeds[8] = 8.0;
    speeds[9] = 8.0;
    let over = OverselectMinimax::new(OverselectConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 5,
        m_over: 8,
        seconds_per_slot: speeds,
        eta_w: 0.02,
        eta_p: 0.005,
        batch_size: 1,
        loss_batch: 16,
        dropout: 0.0,
        opts,
    })
    .run_timed(&problem, 3);

    println!(
        "{:<26}{:>8}{:>8}{:>10}{:>16}",
        "variant", "avg", "worst", "var", "uplink floats"
    );
    for (label, r) in [
        ("vanilla", &vanilla),
        ("8-bit + 10% dropout", &hardened),
        ("over-selection (5 of 8)", &over.run),
    ] {
        let e = evaluate(&problem, &r.final_w, Parallelism::Rayon);
        let uplink = r.comm.uplink_floats(Link::ClientEdge) + r.comm.uplink_floats(Link::EdgeCloud);
        println!(
            "{:<26}{:>8.3}{:>8.3}{:>10.1}{:>16.2e}",
            label, e.average, e.worst, e.variance_pp, uplink as f64
        );
    }
    println!(
        "\nover-selection discarded {} straggler slots; simulated wall-clock {:.0} s",
        over.discarded, over.simulated_seconds
    );
    println!("The hardened variants keep the fairness profile of the vanilla run");
    println!("while cutting uplink bytes (~3.6x at 8 bits) and wall-clock under");
    println!("stragglers — the deployment story of refs. [3] and [22].");
}
