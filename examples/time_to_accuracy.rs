//! Time-to-accuracy under a realistic network: the system-level case for
//! the hierarchy.
//!
//! Runs all five methods with a matched slot budget and converts each
//! method's metered communication into simulated wall-clock time under two
//! network models: a mobile-edge network (fast local links, slow cloud
//! links — the paper's §1 motivation) and a uniform network (control).
//! Hierarchical methods should win on the former and not on the latter.
//!
//! ```bash
//! cargo run --release --example time_to_accuracy
//! ```

use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::generators::synthetic_images::ImageConfig;
use hierminimax::data::scenarios::{linear_sizes, one_class_per_edge_sized};
use hierminimax::simnet::{LatencyModel, Parallelism};
use hm_bench::harness::{run_suite, SuiteParams};

fn main() {
    let cfg = ImageConfig::emnist_digits_like();
    let sizes = linear_sizes(60, 0.15, 10);
    let scenario = one_class_per_edge_sized(cfg, 10, 3, &sizes, 300, 5);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);
    let sp = SuiteParams {
        total_slots: 12_000,
        tau1: 2,
        tau2: 2,
        m_edges: 5,
        eta_w: 0.02,
        eta_p: 0.005,
        batch_size: 1,
        loss_batch: 16,
        eval_every_slots: 120,
        parallelism: Parallelism::Rayon,
        telemetry_dir: None,
        fault: Default::default(),
        engine: Default::default(),
    };
    let suite = run_suite(&problem, &sp, 19);

    let mec = LatencyModel::mobile_edge();
    let uni = LatencyModel::uniform(0.02, 1e8);
    println!(
        "{:<16}{:>10}{:>14}{:>18}{:>18}",
        "method", "worst acc", "cloud rounds", "mec time (s)", "uniform time (s)"
    );
    for (m, r) in &suite {
        let e = r.history.final_eval().expect("evaluated");
        let slots = r.history.rounds.last().unwrap().slots_done;
        println!(
            "{:<16}{:>10.3}{:>14}{:>18.1}{:>18.1}",
            m.name(),
            e.worst,
            r.comm.cloud_rounds(),
            mec.simulated_seconds(&r.comm, slots),
            uni.simulated_seconds(&r.comm, slots),
        );
    }
    println!("\nUnder the mobile-edge model the hierarchical methods' cloud-round");
    println!("savings translate directly into wall-clock savings; under a uniform");
    println!("network the hierarchy's advantage disappears, as expected.");
}
