//! Offline shim for `parking_lot`: a `Mutex` with the crate's
//! non-poisoning `lock()` API, backed by `std::sync::Mutex` (see
//! `vendor/README.md`). The workspace only uses `Mutex::new` and
//! `lock`; fairness and footprint differences from the real crate are
//! irrelevant at the call sites (coarse counters and event sinks).

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, `lock()`
/// returns the guard directly: a panic while holding the lock does not
/// poison it for later users (parking_lot semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
