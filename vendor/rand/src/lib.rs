//! Offline shim for the `rand` crate: just the trait surface this
//! workspace consumes (see `vendor/README.md`).
//!
//! `hm-data`'s `StreamRng` *implements* these traits; nothing in the
//! workspace uses the real crate's generators or distributions, so the
//! shim defines the traits and the error type and nothing else. The
//! provided-method defaults mirror the real crate's semantics (not its
//! exact bit streams — every in-tree implementor overrides them anyway).

use std::fmt;

/// Error type for fallible RNG operations. The workspace's RNGs are
/// infallible, so this is never constructed in practice.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a stream of `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via splitmix64 (same spirit as the
    /// real crate; in-tree implementors override this with their own
    /// expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.try_fill_bytes(seed.as_mut())?;
        Ok(Self::from_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_partial_tail() {
        let mut rng = Counter(0);
        let mut buf = [0xAAu8; 11];
        rng.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &1u64.to_le_bytes());
        assert_eq!(&buf[8..], &2u64.to_le_bytes()[..3]);
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_dependent() {
        #[derive(PartialEq, Debug)]
        struct S([u8; 16]);
        impl SeedableRng for S {
            type Seed = [u8; 16];
            fn from_seed(seed: [u8; 16]) -> Self {
                S(seed)
            }
        }
        assert_eq!(S::seed_from_u64(7), S::seed_from_u64(7));
        assert_ne!(S::seed_from_u64(7), S::seed_from_u64(8));
    }
}
