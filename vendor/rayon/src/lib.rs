//! Offline shim for `rayon`: the parallel-iterator surface this workspace
//! uses, executed on `std::thread::scope` (see `vendor/README.md`).
//!
//! Execution model:
//!
//! - Each parallel call splits its input into `min(threads, len)`
//!   contiguous parts, runs one OS thread per part, and concatenates the
//!   results **in input order** — so `collect()` is order-identical to the
//!   sequential loop, which is what the workspace's determinism contract
//!   relies on.
//! - A parallel call made from *inside* a worker runs sequentially on
//!   that worker (no work stealing, no nested thread explosion). This
//!   mirrors how the engine uses rayon: outer task chains fan out, inner
//!   per-client loops stay on the chain's thread.
//! - Worker panics are re-raised on the caller via
//!   [`std::panic::resume_unwind`], like the real crate.
//!
//! Thread count: `RAYON_NUM_THREADS` if set and positive, else
//! [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

fn pool_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Number of worker threads a top-level parallel call will use.
pub fn current_num_threads() -> usize {
    pool_threads()
}

/// How many contiguous parts to split a `len`-item input into: 1 when
/// already on a worker (nested call) or when there is nothing to split.
fn parts_for(len: usize) -> usize {
    if len <= 1 || IN_POOL.with(Cell::get) {
        1
    } else {
        pool_threads().min(len)
    }
}

/// Part sizes for splitting `n` items into `parts` contiguous runs
/// (first `n % parts` runs get one extra item).
fn part_len(n: usize, parts: usize, p: usize) -> usize {
    n / parts + usize::from(p < n % parts)
}

fn join_in_order<U>(out: &mut Vec<U>, handles: Vec<std::thread::ScopedJoinHandle<'_, Vec<U>>>) {
    for h in handles {
        match h.join() {
            Ok(part) => out.extend(part),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

fn run_owned<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: F) -> Vec<U> {
    let n = items.len();
    let parts = parts_for(n);
    if parts <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(parts);
    let mut iter = items.into_iter();
    for p in 0..parts {
        chunks.push(iter.by_ref().take(part_len(n, parts, p)).collect());
    }
    let f = &f;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    IN_POOL.with(|c| c.set(true));
                    chunk.into_iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        join_in_order(&mut out, handles);
    });
    out
}

fn run_indexed<U: Send, F: Fn(usize) -> U + Sync>(range: Range<usize>, f: F) -> Vec<U> {
    let n = range.len();
    let parts = parts_for(n);
    if parts <= 1 {
        return range.map(f).collect();
    }
    let f = &f;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(parts);
        let mut start = range.start;
        for p in 0..parts {
            let len_p = part_len(n, parts, p);
            let sub = start..start + len_p;
            start += len_p;
            handles.push(s.spawn(move || {
                IN_POOL.with(|c| c.set(true));
                sub.map(f).collect::<Vec<U>>()
            }));
        }
        join_in_order(&mut out, handles);
    });
    out
}

fn run_slice<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync>(slice: &'a [T], f: F) -> Vec<U> {
    let n = slice.len();
    let parts = parts_for(n);
    if parts <= 1 {
        return slice.iter().map(f).collect();
    }
    let f = &f;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(parts);
        let mut start = 0;
        for p in 0..parts {
            let len_p = part_len(n, parts, p);
            let sub = &slice[start..start + len_p];
            start += len_p;
            handles.push(s.spawn(move || {
                IN_POOL.with(|c| c.set(true));
                sub.iter().map(f).collect::<Vec<U>>()
            }));
        }
        join_in_order(&mut out, handles);
    });
    out
}

/// Run `f(global_chunk_index, chunk)` over `chunks_mut(size)`, splitting
/// work on chunk boundaries.
fn run_mut_chunks<T: Send, F: Fn(usize, &mut [T]) + Sync>(slice: &mut [T], size: usize, f: F) {
    assert!(size > 0, "chunk size must be positive");
    let num_chunks = slice.len().div_ceil(size);
    let parts = parts_for(num_chunks);
    if parts <= 1 {
        for (i, chunk) in slice.chunks_mut(size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(parts);
        let mut rest = slice;
        let mut chunk_base = 0;
        for p in 0..parts {
            let chunks_here = part_len(num_chunks, parts, p);
            let elems = (chunks_here * size).min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(elems);
            rest = tail;
            let base = chunk_base;
            chunk_base += chunks_here;
            handles.push(s.spawn(move || {
                IN_POOL.with(|c| c.set(true));
                for (j, chunk) in head.chunks_mut(size).enumerate() {
                    f(base + j, chunk);
                }
            }));
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// Conversion into a parallel iterator (`Vec<T>` and `Range<usize>`).
pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// `par_iter` on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
}

pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }
    pub fn map<U, F: Fn(T) -> U + Sync>(self, f: F) -> MapVec<T, F> {
        MapVec {
            items: self.items,
            f,
        }
    }
}

pub struct MapVec<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> MapVec<T, F> {
    pub fn collect<U: Send>(self) -> Vec<U>
    where
        F: Fn(T) -> U + Sync,
    {
        run_owned(self.items, self.f)
    }
}

pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// No-op: the shim always splits into contiguous per-thread runs, so
    /// task granularity hints have nothing to adjust.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }
    pub fn map<U, F: Fn(usize) -> U + Sync>(self, f: F) -> MapRange<F> {
        MapRange {
            range: self.range,
            f,
        }
    }
}

pub struct MapRange<F> {
    range: Range<usize>,
    f: F,
}

impl<F> MapRange<F> {
    pub fn collect<U: Send>(self) -> Vec<U>
    where
        F: Fn(usize) -> U + Sync,
    {
        run_indexed(self.range, self.f)
    }
}

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F: Fn(&'a T) -> U + Sync>(self, f: F) -> MapSlice<'a, T, F> {
        MapSlice {
            slice: self.slice,
            f,
        }
    }
}

pub struct MapSlice<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> MapSlice<'a, T, F> {
    pub fn collect<U: Send>(self) -> Vec<U>
    where
        F: Fn(&'a T) -> U + Sync,
    {
        run_slice(self.slice, self.f)
    }
}

pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn enumerate(self) -> EnumIterMut<'a, T> {
        EnumIterMut { slice: self.slice }
    }
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        run_mut_chunks(self.slice, 1, |_, chunk| f(&mut chunk[0]));
    }
}

pub struct EnumIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> EnumIterMut<'a, T> {
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        run_mut_chunks(self.slice, 1, |i, chunk| f((i, &mut chunk[0])));
    }
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumChunksMut<'a, T> {
        EnumChunksMut {
            slice: self.slice,
            size: self.size,
        }
    }
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        run_mut_chunks(self.slice, self.size, |_, chunk| f(chunk));
    }
}

pub struct EnumChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> EnumChunksMut<'a, T> {
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        run_mut_chunks(self.slice, self.size, |i, chunk| f((i, chunk)));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn owned_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_with_max_len_preserves_order() {
        let out: Vec<usize> = (0..257).into_par_iter().with_max_len(1).map(|i| i + 1).collect();
        assert_eq!(out, (1..258).collect::<Vec<_>>());
    }

    #[test]
    fn slice_map_borrows() {
        let v = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        let out: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn chunks_mut_covers_every_chunk_once() {
        let mut v = vec![0u32; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x += i as u32 + 1;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, (j / 10) as u32 + 1, "element {j}");
        }
    }

    #[test]
    fn iter_mut_enumerate_touches_all() {
        let mut v = vec![0usize; 77];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * i);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn nested_calls_run_inline_and_agree() {
        let out: Vec<Vec<usize>> = (0..8)
            .into_par_iter()
            .with_max_len(1)
            .map(|i| (0..5).into_par_iter().map(move |j| i * 10 + j).collect())
            .collect();
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (0..5).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            let v: Vec<usize> = (0..64).collect();
            let _ = v
                .into_par_iter()
                .map(|x| {
                    if x == 63 {
                        panic!("boom 63");
                    }
                    x
                })
                .collect::<Vec<usize>>();
        });
        let payload = caught.expect_err("should panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom 63"), "payload: {msg}");
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let mut v: Vec<usize> = vec![];
        v.par_iter_mut().enumerate().for_each(|(_, _)| unreachable!());
        let out: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }
}
