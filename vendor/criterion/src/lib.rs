//! Offline shim for `criterion`: the benchmark-harness surface this
//! workspace uses, timed with `std::time::Instant` (see
//! `vendor/README.md`). No statistical machinery — each benchmark runs a
//! short warmup, then `sample_size` timed samples, and prints
//! median/mean per iteration (plus element throughput when declared).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration work, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per sample after a brief warmup. The routine's
    /// output is passed through [`black_box`] so the work isn't optimised
    /// away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: at least one call, at most ~50ms.
        let warmup_start = Instant::now();
        loop {
            black_box(routine());
            if warmup_start.elapsed() > Duration::from_millis(50) {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        self.report(&id, &mut b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id, &mut b.samples);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id.id);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let mut line = format!(
            "{}/{}: median {:>12?}  mean {:>12?}  ({} samples)",
            self.name,
            id.id,
            median,
            mean,
            samples.len()
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                line.push_str(&format!("  {:.3e} elem/s", n as f64 / secs));
            }
        }
        println!("{line}");
    }
}

/// Entry point mirroring the real crate's `Criterion` configuration
/// object (all configuration here is per-group).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        // Warmup plus 5 samples each.
        assert!(runs >= 6, "routine ran {runs} times");
    }
}
