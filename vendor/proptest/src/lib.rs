//! Offline shim for `proptest`: the strategy/macro surface this workspace
//! uses, with deterministic generation and no shrinking (see
//! `vendor/README.md`).
//!
//! Determinism: each test derives a base seed from its `module_path!()`
//! plus function name, and case `i` uses `base + i·φ` — so a failure
//! reproduces by rerunning the same test binary, and the failure message
//! prints the generated inputs (the shim's substitute for shrinking).

pub mod test_runner {
    /// Run configuration. Only `cases` is consulted; the struct mirrors
    /// the real crate's name so `ProptestConfig::with_cases(n)` works.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of *accepted* cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps offline CI fast
            // while every in-tree property that cares sets its own count.
            Self { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property is false for these inputs (test failure).
        Fail(String),
        /// The inputs don't satisfy a precondition (`prop_assume!`);
        /// the case is skipped, not failed.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic splitmix64 generator used for all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            }
        }

        /// RNG for case `index` of a test whose name hashed to `base`.
        pub fn for_case(base: u64, index: u64) -> Self {
            Self::new(base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`. Modulo bias is irrelevant at test scales.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform in `[0, 1)` with 53-bit resolution.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash of the test's full path: the per-test seed base.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (what `prop_oneof!` builds; unweighted).
    pub struct Union<T: Debug> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: Debug> Union<T> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let arm = rng.below(self.arms.len());
            self.arms[arm].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((lo as i128) + off) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (self.end - self.start) * (rng.unit() as $t);
                    // f32 rounding can land exactly on the excluded end.
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * (rng.unit() as $t)
                }
            }
        )+};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);
    tuple_strategy!(A, B, C, D, E, G, H);
    tuple_strategy!(A, B, C, D, E, G, H, I);

    /// String-literal strategies: a small regex subset (see
    /// [`crate::string_gen`]).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string_gen::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + Debug {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T` (full value range for integers).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_incl: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi_incl - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Generator for string-literal strategies: supports the regex subset
/// `atom{lo,hi}` / `atom{n}` / `atom?` / `atom*` / `atom+` where `atom`
/// is a literal char, an escape, or a char class `[...]` of literals,
/// escapes, and `a-z` ranges. Unsupported syntax panics loudly rather
/// than generating something subtly wrong.
pub mod string_gen {
    use crate::test_runner::TestRng;

    struct Piece {
        /// Inclusive char ranges the atom may produce.
        choices: Vec<(char, char)>,
        lo: usize,
        hi: usize,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    fn parse(pattern: &str) -> Option<Vec<Piece>> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let choices = match c {
                '[' => {
                    let mut items = Vec::new();
                    loop {
                        let c = chars.next()?;
                        if c == ']' {
                            break;
                        }
                        let start = if c == '\\' {
                            unescape(chars.next()?)
                        } else {
                            c
                        };
                        // `a-b` range (a trailing '-' is a literal).
                        if chars.peek() == Some(&'-') {
                            let mut ahead = chars.clone();
                            ahead.next();
                            match ahead.peek() {
                                Some(&']') | None => items.push((start, start)),
                                Some(_) => {
                                    chars.next();
                                    let e = chars.next()?;
                                    let end = if e == '\\' {
                                        unescape(chars.next()?)
                                    } else {
                                        e
                                    };
                                    if end < start {
                                        return None;
                                    }
                                    items.push((start, end));
                                }
                            }
                        } else {
                            items.push((start, start));
                        }
                    }
                    if items.is_empty() {
                        return None;
                    }
                    items
                }
                '\\' => {
                    let c = unescape(chars.next()?);
                    vec![(c, c)]
                }
                '(' | ')' | '|' | '.' | '^' | '$' => return None,
                lit => vec![(lit, lit)],
            };
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    loop {
                        let c = chars.next()?;
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                        None => {
                            let n = spec.trim().parse().ok()?;
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 32)
                }
                Some('+') => {
                    chars.next();
                    (1, 32)
                }
                _ => (1, 1),
            };
            if hi < lo {
                return None;
            }
            pieces.push(Piece { choices, lo, hi });
        }
        Some(pieces)
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern).unwrap_or_else(|| {
            panic!("proptest shim: unsupported regex strategy {pattern:?} (see vendor/README.md)")
        });
        let mut out = String::new();
        for piece in &pieces {
            let count = piece.lo + rng.below(piece.hi - piece.lo + 1);
            let total: u32 = piece
                .choices
                .iter()
                .map(|&(a, b)| b as u32 - a as u32 + 1)
                .sum();
            for _ in 0..count {
                let mut pick = rng.below(total as usize) as u32;
                for &(a, b) in &piece.choices {
                    let width = b as u32 - a as u32 + 1;
                    if pick < width {
                        out.push(char::from_u32(a as u32 + pick).expect("valid char range"));
                        break;
                    }
                    pick -= width;
                }
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Namespace mirror of the real crate's `prop::` re-exports.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test that runs `config.cases` accepted cases with
/// deterministic per-case seeds. An optional leading
/// `#![proptest_config(expr)]` overrides the default configuration.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed_base = $crate::test_runner::seed_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            let mut __case: u64 = 0;
            while __passed < __config.cases {
                assert!(
                    __rejected < __config.cases.saturating_mul(16) + 256,
                    "proptest '{}': too many rejected cases ({})",
                    stringify!($name),
                    __rejected,
                );
                let mut __rng = $crate::test_runner::TestRng::for_case(__seed_base, __case);
                __case += 1;
                let mut __inputs = ::std::string::String::new();
                let __result: $crate::test_runner::TestCaseResult = (|| {
                    $(
                        let __value =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push_str(&::std::format!(
                            "{} = {:?}; ",
                            stringify!($pat),
                            __value,
                        ));
                        let $pat = __value;
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        ::std::panic!(
                            "proptest '{}' failed at case {}: {}\n  inputs: {}",
                            stringify!($name),
                            __case - 1,
                            __msg,
                            __inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Build a [`strategy::Union`] over the listed strategies (uniform pick).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(__arms)
    }};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)+),
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)+),
        );
    }};
}

/// Skip (don't fail) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(a in 3usize..10, b in 0u64..=4, x in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn tuples_maps_and_oneof_compose(
            v in prop::collection::vec((0usize..5, Just(7u8)).prop_map(|(a, b)| a + b as usize), 2..6),
            pick in prop_oneof![Just(1u8), Just(2u8), (5u8..=6).prop_map(|x| x)],
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!((7..12).contains(x), "x = {}", x);
            }
            prop_assert!(matches!(pick, 1 | 2 | 5 | 6));
        }

        #[test]
        fn regex_strings_match_class_and_count(s in "[ -~\n]{0,20}") {
            prop_assert!(s.chars().count() <= 20);
            for c in s.chars() {
                prop_assert!(c == '\n' || (' '..='~').contains(&c));
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        use crate::strategy::Strategy;
        let base = crate::test_runner::seed_for("some::test");
        let mut r1 = crate::test_runner::TestRng::for_case(base, 3);
        let mut r2 = crate::test_runner::TestRng::for_case(base, 3);
        let s = (0usize..100, 0.0f64..=1.0);
        assert_eq!(format!("{:?}", s.generate(&mut r1)), format!("{:?}", s.generate(&mut r2)));
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(n in 0usize..3) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        let err = std::panic::catch_unwind(always_fails).expect_err("must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("inputs:"), "message: {msg}");
    }
}
