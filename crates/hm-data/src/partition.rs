//! Heterogeneous data partitioners.
//!
//! The paper induces heterogeneity two ways:
//! - §6.1 (convex, EMNIST): "assign one distinct class of training data to
//!   the clients of each edge area" — [`partition_by_label`].
//! - §6.2 (non-convex, Fashion-MNIST): the s%-similarity split of
//!   Karimireddy et al. (SCAFFOLD): "for s% similarity we allocate to each
//!   edge area s% i.i.d. data and the remaining (100−s)% by sorting
//!   according to label" — [`partition_similarity`].

use crate::dataset::Dataset;
use crate::rng::StreamRng;

/// Assign each class to one edge area: edge `e` receives every sample whose
/// label `l` satisfies `l % num_edges == e`. With `num_edges ==
/// num_classes` (the paper's Fig. 3 setting: 10 digit classes over 10 edge
/// areas) each edge holds exactly one class.
///
/// Returns one dataset per edge, each possibly empty when a class is absent.
pub fn partition_by_label(data: &Dataset, num_edges: usize) -> Vec<Dataset> {
    assert!(num_edges > 0, "need at least one edge");
    let mut per_edge: Vec<Vec<usize>> = vec![Vec::new(); num_edges];
    for (i, &l) in data.y.iter().enumerate() {
        per_edge[l % num_edges].push(i);
    }
    per_edge.into_iter().map(|idx| data.subset(&idx)).collect()
}

/// The s%-similarity split: a fraction `s` of the data is dealt i.i.d.
/// (shuffled round-robin) across edges; the remaining `1−s` is sorted by
/// label and dealt in contiguous shards, concentrating labels per edge.
///
/// `s = 1.0` gives an i.i.d. split; `s = 0.0` gives maximal label skew.
///
/// # Panics
/// Panics unless `0.0 <= s <= 1.0` and `num_edges > 0`.
pub fn partition_similarity(
    data: &Dataset,
    num_edges: usize,
    s: f64,
    rng: &mut StreamRng,
) -> Vec<Dataset> {
    let uniform = vec![1.0; num_edges];
    partition_similarity_sized(data, num_edges, s, &uniform, rng)
}

/// [`partition_similarity`] with per-edge share weights: edge `e` receives
/// a fraction `share[e]/Σ share` of both the i.i.d. and the label-sorted
/// portions. Unequal shares reproduce the paper's motivating data-ratio
/// mismatch inside the similarity scenario (minimization with
/// data-proportional weights under-serves small edges).
///
/// # Panics
/// Panics unless shares are positive with `share.len() == num_edges`.
pub fn partition_similarity_sized(
    data: &Dataset,
    num_edges: usize,
    s: f64,
    share: &[f64],
    rng: &mut StreamRng,
) -> Vec<Dataset> {
    assert!(num_edges > 0, "need at least one edge");
    assert!((0.0..=1.0).contains(&s), "similarity s={s} out of [0,1]");
    assert_eq!(share.len(), num_edges, "one share per edge");
    assert!(share.iter().all(|&w| w > 0.0), "shares must be positive");
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    let n_iid = ((n as f64) * s).round() as usize;
    let (iid_part, skew_part) = idx.split_at(n_iid.min(n));

    // Largest-remainder apportionment of `m` items to edges by share.
    let total: f64 = share.iter().sum();
    let apportion = |m: usize| -> Vec<usize> {
        let quotas: Vec<f64> = share.iter().map(|&w| w / total * m as f64).collect();
        let mut counts: Vec<usize> = quotas.iter().map(|&q| q.floor() as usize).collect();
        let mut rest: Vec<(usize, f64)> = quotas
            .iter()
            .enumerate()
            .map(|(i, &q)| (i, q - q.floor()))
            .collect();
        rest.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let assigned: usize = counts.iter().sum();
        for (i, _) in rest.iter().take(m - assigned) {
            counts[*i] += 1;
        }
        counts
    };

    let mut per_edge: Vec<Vec<usize>> = vec![Vec::new(); num_edges];
    // IID fraction: contiguous runs of the shuffled order, sized by share
    // (the order is random, so contiguous runs are i.i.d. draws).
    let iid_counts = apportion(iid_part.len());
    let mut start = 0;
    for (e, &size) in iid_counts.iter().enumerate() {
        per_edge[e].extend_from_slice(&iid_part[start..start + size]);
        start += size;
    }
    // Skewed fraction: sort by label (stable on the shuffled order), then
    // deal contiguous shards sized by share.
    let mut sorted: Vec<usize> = skew_part.to_vec();
    sorted.sort_by_key(|&i| data.y[i]);
    let skew_counts = apportion(sorted.len());
    let mut start = 0;
    for (e, &size) in skew_counts.iter().enumerate() {
        per_edge[e].extend_from_slice(&sorted[start..start + size]);
        start += size;
    }
    per_edge.into_iter().map(|b| data.subset(&b)).collect()
}

/// Dirichlet label partition (Hsu, Qi & Brown 2019) — the third standard
/// heterogeneity scheme in the FL literature, alongside one-label-per-edge
/// and the s%-similarity split. For each class, the class's samples are
/// split across edges by a draw from `Dirichlet(alpha, …, alpha)`:
/// small `alpha` concentrates each class on few edges (strong
/// heterogeneity), large `alpha` approaches an i.i.d. split.
///
/// Gamma draws use the Marsaglia–Tsang method (with the `alpha < 1`
/// boost), so any positive `alpha` is supported.
///
/// # Panics
/// Panics unless `alpha > 0` and `num_edges > 0`.
pub fn partition_dirichlet(
    data: &Dataset,
    num_edges: usize,
    alpha: f64,
    rng: &mut StreamRng,
) -> Vec<Dataset> {
    assert!(num_edges > 0, "need at least one edge");
    assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
    // Group sample indices by class, in a shuffled order.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); data.num_classes];
    let mut order: Vec<usize> = (0..data.len()).collect();
    rng.shuffle(&mut order);
    for &i in &order {
        by_class[data.y[i]].push(i);
    }
    let mut per_edge: Vec<Vec<usize>> = vec![Vec::new(); num_edges];
    for idx in by_class {
        if idx.is_empty() {
            continue;
        }
        // Dirichlet proportions via normalised Gamma(alpha, 1) draws.
        let gammas: Vec<f64> = (0..num_edges).map(|_| sample_gamma(alpha, rng)).collect();
        let total: f64 = gammas.iter().sum();
        // Largest-remainder apportionment of this class's samples.
        let n = idx.len();
        let quotas: Vec<f64> = gammas.iter().map(|&g| g / total * n as f64).collect();
        let mut counts: Vec<usize> = quotas.iter().map(|&q| q.floor() as usize).collect();
        let mut rest: Vec<(usize, f64)> = quotas
            .iter()
            .enumerate()
            .map(|(i, &q)| (i, q - q.floor()))
            .collect();
        rest.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let assigned: usize = counts.iter().sum();
        for (i, _) in rest.iter().take(n - assigned) {
            counts[*i] += 1;
        }
        let mut start = 0;
        for (e, &c) in counts.iter().enumerate() {
            per_edge[e].extend_from_slice(&idx[start..start + c]);
            start += c;
        }
    }
    per_edge.into_iter().map(|b| data.subset(&b)).collect()
}

/// Gamma(alpha, 1) sample (Marsaglia–Tsang; `alpha < 1` via the
/// `U^{1/alpha}` boost).
fn sample_gamma(alpha: f64, rng: &mut StreamRng) -> f64 {
    if alpha < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
        let u = rng.uniform().max(1e-300);
        return sample_gamma(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = rng.normal();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.uniform();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.max(1e-300).ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Fraction of samples (over all edges) whose label equals each edge's
/// majority label — a scalar skew diagnostic: 1.0 when each edge is
/// single-label, ≈ 1/num_classes for an i.i.d. split.
pub fn label_skew(parts: &[Dataset]) -> f64 {
    let mut majority = 0usize;
    let mut total = 0usize;
    for p in parts {
        let counts = p.class_counts();
        majority += counts.iter().copied().max().unwrap_or(0);
        total += p.len();
    }
    if total == 0 {
        0.0
    } else {
        majority as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Purpose, StreamRng};
    use hm_tensor::Matrix;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn toy(n: usize, classes: usize) -> Dataset {
        let x = Matrix::from_fn(n, 1, |r, _| r as f32);
        let y = (0..n).map(|i| i % classes).collect();
        Dataset::new(x, y, classes)
    }

    #[test]
    fn by_label_one_class_per_edge() {
        let d = toy(100, 10);
        let parts = partition_by_label(&d, 10);
        assert_eq!(parts.len(), 10);
        for (e, p) in parts.iter().enumerate() {
            assert_eq!(p.len(), 10);
            assert!(p.y.iter().all(|&l| l == e));
        }
        assert!((label_skew(&parts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn by_label_wraps_when_more_classes_than_edges() {
        let d = toy(40, 4);
        let parts = partition_by_label(&d, 2);
        assert!(parts[0].y.iter().all(|&l| l % 2 == 0));
        assert!(parts[1].y.iter().all(|&l| l % 2 == 1));
    }

    #[test]
    fn similarity_partitions_cover_everything() {
        let d = toy(103, 5);
        let mut rng = StreamRng::new(1, Purpose::Split, 0, 0);
        let parts = partition_similarity(&d, 4, 0.5, &mut rng);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 103);
        // Collect the unique feature values to ensure a true partition.
        let mut seen: Vec<f32> = parts
            .iter()
            .flat_map(|p| p.x.rows_iter().map(|r| r[0]).collect::<Vec<_>>())
            .collect();
        seen.sort_by(f32::total_cmp);
        let expected: Vec<f32> = (0..103).map(|i| i as f32).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn similarity_extremes_order_skew() {
        let d = toy(500, 10);
        let mut r1 = StreamRng::new(2, Purpose::Split, 0, 0);
        let mut r2 = StreamRng::new(2, Purpose::Split, 0, 1);
        let mut r3 = StreamRng::new(2, Purpose::Split, 0, 2);
        let iid = partition_similarity(&d, 10, 1.0, &mut r1);
        let half = partition_similarity(&d, 10, 0.5, &mut r2);
        let skewed = partition_similarity(&d, 10, 0.0, &mut r3);
        let (a, b, c) = (label_skew(&iid), label_skew(&half), label_skew(&skewed));
        assert!(a < b && b < c, "skews not ordered: {a} {b} {c}");
        assert!(c > 0.9, "s=0 should be near single-label: {c}");
        assert!(a < 0.3, "s=1 should be near iid: {a}");
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn similarity_bad_s_panics() {
        let d = toy(10, 2);
        let mut rng = StreamRng::new(0, Purpose::Split, 0, 0);
        let _ = partition_similarity(&d, 2, 1.5, &mut rng);
    }

    #[test]
    fn dirichlet_is_a_partition() {
        let d = toy(200, 5);
        let mut rng = StreamRng::new(9, Purpose::Split, 0, 0);
        let parts = partition_dirichlet(&d, 4, 0.5, &mut rng);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 200);
        let mut seen: Vec<f32> = parts
            .iter()
            .flat_map(|p| p.x.rows_iter().map(|r| r[0]).collect::<Vec<_>>())
            .collect();
        seen.sort_by(f32::total_cmp);
        let expected: Vec<f32> = (0..200).map(|i| i as f32).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn dirichlet_alpha_orders_skew() {
        let d = toy(2000, 10);
        let mut r1 = StreamRng::new(10, Purpose::Split, 0, 0);
        let mut r2 = StreamRng::new(10, Purpose::Split, 0, 1);
        let concentrated = partition_dirichlet(&d, 10, 0.05, &mut r1);
        let spread = partition_dirichlet(&d, 10, 100.0, &mut r2);
        let (a, b) = (label_skew(&concentrated), label_skew(&spread));
        assert!(
            a > b + 0.2,
            "alpha=0.05 skew {a} should far exceed alpha=100 skew {b}"
        );
        assert!(b < 0.2, "alpha=100 should be near-iid: {b}");
    }

    #[test]
    fn gamma_sampler_moments() {
        // Gamma(alpha, 1) has mean alpha and variance alpha.
        for &alpha in &[0.3_f64, 1.0, 4.5] {
            let mut rng = StreamRng::new(11, Purpose::Split, 0, alpha.to_bits());
            let n = 20_000;
            let xs: Vec<f64> = (0..n).map(|_| sample_gamma(alpha, &mut rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            assert!(
                (mean - alpha).abs() < 0.1 * alpha.max(0.5),
                "alpha {alpha}: mean {mean}"
            );
            assert!(
                (var - alpha).abs() < 0.2 * alpha.max(0.5),
                "alpha {alpha}: var {var}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn dirichlet_bad_alpha_panics() {
        let d = toy(10, 2);
        let mut rng = StreamRng::new(0, Purpose::Split, 0, 0);
        let _ = partition_dirichlet(&d, 2, 0.0, &mut rng);
    }

    proptest! {
        #[test]
        fn prop_dirichlet_is_partition(
            n in 10usize..150,
            edges in 1usize..6,
            alpha in 0.05f64..20.0,
            seed in 0u64..50,
        ) {
            let d = toy(n, 5.min(n));
            let mut rng = StreamRng::seed_from_u64(seed);
            let parts = partition_dirichlet(&d, edges, alpha, &mut rng);
            let total: usize = parts.iter().map(|p| p.len()).sum();
            prop_assert_eq!(total, n);
        }

        #[test]
        fn prop_similarity_is_partition(
            n in 10usize..200,
            edges in 1usize..8,
            s in 0.0f64..=1.0,
            seed in 0u64..100,
        ) {
            let d = toy(n, 7.min(n));
            let mut rng = StreamRng::seed_from_u64(seed);
            let parts = partition_similarity(&d, edges, s, &mut rng);
            prop_assert_eq!(parts.len(), edges);
            let total: usize = parts.iter().map(|p| p.len()).sum();
            prop_assert_eq!(total, n);
            // Sizes are near-balanced: within num_edges of each other.
            let max = parts.iter().map(|p| p.len()).max().unwrap();
            let min = parts.iter().map(|p| p.len()).min().unwrap();
            prop_assert!(max - min <= 2, "imbalanced: max {} min {}", max, min);
        }

        #[test]
        fn prop_by_label_is_partition(n in 1usize..200, edges in 1usize..12) {
            let d = toy(n, 10.min(n));
            let parts = partition_by_label(&d, edges);
            let total: usize = parts.iter().map(|p| p.len()).sum();
            prop_assert_eq!(total, n);
        }
    }
}
