//! Synthetic dataset generators standing in for the paper's datasets.
//!
//! Three generator families (DESIGN.md §2 documents each substitution):
//!
//! - [`synthetic_images`] — class-conditional "image" generator replacing
//!   EMNIST-Digits / MNIST / Fashion-MNIST. Each class has a prototype built
//!   from Gaussian bumps on a `side × side` grid; samples are noisy copies.
//!   `separation` and `noise` control difficulty, letting us order the three
//!   stand-ins the way the real datasets are ordered (EMNIST easiest,
//!   Fashion-MNIST hardest).
//! - [`li_synthetic`] — the Synthetic(α, β) generative process published in
//!   Li et al., *Fair Resource Allocation in Federated Learning* (ICLR 2020),
//!   implemented directly from its specification.
//! - [`adult_like`] — a two-group categorical-feature binary-label generator
//!   replacing UCI Adult split into Doctorate / non-Doctorate edge areas.

pub mod adult_like;
pub mod li_synthetic;
pub mod synthetic_images;
