//! Labelled dataset container and basic manipulation.

use crate::rng::StreamRng;
use hm_tensor::Matrix;
use std::fmt;

/// Why a [`Dataset`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// `x.rows() != y.len()`.
    ShapeMismatch {
        /// Rows of the feature matrix.
        rows: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// `num_classes == 0`.
    NoClasses,
    /// A label falls outside `[0, num_classes)`.
    LabelOutOfRange {
        /// The offending label value.
        label: usize,
        /// The declared class count.
        num_classes: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DatasetError::ShapeMismatch { rows, labels } => {
                write!(
                    f,
                    "feature/label count mismatch ({rows} rows, {labels} labels)"
                )
            }
            DatasetError::NoClasses => write!(f, "need at least one class"),
            DatasetError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range (num_classes {num_classes})")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A supervised classification dataset: a row-major feature matrix and one
/// integer label per row.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// `n × d` feature matrix; row `i` is sample `i`.
    pub x: Matrix,
    /// Labels in `[0, num_classes)`, one per row of `x`.
    pub y: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Construct, validating shapes and label range.
    ///
    /// # Panics
    /// Panics if `x.rows() != y.len()` or a label is out of range. Callers
    /// handling untrusted input should prefer [`Dataset::try_new`].
    pub fn new(x: Matrix, y: Vec<usize>, num_classes: usize) -> Self {
        match Self::try_new(x, y, num_classes) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Construct, returning a typed [`DatasetError`] instead of panicking
    /// when the shapes or labels are invalid.
    pub fn try_new(x: Matrix, y: Vec<usize>, num_classes: usize) -> Result<Self, DatasetError> {
        if x.rows() != y.len() {
            return Err(DatasetError::ShapeMismatch {
                rows: x.rows(),
                labels: y.len(),
            });
        }
        if num_classes == 0 {
            return Err(DatasetError::NoClasses);
        }
        if let Some(&bad) = y.iter().find(|&&l| l >= num_classes) {
            return Err(DatasetError::LabelOutOfRange {
                label: bad,
                num_classes,
            });
        }
        Ok(Self { x, y, num_classes })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// New dataset containing the given sample indices (in order; duplicates
    /// allowed).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Gather the given sample indices into `out`, reusing its buffers.
    /// Allocation-free once `out` has enough capacity, which makes it the
    /// mini-batch primitive of the training hot path.
    pub fn subset_into(&self, indices: &[usize], out: &mut Dataset) {
        self.x.select_rows_into(indices, &mut out.x);
        out.y.clear();
        out.y.extend(indices.iter().map(|&i| self.y[i]));
        out.num_classes = self.num_classes;
    }

    /// Split into `(train, test)` with `test_fraction` of samples held out,
    /// after a deterministic shuffle driven by `rng`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= test_fraction < 1.0`.
    pub fn train_test_split(&self, test_fraction: f64, rng: &mut StreamRng) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&test_fraction),
            "test_fraction {test_fraction} out of [0,1)"
        );
        let n = self.len();
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        let n_test = ((n as f64) * test_fraction).round() as usize;
        let (test_idx, train_idx) = idx.split_at(n_test.min(n));
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Split the dataset into `k` near-equal contiguous shards (used to
    /// spread an edge area's data across its clients). Earlier shards get
    /// the remainder samples.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > len()`.
    pub fn split_even(&self, k: usize) -> Vec<Dataset> {
        assert!(k > 0, "cannot split into zero shards");
        assert!(
            k <= self.len(),
            "cannot split {} samples into {} non-empty shards",
            self.len(),
            k
        );
        let n = self.len();
        let base = n / k;
        let extra = n % k;
        let mut out = Vec::with_capacity(k);
        let mut start = 0;
        for i in 0..k {
            let size = base + usize::from(i < extra);
            let idx: Vec<usize> = (start..start + size).collect();
            out.push(self.subset(&idx));
            start += size;
        }
        out
    }

    /// Concatenate datasets (all must agree on dim and num_classes).
    ///
    /// # Panics
    /// Panics on an empty input list or mismatched shapes.
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "concat of zero datasets");
        let dim = parts[0].dim();
        let num_classes = parts[0].num_classes;
        let total: usize = parts.iter().map(|d| d.len()).sum();
        let mut x = Matrix::zeros(total, dim);
        let mut y = Vec::with_capacity(total);
        let mut row = 0;
        for p in parts {
            assert_eq!(p.dim(), dim, "concat dim mismatch");
            assert_eq!(p.num_classes, num_classes, "concat class-count mismatch");
            for r in 0..p.len() {
                x.row_mut(row).copy_from_slice(p.x.row(r));
                row += 1;
            }
            y.extend_from_slice(&p.y);
        }
        Dataset { x, y, num_classes }
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.y {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Purpose, StreamRng};

    fn toy(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32);
        let y = (0..n).map(|i| i % 3).collect();
        Dataset::new(x, y, 3)
    }

    #[test]
    fn new_validates() {
        let d = toy(6);
        assert_eq!(d.len(), 6);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.class_counts(), vec![2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn out_of_range_label_panics() {
        Dataset::new(Matrix::zeros(1, 1), vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shape_mismatch_panics() {
        Dataset::new(Matrix::zeros(2, 1), vec![0], 1);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            Dataset::try_new(Matrix::zeros(2, 1), vec![0], 1).unwrap_err(),
            DatasetError::ShapeMismatch { rows: 2, labels: 1 }
        );
        assert_eq!(
            Dataset::try_new(Matrix::zeros(1, 1), vec![0], 0).unwrap_err(),
            DatasetError::NoClasses
        );
        let err = Dataset::try_new(Matrix::zeros(1, 1), vec![5], 3).unwrap_err();
        assert_eq!(
            err,
            DatasetError::LabelOutOfRange {
                label: 5,
                num_classes: 3
            }
        );
        // Display strings match the legacy panic messages.
        assert_eq!(err.to_string(), "label 5 out of range (num_classes 3)");
        // Valid input round-trips.
        let d = Dataset::try_new(Matrix::zeros(2, 1), vec![0, 1], 2).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn subset_preserves_rows() {
        let d = toy(5);
        let s = d.subset(&[4, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.x.row(0), d.x.row(4));
        assert_eq!(s.y, vec![4 % 3, 0]);
    }

    #[test]
    fn train_test_split_partitions() {
        let d = toy(10);
        let mut rng = StreamRng::new(1, Purpose::Split, 0, 0);
        let (train, test) = d.train_test_split(0.3, &mut rng);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // Together they contain each original row exactly once (match rows
        // by first feature which is unique in `toy`).
        let mut firsts: Vec<f32> = train
            .x
            .rows_iter()
            .chain(test.x.rows_iter())
            .map(|r| r[0])
            .collect();
        firsts.sort_by(f32::total_cmp);
        let expected: Vec<f32> = (0..10).map(|i| (i * 2) as f32).collect();
        assert_eq!(firsts, expected);
    }

    #[test]
    fn split_even_sizes() {
        let d = toy(10);
        let shards = d.split_even(3);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 10);
    }

    #[test]
    #[should_panic(expected = "non-empty shards")]
    fn split_even_too_many_panics() {
        toy(2).split_even(3);
    }

    #[test]
    fn concat_roundtrips_split() {
        let d = toy(7);
        let shards = d.split_even(2);
        let refs: Vec<&Dataset> = shards.iter().collect();
        let back = Dataset::concat(&refs);
        assert_eq!(back.len(), d.len());
        assert_eq!(back.y, d.y);
        assert_eq!(back.x.max_abs_diff(&d.x), 0.0);
    }
}
