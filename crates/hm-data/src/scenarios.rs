//! Prebuilt hierarchical data scenarios matching the paper's experiments.
//!
//! A [`HierScenario`] is the data-side description of a client-edge-cloud
//! experiment: per edge area, the training shards of its clients and a test
//! set from the same edge distribution (the paper reports per-edge-area test
//! accuracy; clients within an edge share a distribution by assumption).

use crate::dataset::Dataset;
use crate::generators::adult_like::{AdultLikeConfig, AdultLikePopulation, Group};
use crate::generators::li_synthetic::{device_sample_sizes, LiDevice, LiSyntheticConfig};
use crate::generators::synthetic_images::{ImageConfig, ImageDistribution};
use crate::partition::{partition_dirichlet, partition_similarity_sized};
use crate::rng::{Purpose, StreamKey, StreamRng};

/// Data belonging to one edge area.
#[derive(Debug, Clone)]
pub struct EdgeData {
    /// One training shard per client of this edge.
    pub client_train: Vec<Dataset>,
    /// Test set drawn from the edge area's distribution.
    pub test: Dataset,
}

impl EdgeData {
    /// Concatenation of all client training shards (the edge's empirical
    /// distribution; used by centralised reference solvers).
    pub fn train_concat(&self) -> Dataset {
        let refs: Vec<&Dataset> = self.client_train.iter().collect();
        Dataset::concat(&refs)
    }
}

/// A full hierarchical data scenario.
#[derive(Debug, Clone)]
pub struct HierScenario {
    /// Human-readable name (used in experiment output).
    pub name: String,
    /// One entry per edge area.
    pub edges: Vec<EdgeData>,
    /// Number of classes.
    pub num_classes: usize,
    /// Feature dimension.
    pub dim: usize,
}

impl HierScenario {
    /// Number of edge areas.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Clients per edge of the first edge (scenarios built here are
    /// symmetric, matching the paper's `|N_e| = N_0` assumption).
    pub fn clients_per_edge(&self) -> usize {
        self.edges.first().map_or(0, |e| e.client_train.len())
    }

    /// Total client count `N = N_0 · N_E`.
    pub fn total_clients(&self) -> usize {
        self.edges.iter().map(|e| e.client_train.len()).sum()
    }

    /// Panic unless every edge has ≥1 client with ≥1 sample and a non-empty
    /// test set. Called by experiment drivers before training.
    pub fn validate(&self) {
        assert!(!self.edges.is_empty(), "scenario has no edges");
        let n0 = self.edges[0].client_train.len();
        for (e, edge) in self.edges.iter().enumerate() {
            assert!(!edge.client_train.is_empty(), "edge {e} has no clients");
            assert_eq!(
                edge.client_train.len(),
                n0,
                "edge {e} has a different client count; the algorithms' flat \
                 client indexing assumes the paper's symmetric |N_e| = N_0"
            );
            for (c, d) in edge.client_train.iter().enumerate() {
                assert!(!d.is_empty(), "edge {e} client {c} has no data");
                assert_eq!(d.dim(), self.dim, "edge {e} client {c} dim mismatch");
            }
            assert!(!edge.test.is_empty(), "edge {e} has an empty test set");
        }
    }
}

/// §6.1 scenario: one distinct class per edge area (requires
/// `num_edges == cfg.num_classes`), as in the paper's EMNIST-Digits setup
/// with `N_E = 10`, `N_0 = 3`. All edges receive the same amount of data;
/// see [`one_class_per_edge_sized`] for unequal data ratios.
pub fn one_class_per_edge(
    cfg: ImageConfig,
    num_edges: usize,
    clients_per_edge: usize,
    train_per_client: usize,
    test_per_edge: usize,
    seed: u64,
) -> HierScenario {
    let sizes = vec![train_per_client; num_edges];
    one_class_per_edge_sized(
        cfg,
        num_edges,
        clients_per_edge,
        &sizes,
        test_per_edge,
        seed,
    )
}

/// [`one_class_per_edge`] with explicit per-edge train sizes (samples per
/// *client* of each edge). Unequal sizes reproduce the paper's motivating
/// data-ratio mismatch: minimization with data-proportional weights
/// (eq. 1) systematically under-serves small edges; minimax (eq. 3) does
/// not.
pub fn one_class_per_edge_sized(
    cfg: ImageConfig,
    num_edges: usize,
    clients_per_edge: usize,
    train_per_client: &[usize],
    test_per_edge: usize,
    seed: u64,
) -> HierScenario {
    assert_eq!(
        num_edges, cfg.num_classes,
        "one-class-per-edge needs num_edges == num_classes"
    );
    assert_eq!(train_per_client.len(), num_edges, "one size per edge");
    let dist = ImageDistribution::new(cfg.clone(), seed);
    let mut edges = Vec::with_capacity(num_edges);
    for (e, &n_train) in train_per_client.iter().enumerate() {
        let classes = [e];
        let client_train: Vec<Dataset> = (0..clients_per_edge)
            .map(|c| dist.sample(&classes, n_train, (e * clients_per_edge + c) as u64))
            .collect();
        // Distinct entity id space for test draws.
        let test = dist.sample(&classes, test_per_edge, 1_000_000 + e as u64);
        edges.push(EdgeData { client_train, test });
    }
    HierScenario {
        name: "one-class-per-edge".into(),
        edges,
        num_classes: cfg.num_classes,
        dim: cfg.dim(),
    }
}

/// Linearly decreasing per-edge sizes from `max` down to `max·min_frac`
/// (rounded, at least 1) — the data-imbalance profile used by the Fig. 3
/// experiment (later classes are both harder and data-poorer).
pub fn linear_sizes(max: usize, min_frac: f64, n: usize) -> Vec<usize> {
    assert!(n > 0 && (0.0..=1.0).contains(&min_frac));
    (0..n)
        .map(|e| {
            let t = if n > 1 {
                e as f64 / (n - 1) as f64
            } else {
                0.0
            };
            let f = 1.0 - (1.0 - min_frac) * t;
            ((max as f64 * f).round() as usize).max(1)
        })
        .collect()
}

/// §6.2 scenario: s%-similarity split of a balanced pool across edge areas
/// (Fashion-MNIST setup, `s = 50`). Each edge's shard is split into a test
/// hold-out and per-client training shards, so test data matches the edge's
/// training distribution.
pub fn similarity_split(
    cfg: ImageConfig,
    num_edges: usize,
    clients_per_edge: usize,
    samples_per_edge: usize,
    s: f64,
    test_fraction: f64,
    seed: u64,
) -> HierScenario {
    let uniform = vec![1.0; cfg.num_classes];
    similarity_split_weighted(
        cfg,
        num_edges,
        clients_per_edge,
        samples_per_edge,
        s,
        test_fraction,
        &uniform,
        seed,
    )
}

/// Extra knobs for [`similarity_scenario`] beyond the paper's base setup.
#[derive(Debug, Clone, Default)]
pub struct SimilarityOptions {
    /// Class frequencies of the pool (∝ values); `None` = uniform.
    pub class_weights: Option<Vec<f64>>,
    /// Per-edge data shares (∝ values); `None` = equal. Unequal shares
    /// reproduce the paper's data-ratio mismatch inside this scenario.
    pub edge_shares: Option<Vec<f64>>,
    /// When `Some(n)`, each edge receives a *fresh* test set of `n`
    /// samples drawn from the generator with the edge's empirical class
    /// mixture, instead of holding out `test_fraction` of its (possibly
    /// tiny) shard — distribution-matched but as large as needed for a
    /// low-variance worst-accuracy estimate.
    pub fresh_test_per_edge: Option<usize>,
}

/// [`similarity_split`] with optional class imbalance and per-edge data
/// shares (see [`SimilarityOptions`]).
#[allow(clippy::too_many_arguments)]
pub fn similarity_scenario(
    cfg: ImageConfig,
    num_edges: usize,
    clients_per_edge: usize,
    samples_per_edge: usize,
    s: f64,
    test_fraction: f64,
    options: &SimilarityOptions,
    seed: u64,
) -> HierScenario {
    let dist = ImageDistribution::new(cfg.clone(), seed);
    let uniform_classes = vec![1.0; cfg.num_classes];
    let class_weights = options.class_weights.as_deref().unwrap_or(&uniform_classes);
    let pool = dist.sample_weighted_classes(class_weights, samples_per_edge * num_edges, 0);
    let equal_shares = vec![1.0; num_edges];
    let shares = options.edge_shares.as_deref().unwrap_or(&equal_shares);
    let mut prng = StreamRng::for_key(StreamKey::new(seed, Purpose::Split, 0, 0));
    let shards = partition_similarity_sized(&pool, num_edges, s, shares, &mut prng);
    let mut edges = Vec::with_capacity(num_edges);
    for (e, shard) in shards.into_iter().enumerate() {
        let (train, test) = match options.fresh_test_per_edge {
            Some(n) => {
                // Fresh test set from the edge's empirical class mixture.
                let counts = shard.class_counts();
                let mix: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
                let test = dist_sample_mixture(&dist, &mix, n, 2_000_000 + e as u64);
                (shard, test)
            }
            None => {
                let mut srng =
                    StreamRng::for_key(StreamKey::new(seed, Purpose::Split, 1, e as u64));
                shard.train_test_split(test_fraction, &mut srng)
            }
        };
        let client_train = train.split_even(clients_per_edge);
        edges.push(EdgeData { client_train, test });
    }
    HierScenario {
        name: format!("similarity-{:.0}%", s * 100.0),
        edges,
        num_classes: cfg.num_classes,
        dim: cfg.dim(),
    }
}

/// Sample `n` points from `dist` with class frequencies ∝ `mix` (helper
/// for the fresh-test option; zero-weight classes are simply absent).
fn dist_sample_mixture(dist: &ImageDistribution, mix: &[f64], n: usize, entity: u64) -> Dataset {
    dist.sample_weighted_classes(mix, n, entity)
}

/// [`similarity_split`] over a class-imbalanced pool: class `c` appears
/// with frequency ∝ `class_weights[c]`.
#[allow(clippy::too_many_arguments)]
pub fn similarity_split_weighted(
    cfg: ImageConfig,
    num_edges: usize,
    clients_per_edge: usize,
    samples_per_edge: usize,
    s: f64,
    test_fraction: f64,
    class_weights: &[f64],
    seed: u64,
) -> HierScenario {
    let options = SimilarityOptions {
        class_weights: Some(class_weights.to_vec()),
        edge_shares: None,
        fresh_test_per_edge: None,
    };
    similarity_scenario(
        cfg,
        num_edges,
        clients_per_edge,
        samples_per_edge,
        s,
        test_fraction,
        &options,
        seed,
    )
}

/// Dirichlet-heterogeneity scenario (Hsu et al. 2019): a balanced pool
/// split by per-class `Dirichlet(alpha)` draws across edges. Small `alpha`
/// = strong label skew. Each edge's shard is split into test hold-out and
/// per-client training shards.
pub fn dirichlet_split(
    cfg: ImageConfig,
    num_edges: usize,
    clients_per_edge: usize,
    samples_per_edge: usize,
    alpha: f64,
    test_fraction: f64,
    seed: u64,
) -> HierScenario {
    let dist = ImageDistribution::new(cfg.clone(), seed);
    let pool = dist.sample_all_classes(samples_per_edge * num_edges, 0);
    let mut prng = StreamRng::for_key(StreamKey::new(seed, Purpose::Split, 0, 0));
    let shards = partition_dirichlet(&pool, num_edges, alpha, &mut prng);
    let mut edges = Vec::with_capacity(num_edges);
    for (e, shard) in shards.into_iter().enumerate() {
        assert!(
            shard.len() >= clients_per_edge * 2,
            "edge {e} received only {} samples; raise samples_per_edge or alpha",
            shard.len()
        );
        let mut srng = StreamRng::for_key(StreamKey::new(seed, Purpose::Split, 1, e as u64));
        let (train, test) = shard.train_test_split(test_fraction, &mut srng);
        let client_train = train.split_even(clients_per_edge);
        edges.push(EdgeData { client_train, test });
    }
    HierScenario {
        name: format!("dirichlet-{alpha}"),
        edges,
        num_classes: cfg.num_classes,
        dim: cfg.dim(),
    }
}

/// Table 2 Adult scenario: two edge areas — Doctorate (minority) and
/// non-Doctorate (majority) — with very different sizes.
pub fn adult_two_edges(
    cfg: AdultLikeConfig,
    clients_per_edge: usize,
    majority_train: usize,
    minority_train: usize,
    test_per_edge: usize,
    seed: u64,
) -> HierScenario {
    let pop = AdultLikePopulation::new(cfg.clone(), seed);
    let dim = cfg.dim();
    let build = |group: Group, n_train: usize| -> EdgeData {
        let per_client = (n_train / clients_per_edge).max(1);
        let client_train: Vec<Dataset> = (0..clients_per_edge)
            .map(|c| pop.sample(group, per_client, 10 + c as u64))
            .collect();
        let test = pop.sample(group, test_per_edge, 999);
        EdgeData { client_train, test }
    };
    let edges = vec![
        build(Group::Majority, majority_train),
        build(Group::Minority, minority_train),
    ];
    HierScenario {
        name: "adult-like".into(),
        edges,
        num_classes: 2,
        dim,
    }
}

/// Table 2 Synthetic scenario: `num_edges` Li et al. devices (the paper uses
/// 100 edge areas) with power-law sample sizes.
pub fn li_synthetic_scenario(
    cfg: LiSyntheticConfig,
    num_edges: usize,
    clients_per_edge: usize,
    mean_samples: usize,
    test_per_edge: usize,
    seed: u64,
) -> HierScenario {
    let sizes = device_sample_sizes(num_edges, mean_samples, clients_per_edge.max(4), seed);
    let dim = cfg.dim;
    let num_classes = cfg.num_classes;
    let mut edges = Vec::with_capacity(num_edges);
    for (e, &size) in sizes.iter().enumerate() {
        let dev = LiDevice::new(cfg.clone(), seed, e as u64);
        let train = dev.sample(size, 0);
        let client_train = train.split_even(clients_per_edge);
        let test = dev.sample(test_per_edge, 1);
        edges.push(EdgeData { client_train, test });
    }
    HierScenario {
        name: "li-synthetic".into(),
        edges,
        num_classes,
        dim,
    }
}

/// A miniature one-class-per-edge problem for tests, doctests, and the
/// quickstart example: tiny images (8×8), `n_edges` classes, little data.
pub fn tiny_problem(n_edges: usize, clients_per_edge: usize, seed: u64) -> HierScenario {
    let cfg = ImageConfig {
        side: 8,
        num_classes: n_edges,
        bumps_per_class: 2,
        separation: 1.0,
        noise: 0.2,
        prototype_overlap: 0.0,
        pair_similarity: 0.0,
        noise_spread: 0.0,
        separation_spread: 0.0,
    };
    one_class_per_edge(cfg, n_edges, clients_per_edge, 16, 16, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_class_per_edge_structure() {
        let sc = one_class_per_edge(ImageConfig::emnist_digits_like(), 10, 3, 12, 8, 1);
        sc.validate();
        assert_eq!(sc.num_edges(), 10);
        assert_eq!(sc.clients_per_edge(), 3);
        assert_eq!(sc.total_clients(), 30);
        for (e, edge) in sc.edges.iter().enumerate() {
            for d in &edge.client_train {
                assert!(d.y.iter().all(|&l| l == e));
            }
            assert!(edge.test.y.iter().all(|&l| l == e));
        }
    }

    #[test]
    #[should_panic(expected = "num_edges == num_classes")]
    fn one_class_per_edge_requires_matching_counts() {
        let _ = one_class_per_edge(ImageConfig::emnist_digits_like(), 5, 3, 12, 8, 1);
    }

    #[test]
    fn similarity_split_structure() {
        let sc = similarity_split(ImageConfig::fashion_mnist_like(), 4, 3, 60, 0.5, 0.25, 2);
        sc.validate();
        assert_eq!(sc.num_edges(), 4);
        // Each edge: 60 samples, 15 test, 45 train over 3 clients.
        for edge in &sc.edges {
            assert_eq!(edge.test.len(), 15);
            let n: usize = edge.client_train.iter().map(|d| d.len()).sum();
            assert_eq!(n, 45);
        }
    }

    #[test]
    fn adult_sizes_are_imbalanced() {
        let sc = adult_two_edges(AdultLikeConfig::default(), 2, 400, 40, 50, 3);
        sc.validate();
        let n_major: usize = sc.edges[0].client_train.iter().map(|d| d.len()).sum();
        let n_minor: usize = sc.edges[1].client_train.iter().map(|d| d.len()).sum();
        assert!(n_major >= 8 * n_minor, "major {n_major} minor {n_minor}");
    }

    #[test]
    fn li_synthetic_scenario_shape() {
        let sc = li_synthetic_scenario(LiSyntheticConfig::default(), 20, 2, 30, 20, 4);
        sc.validate();
        assert_eq!(sc.num_edges(), 20);
        assert_eq!(sc.dim, 60);
        assert_eq!(sc.num_classes, 10);
    }

    #[test]
    fn tiny_problem_is_valid_and_fast() {
        let sc = tiny_problem(3, 2, 42);
        sc.validate();
        assert_eq!(sc.num_edges(), 3);
        assert_eq!(sc.dim, 64);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = tiny_problem(3, 2, 7);
        let b = tiny_problem(3, 2, 7);
        assert_eq!(
            a.edges[1].client_train[0]
                .x
                .max_abs_diff(&b.edges[1].client_train[0].x),
            0.0
        );
    }

    #[test]
    fn edge_train_concat_merges_clients() {
        let sc = tiny_problem(2, 3, 1);
        let cat = sc.edges[0].train_concat();
        let total: usize = sc.edges[0].client_train.iter().map(|d| d.len()).sum();
        assert_eq!(cat.len(), total);
    }
}
