//! Deterministic counter-keyed RNG streams.
//!
//! Every stochastic choice in the workspace (data generation, mini-batch
//! sampling, client SGD noise, edge sampling, checkpoint indices) draws from
//! its own [`StreamRng`], derived from a [`StreamKey`]. Because streams are
//! keyed rather than shared, parallel client execution under rayon is
//! bit-reproducible: no stream is ever advanced by another thread.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded by running
//! SplitMix64 over the key fields — the seeding procedure the xoshiro
//! authors recommend. Both are implemented here (~60 lines) rather than
//! pulling `rand_xoshiro`, keeping the dependency set to the approved list.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding and for mixing key fields into seed material.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// What a stream is used for. Keying on purpose keeps logically independent
/// random choices independent even when they share (round, entity) indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Purpose {
    /// Dataset feature/label generation.
    DataGen,
    /// Train/test splitting and shuffling.
    Split,
    /// Mini-batch index sampling at a client.
    Batch,
    /// Model parameter initialisation.
    Init,
    /// Cloud sampling of participating edges (Phase 1).
    EdgeSampling,
    /// Cloud sampling of the loss-estimation edge set (Phase 2).
    LossEstSampling,
    /// Checkpoint index (c1, c2) sampling.
    Checkpoint,
    /// Stochastic quantization rounding.
    Quantize,
    /// Client dropout (crash/straggler) coin flips.
    Dropout,
    /// Edge-server outage windows (fault injection).
    EdgeOutage,
    /// Edge↔cloud message-loss coin flips, one stream per message channel
    /// (fault injection).
    MsgLoss,
    /// Per-client compute-slowdown draws (fault injection).
    Straggler,
    /// Per-client Byzantine-corruption coin flips (adversary injection).
    Adversary,
    /// Adversarial payload material: noise vectors, colluding directions
    /// (adversary injection).
    AdversaryPayload,
    /// Retry-backoff jitter draws on lossy links (fault injection).
    BackoffJitter,
    /// Membership-churn coin flips: client leaves, edge failures, join
    /// arrivals (churn injection).
    Churn,
    /// Data-shard generation for clients that join mid-run (churn
    /// injection; keyed by the joining client's global id).
    ChurnData,
    /// Anything else (tests, ad-hoc tools).
    Misc,
}

impl Purpose {
    fn tag(self) -> u64 {
        match self {
            Purpose::DataGen => 1,
            Purpose::Split => 2,
            Purpose::Batch => 3,
            Purpose::Init => 4,
            Purpose::EdgeSampling => 5,
            Purpose::LossEstSampling => 6,
            Purpose::Checkpoint => 7,
            Purpose::Misc => 8,
            Purpose::Quantize => 9,
            Purpose::Dropout => 10,
            Purpose::EdgeOutage => 11,
            Purpose::MsgLoss => 12,
            Purpose::Straggler => 13,
            Purpose::Adversary => 14,
            Purpose::AdversaryPayload => 15,
            Purpose::BackoffJitter => 16,
            Purpose::Churn => 17,
            Purpose::ChurnData => 18,
        }
    }
}

/// Fully-qualified identity of a random stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamKey {
    /// Experiment master seed.
    pub master: u64,
    /// What the stream is for.
    pub purpose: Purpose,
    /// Training round (0 when not applicable).
    pub round: u64,
    /// Entity id: client index, edge index, etc. (0 when not applicable).
    pub entity: u64,
}

impl StreamKey {
    /// Key for a per-(round, entity) stream.
    pub fn new(master: u64, purpose: Purpose, round: u64, entity: u64) -> Self {
        Self {
            master,
            purpose,
            round,
            entity,
        }
    }

    /// Collapse the key into a 64-bit seed via SplitMix64 absorption.
    pub fn seed(&self) -> u64 {
        let mut s = self.master ^ 0x243F6A8885A308D3; // pi digits, arbitrary
        let mut out = splitmix64(&mut s);
        s ^= self.purpose.tag().wrapping_mul(0x452821E638D01377);
        out ^= splitmix64(&mut s);
        s ^= self.round.wrapping_mul(0x13198A2E03707344);
        out ^= splitmix64(&mut s);
        s ^= self.entity.wrapping_mul(0xA4093822299F31D0);
        out ^= splitmix64(&mut s);
        out
    }
}

/// xoshiro256** PRNG implementing the `rand` traits.
///
/// ```
/// use hm_data::rng::{Purpose, StreamRng};
///
/// // Streams are a pure function of their key: same key, same draws —
/// // regardless of what any other stream did.
/// let mut a = StreamRng::new(42, Purpose::Batch, /*round*/ 3, /*client*/ 7);
/// let mut b = StreamRng::new(42, Purpose::Batch, 3, 7);
/// assert_eq!(a.below(1000), b.below(1000));
///
/// // Different purposes decorrelate even with identical indices.
/// let mut c = StreamRng::new(42, Purpose::Init, 3, 7);
/// let _ = c.normal(); // an independent stream
/// ```
#[derive(Debug, Clone)]
pub struct StreamRng {
    s: [u64; 4],
}

impl StreamRng {
    /// Build the stream for a key.
    pub fn for_key(key: StreamKey) -> Self {
        Self::seed_from_u64(key.seed())
    }

    /// Convenience constructor from the key fields.
    pub fn new(master: u64, purpose: Purpose, round: u64, entity: u64) -> Self {
        Self::for_key(StreamKey::new(master, purpose, round, entity))
    }

    /// Export the generator's internal state ("cursor"). Together with
    /// [`StreamRng::from_cursor`] this makes a stream's position
    /// serialisable — used by `hm-checkpoint` to fingerprint and restore
    /// the keyed streams a resumed run will draw from.
    pub fn cursor(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a stream from an exported [`StreamRng::cursor`].
    ///
    /// # Panics
    /// Panics on the all-zero state, which xoshiro256** cannot occupy (no
    /// reachable cursor is ever all zeros).
    pub fn from_cursor(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&x| x != 0), "xoshiro cursor cannot be zero");
        Self { s }
    }

    /// Standard-normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        // u1 in (0, 1]: avoid ln(0).
        let u1 = ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let u2 = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)` via Lemire-style rejection (unbiased).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        let n = n as u64;
        // Rejection sampling on the widening multiply.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n {
                return (m >> 64) as usize;
            }
            let t = n.wrapping_neg() % n;
            if lo >= t {
                return (m >> 64) as usize;
            }
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` uniformly (partial
    /// Fisher–Yates). Returned in random order.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_without_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {} of {}", k, n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Sample one index from a weight vector (weights ≥ 0, not necessarily
    /// normalised) by inverse-CDF on the running sum.
    ///
    /// # Panics
    /// Panics if the total weight is not positive and finite.
    pub fn sample_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weighted sample needs positive finite total, got {total}"
        );
        let target = self.uniform() * total;
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            if target < acc {
                return i;
            }
        }
        // Floating-point slack: return the last positive-weight index.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("at least one positive weight")
    }

    /// Sample `k` indices i.i.d. from a weight vector (with replacement).
    pub fn sample_weighted_with_replacement(&mut self, weights: &[f64], k: usize) -> Vec<usize> {
        (0..k).map(|_| self.sample_weighted(weights)).collect()
    }
}

impl RngCore for StreamRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for StreamRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // All-zero state is a fixed point of xoshiro; remap it.
        if s.iter().all(|&x| x == 0) {
            s = [0x9E3779B97F4A7C15, 1, 2, 3];
        }
        Self { s }
    }

    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        let mut seed = [0u8; 32];
        rng.try_fill_bytes(&mut seed)?;
        Ok(Self::from_seed(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::RngCore;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 (cross-checked against the reference C).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220A8397B1DCDAF);
        assert_eq!(splitmix64(&mut s), 0x6E789E6AA1B965F4);
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = StreamRng::new(7, Purpose::Batch, 3, 11);
        let mut b = StreamRng::new(7, Purpose::Batch, 3, 11);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_keys_give_distinct_streams() {
        let first = |k: StreamKey| StreamRng::for_key(k).next_u64();
        let base = StreamKey::new(7, Purpose::Batch, 3, 11);
        let variants = [
            StreamKey::new(8, Purpose::Batch, 3, 11),
            StreamKey::new(7, Purpose::Init, 3, 11),
            StreamKey::new(7, Purpose::Batch, 4, 11),
            StreamKey::new(7, Purpose::Batch, 3, 12),
        ];
        for v in variants {
            assert_ne!(first(base), first(v), "collision for {v:?}");
        }
    }

    #[test]
    fn zero_seed_not_degenerate() {
        let mut r = StreamRng::from_seed([0u8; 32]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_in_range_and_varied() {
        let mut r = StreamRng::new(1, Purpose::Misc, 0, 0);
        let xs: Vec<f64> = (0..1000).map(|_| r.uniform()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = StreamRng::new(2, Purpose::Misc, 0, 0);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = StreamRng::new(3, Purpose::Misc, 0, 0);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.below(5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        StreamRng::new(0, Purpose::Misc, 0, 0).below(0);
    }

    #[test]
    fn sample_without_replacement_distinct_and_complete() {
        let mut r = StreamRng::new(4, Purpose::Misc, 0, 0);
        let s = r.sample_without_replacement(10, 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sample_weighted_respects_zero_weights() {
        let mut r = StreamRng::new(5, Purpose::Misc, 0, 0);
        for _ in 0..1000 {
            let i = r.sample_weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn sample_weighted_frequencies() {
        let mut r = StreamRng::new(6, Purpose::Misc, 0, 0);
        let w = [1.0, 3.0];
        let mut c1 = 0;
        let n = 40_000;
        for _ in 0..n {
            if r.sample_weighted(&w) == 1 {
                c1 += 1;
            }
        }
        let frac = c1 as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StreamRng::new(7, Purpose::Misc, 0, 0);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50-element shuffle left input unchanged"
        );
    }

    proptest! {
        #[test]
        fn prop_below_in_range(n in 1usize..1000, seed in 0u64..500) {
            let mut r = StreamRng::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert!(r.below(n) < n);
            }
        }

        #[test]
        fn prop_swr_distinct(n in 1usize..50, seed in 0u64..500) {
            let mut r = StreamRng::seed_from_u64(seed);
            let k = (seed as usize % n) + 1;
            let s = r.sample_without_replacement(n, k.min(n));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), s.len());
            prop_assert!(s.iter().all(|&i| i < n));
        }

        #[test]
        fn prop_weighted_only_positive_support(seed in 0u64..500) {
            let mut r = StreamRng::seed_from_u64(seed);
            let w = [0.0, 2.0, 0.0, 5.0, 0.0];
            let i = r.sample_weighted(&w);
            prop_assert!(i == 1 || i == 3);
        }
    }
}
