//! The Synthetic(α, β) dataset of Li et al., *Fair Resource Allocation in
//! Federated Learning* (ICLR 2020) — used by the paper for the Table 2
//! "Synthetic" row with 100 edge areas.
//!
//! Generative process (per device/edge `k`), implemented from the published
//! specification:
//!
//! - `u_k ~ N(0, α)` controls the local model: `W_k[i][j] ~ N(u_k, 1)`,
//!   `b_k[i] ~ N(u_k, 1)` — larger α means device optima differ more.
//! - `B_k ~ N(0, β)` controls the local input distribution:
//!   `v_k[j] ~ N(B_k, 1)` and `x ~ N(v_k, Σ)` with diagonal
//!   `Σ[j][j] = j^{-1.2}` — larger β means device inputs differ more.
//! - `y = argmax(softmax(W_k x + b_k))`.
//!
//! With `α = β = 0` all devices share `u_k = B_k = 0` but still have
//! device-specific `W_k`, `v_k` draws; the classic IID variant instead
//! shares one global `(W, b)` — both are exposed.

use crate::dataset::Dataset;
use crate::rng::{Purpose, StreamKey, StreamRng};
use hm_tensor::{ops, Matrix};

/// Configuration of the Li et al. synthetic generator.
#[derive(Debug, Clone)]
pub struct LiSyntheticConfig {
    /// Model-heterogeneity variance (α in the paper).
    pub alpha: f64,
    /// Input-heterogeneity variance (β in the paper).
    pub beta: f64,
    /// Input dimension (60 in the original).
    pub dim: usize,
    /// Number of classes (10 in the original).
    pub num_classes: usize,
    /// If true, all devices share a single global `(W, b)` (the IID
    /// variant); otherwise each device draws its own.
    pub iid_model: bool,
}

impl Default for LiSyntheticConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 1.0,
            dim: 60,
            num_classes: 10,
            iid_model: false,
        }
    }
}

/// One device's (edge area's) frozen ground-truth model and input law.
#[derive(Debug, Clone)]
pub struct LiDevice {
    w: Matrix,   // num_classes × dim
    b: Vec<f32>, // num_classes
    v: Vec<f64>, // dim: input mean
    cfg: LiSyntheticConfig,
    seed: u64,
    device: u64,
}

impl LiDevice {
    /// Instantiate device `device` of the distribution keyed by `seed`.
    pub fn new(cfg: LiSyntheticConfig, seed: u64, device: u64) -> Self {
        assert!(cfg.dim > 0 && cfg.num_classes > 0);
        // Model RNG: device-specific unless iid_model.
        let model_entity = if cfg.iid_model { u64::MAX } else { device };
        let mut mr = StreamRng::for_key(StreamKey::new(seed, Purpose::DataGen, 100, model_entity));
        let u_k = mr.normal() * cfg.alpha.sqrt();
        let w = Matrix::from_fn(cfg.num_classes, cfg.dim, |_, _| {
            mr.normal_with(u_k, 1.0) as f32
        });
        let b: Vec<f32> = (0..cfg.num_classes)
            .map(|_| mr.normal_with(u_k, 1.0) as f32)
            .collect();
        // Input RNG: always device-specific.
        let mut ir = StreamRng::for_key(StreamKey::new(seed, Purpose::DataGen, 101, device));
        let b_k = ir.normal() * cfg.beta.sqrt();
        let v: Vec<f64> = (0..cfg.dim).map(|_| ir.normal_with(b_k, 1.0)).collect();
        Self {
            w,
            b,
            v,
            cfg,
            seed,
            device,
        }
    }

    /// Sample `n` labelled examples from this device's distribution.
    /// `salt` distinguishes multiple draws (e.g. train vs test).
    pub fn sample(&self, n: usize, salt: u64) -> Dataset {
        let mut rng = StreamRng::for_key(StreamKey::new(
            self.seed,
            Purpose::DataGen,
            200 + salt,
            self.device,
        ));
        let dim = self.cfg.dim;
        let mut x = Matrix::zeros(n, dim);
        for i in 0..n {
            let row = x.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                // Σ[j][j] = (j+1)^{-1.2}; std dev is its square root.
                let std = ((j + 1) as f64).powf(-1.2).sqrt();
                *v = rng.normal_with(self.v[j], std) as f32;
            }
        }
        // Labels: argmax of softmax(Wx + b) == argmax of the logits.
        let mut logits = ops::matmul_transb(&x, &self.w);
        ops::add_row_inplace(&mut logits, &self.b);
        let y = ops::argmax_rows(&logits);
        Dataset::new(x, y, self.cfg.num_classes)
    }
}

/// Sample sizes per device following the original's log-normal device-size
/// law (clamped to `[min_samples, ∞)`), so some edges are data-rich and
/// some data-poor.
pub fn device_sample_sizes(
    num_devices: usize,
    mean_samples: usize,
    min_samples: usize,
    seed: u64,
) -> Vec<usize> {
    let mut rng = StreamRng::for_key(StreamKey::new(seed, Purpose::DataGen, 300, 0));
    (0..num_devices)
        .map(|_| {
            let z = rng.normal_with(0.0, 1.0);
            let size = (mean_samples as f64 * (0.5 * z).exp()).round() as usize;
            size.max(min_samples)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_is_deterministic() {
        let cfg = LiSyntheticConfig::default();
        let a = LiDevice::new(cfg.clone(), 1, 5).sample(8, 0);
        let b = LiDevice::new(cfg, 1, 5).sample(8, 0);
        assert_eq!(a.x.max_abs_diff(&b.x), 0.0);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn devices_differ() {
        let cfg = LiSyntheticConfig::default();
        let a = LiDevice::new(cfg.clone(), 1, 0).sample(8, 0);
        let b = LiDevice::new(cfg, 1, 1).sample(8, 0);
        assert!(a.x.max_abs_diff(&b.x) > 0.0);
    }

    #[test]
    fn salt_changes_samples_but_not_law() {
        let cfg = LiSyntheticConfig::default();
        let dev = LiDevice::new(cfg, 1, 0);
        let a = dev.sample(8, 0);
        let b = dev.sample(8, 1);
        assert!(a.x.max_abs_diff(&b.x) > 0.0);
        assert_eq!(a.dim(), b.dim());
    }

    #[test]
    fn iid_model_shares_w() {
        let cfg = LiSyntheticConfig {
            iid_model: true,
            alpha: 1.0,
            ..Default::default()
        };
        let a = LiDevice::new(cfg.clone(), 1, 0);
        let b = LiDevice::new(cfg, 1, 1);
        assert_eq!(a.w.max_abs_diff(&b.w), 0.0);
        assert_eq!(a.b, b.b);
        // ...but inputs still differ.
        assert!(a.sample(4, 0).x.max_abs_diff(&b.sample(4, 0).x) > 0.0);
    }

    #[test]
    fn labels_in_range_and_nondegenerate() {
        let cfg = LiSyntheticConfig::default();
        let ds = LiDevice::new(cfg, 3, 2).sample(200, 0);
        assert!(ds.y.iter().all(|&l| l < 10));
        let counts = ds.class_counts();
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(nonzero >= 2, "degenerate labels: {counts:?}");
    }

    #[test]
    fn alpha_increases_model_divergence() {
        // Larger α should (in expectation) move device optima apart. Proxy:
        // distance between the W matrices of two devices.
        let dist = |alpha: f64| {
            let cfg = LiSyntheticConfig {
                alpha,
                beta: 0.0,
                ..Default::default()
            };
            let a = LiDevice::new(cfg.clone(), 7, 0);
            let b = LiDevice::new(cfg, 7, 1);
            hm_tensor::vecops::dist2_sq(a.w.as_slice(), b.w.as_slice())
        };
        assert!(dist(10.0) > dist(0.0));
    }

    #[test]
    fn sample_sizes_respect_minimum() {
        let sizes = device_sample_sizes(100, 50, 10, 42);
        assert_eq!(sizes.len(), 100);
        assert!(sizes.iter().all(|&s| s >= 10));
        // Heterogeneous: not all equal.
        assert!(sizes.iter().any(|&s| s != sizes[0]));
    }
}
