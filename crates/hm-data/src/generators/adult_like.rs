//! Two-group categorical-feature binary-label generator standing in for the
//! UCI Adult dataset split by education group.
//!
//! The paper's Adult experiment (Table 2) uses exactly two edge areas: one
//! holding the *Doctorate* group (small, distinct label statistics) and one
//! holding everyone else. A minimization method fits the majority group and
//! under-serves the minority; the minimax method lifts the worst group.
//! That phenomenon needs only (a) two groups of very different sizes, and
//! (b) group-conditional feature and label laws that disagree — which this
//! generator controls directly.
//!
//! Features are one-hot encoded categorical attributes (as in the paper,
//! which trains logistic regression "on categorical features"): attribute
//! `a` has `cardinalities[a]` levels, drawn from a group-specific
//! categorical law; the label is Bernoulli from a group-specific logistic
//! model over the one-hot vector.

use crate::dataset::Dataset;
use crate::rng::{Purpose, StreamKey, StreamRng};
use hm_tensor::Matrix;

/// Which of the two Adult-like groups to sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// The large majority group (non-Doctorate).
    Majority,
    /// The small minority group (Doctorate).
    Minority,
}

/// Configuration of the Adult-like population.
#[derive(Debug, Clone)]
pub struct AdultLikeConfig {
    /// Number of levels per categorical attribute; the one-hot feature
    /// dimension is the sum.
    pub cardinalities: Vec<usize>,
    /// How far the minority group's attribute distribution is tilted away
    /// from the majority's (0 = identical, 1 = strongly shifted).
    pub distribution_shift: f64,
    /// How far the minority group's label model is rotated away from the
    /// majority's (0 = identical).
    pub concept_shift: f64,
}

impl Default for AdultLikeConfig {
    fn default() -> Self {
        Self {
            // Echoes Adult's categorical attributes (workclass, education,
            // marital-status, occupation, relationship, race, sex, country).
            cardinalities: vec![8, 16, 7, 14, 6, 5, 2, 10],
            distribution_shift: 0.6,
            concept_shift: 0.7,
        }
    }
}

impl AdultLikeConfig {
    /// One-hot feature dimension.
    pub fn dim(&self) -> usize {
        self.cardinalities.iter().sum()
    }
}

/// Frozen population: per-group attribute laws and label models.
#[derive(Debug, Clone)]
pub struct AdultLikePopulation {
    cfg: AdultLikeConfig,
    /// Per attribute: category probabilities for (majority, minority).
    probs_major: Vec<Vec<f64>>,
    probs_minor: Vec<Vec<f64>>,
    /// Logistic label-model coefficients over the one-hot vector.
    coef_major: Vec<f64>,
    coef_minor: Vec<f64>,
    seed: u64,
}

impl AdultLikePopulation {
    /// Build the population as a pure function of `(cfg, seed)`.
    pub fn new(cfg: AdultLikeConfig, seed: u64) -> Self {
        assert!(!cfg.cardinalities.is_empty(), "need at least one attribute");
        let mut rng = StreamRng::for_key(StreamKey::new(seed, Purpose::DataGen, 400, 0));
        let draw_probs = |rng: &mut StreamRng, k: usize| -> Vec<f64> {
            // Dirichlet-ish: exponentials normalised.
            let raw: Vec<f64> = (0..k).map(|_| -rng.uniform().max(1e-12).ln()).collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / total).collect()
        };
        let mut probs_major = Vec::new();
        let mut probs_minor = Vec::new();
        for &k in &cfg.cardinalities {
            let pm = draw_probs(&mut rng, k);
            let tilt = draw_probs(&mut rng, k);
            let s = cfg.distribution_shift;
            let pn: Vec<f64> = pm
                .iter()
                .zip(&tilt)
                .map(|(&a, &b)| (1.0 - s) * a + s * b)
                .collect();
            probs_major.push(pm);
            probs_minor.push(pn);
        }
        let dim = cfg.dim();
        let coef_major: Vec<f64> = (0..dim).map(|_| rng.normal()).collect();
        let rot: Vec<f64> = (0..dim).map(|_| rng.normal()).collect();
        let c = cfg.concept_shift;
        let coef_minor: Vec<f64> = coef_major
            .iter()
            .zip(&rot)
            .map(|(&a, &b)| (1.0 - c) * a + c * b)
            .collect();
        Self {
            cfg,
            probs_major,
            probs_minor,
            coef_major,
            coef_minor,
            seed,
        }
    }

    /// The configuration used to build this population.
    pub fn config(&self) -> &AdultLikeConfig {
        &self.cfg
    }

    /// Sample `n` one-hot examples from a group. `salt` distinguishes
    /// multiple draws (train/test, different clients).
    pub fn sample(&self, group: Group, n: usize, salt: u64) -> Dataset {
        let entity = match group {
            Group::Majority => salt * 2,
            Group::Minority => salt * 2 + 1,
        };
        let mut rng = StreamRng::for_key(StreamKey::new(self.seed, Purpose::DataGen, 401, entity));
        let (probs, coef) = match group {
            Group::Majority => (&self.probs_major, &self.coef_major),
            Group::Minority => (&self.probs_minor, &self.coef_minor),
        };
        let dim = self.cfg.dim();
        let mut x = Matrix::zeros(n, dim);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let row = x.row_mut(i);
            let mut offset = 0;
            let mut logit = 0.0_f64;
            for p in probs {
                let level = rng.sample_weighted(p);
                row[offset + level] = 1.0;
                logit += coef[offset + level];
                offset += p.len();
            }
            // Normalise by √(attrs) so the logit is O(1), then sharpen so
            // the Bayes accuracy of the label model is ~0.85 rather than
            // near-chance (matching Adult's learnability).
            let prob = 1.0 / (1.0 + (-(2.5 * logit / (probs.len() as f64).sqrt())).exp());
            y.push(usize::from(rng.uniform() < prob));
        }
        Dataset::new(x, y, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_structure() {
        let pop = AdultLikePopulation::new(AdultLikeConfig::default(), 1);
        let ds = pop.sample(Group::Majority, 10, 0);
        assert_eq!(ds.dim(), pop.config().dim());
        let n_attrs = pop.config().cardinalities.len() as f32;
        for row in ds.x.rows_iter() {
            // Exactly one 1 per attribute.
            let total: f32 = row.iter().sum();
            assert_eq!(total, n_attrs);
            assert!(row.iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn deterministic_per_key() {
        let pop = AdultLikePopulation::new(AdultLikeConfig::default(), 1);
        let a = pop.sample(Group::Minority, 6, 3);
        let b = pop.sample(Group::Minority, 6, 3);
        assert_eq!(a.x.max_abs_diff(&b.x), 0.0);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn groups_have_shifted_distributions() {
        let pop = AdultLikePopulation::new(AdultLikeConfig::default(), 2);
        let a = pop.sample(Group::Majority, 2000, 0);
        let b = pop.sample(Group::Minority, 2000, 0);
        // Compare empirical one-hot means; they must differ meaningfully.
        let mean = |d: &Dataset| -> Vec<f64> {
            let mut m = vec![0.0; d.dim()];
            for row in d.x.rows_iter() {
                for (acc, &v) in m.iter_mut().zip(row) {
                    *acc += f64::from(v);
                }
            }
            m.iter().map(|v| v / d.len() as f64).collect()
        };
        let ma = mean(&a);
        let mb = mean(&b);
        let l1: f64 = ma.iter().zip(&mb).map(|(x, y)| (x - y).abs()).sum();
        assert!(l1 > 0.2, "groups look identical: L1 diff {l1}");
    }

    #[test]
    fn labels_are_binary_and_both_present() {
        let pop = AdultLikePopulation::new(AdultLikeConfig::default(), 3);
        let ds = pop.sample(Group::Majority, 500, 1);
        let counts = ds.class_counts();
        assert_eq!(counts.len(), 2);
        assert!(counts[0] > 50 && counts[1] > 50, "{counts:?}");
    }

    #[test]
    fn zero_shift_makes_groups_statistically_close() {
        let cfg = AdultLikeConfig {
            distribution_shift: 0.0,
            concept_shift: 0.0,
            ..Default::default()
        };
        let pop = AdultLikePopulation::new(cfg, 4);
        let a = pop.sample(Group::Majority, 4000, 0);
        let b = pop.sample(Group::Minority, 4000, 0);
        let mean1 = |d: &Dataset, j: usize| {
            d.x.rows_iter().map(|r| f64::from(r[j])).sum::<f64>() / d.len() as f64
        };
        // Check the first-attribute level frequencies match within noise.
        for j in 0..8 {
            assert!((mean1(&a, j) - mean1(&b, j)).abs() < 0.05);
        }
    }
}
