//! Class-conditional synthetic image generator.
//!
//! Stand-in for EMNIST-Digits, MNIST, and Fashion-MNIST. Each class `c`
//! owns a prototype image: a sum of Gaussian intensity bumps whose centres
//! and widths are drawn from a class-keyed RNG (so prototypes are a fixed
//! function of `(dataset seed, class)`). A sample of class `c` is
//! `clip(separation · prototype_c + noise · ε, 0, 1)` with i.i.d. standard
//! normal `ε` — mirroring the "digit shape plus pixel noise" structure the
//! linear and MLP models in the paper exploit.
//!
//! Difficulty knobs:
//! - `separation` scales the signal; lower values make classes overlap.
//! - `noise` scales per-pixel noise.
//! - `prototype_overlap` mixes each prototype with the mean prototype,
//!   modelling datasets like Fashion-MNIST where classes share structure
//!   (shirts vs pullovers), which is what drives its lower accuracy.

use crate::dataset::Dataset;
use crate::rng::{Purpose, StreamKey, StreamRng};
use hm_tensor::Matrix;

/// Configuration of the synthetic image distribution.
#[derive(Debug, Clone)]
pub struct ImageConfig {
    /// Image side length; feature dimension is `side * side`.
    pub side: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Gaussian bumps per class prototype.
    pub bumps_per_class: usize,
    /// Signal scale (higher = easier).
    pub separation: f32,
    /// Per-pixel noise standard deviation.
    pub noise: f32,
    /// In `[0, 1]`: fraction of the shared mean mixed into every prototype
    /// (higher = classes more confusable).
    pub prototype_overlap: f32,
    /// In `[0, 1]`: classes `2k` and `2k+1` share a pair-base prototype
    /// mixed in at this strength, with later pairs more confusable than
    /// earlier ones. This models real datasets' hard class pairs
    /// (shirt/pullover in Fashion-MNIST, 4/9 in digits): it bounds the
    /// worst-class accuracy a uniformly-weighted model reaches, which is
    /// the gap minimax reweighting closes.
    pub pair_similarity: f32,
    /// ≥ 0: per-class noise asymmetry. Class `c`'s pixel noise is
    /// `noise · (1 + noise_spread · c/(C−1))`, so later classes are
    /// intrinsically harder. A uniformly-weighted model under-serves the
    /// noisy classes (their per-class accuracy plateaus lower); minimax
    /// reweighting shifts the decision boundaries toward the clean classes
    /// and lifts the worst one — the paper's central fairness effect.
    pub noise_spread: f32,
    /// In `[0, 1)`: per-class signal attenuation. Class `c`'s prototype is
    /// scaled by `1 − separation_spread · c/(C−1)`, so later classes have a
    /// weaker signal. Unlike noise (which caps the reachable accuracy),
    /// weak signal slows *learning*: under uniform weights the weak classes
    /// lag for a long time, and minimax reweighting closes the gap — the
    /// allocation-driven deficit behind Figs. 3–4.
    pub separation_spread: f32,
}

impl ImageConfig {
    /// EMNIST-Digits stand-in: well-separated digits with a couple of
    /// moderately confusable pairs.
    pub fn emnist_digits_like() -> Self {
        Self {
            side: 16,
            num_classes: 10,
            bumps_per_class: 4,
            separation: 1.0,
            noise: 0.35,
            prototype_overlap: 0.0,
            pair_similarity: 0.45,
            noise_spread: 0.2,
            separation_spread: 0.35,
        }
    }

    /// MNIST stand-in: slightly noisier than EMNIST-Digits.
    pub fn mnist_like() -> Self {
        Self {
            side: 16,
            num_classes: 10,
            bumps_per_class: 4,
            separation: 0.9,
            noise: 0.45,
            prototype_overlap: 0.1,
            pair_similarity: 0.55,
            noise_spread: 0.3,
            separation_spread: 0.65,
        }
    }

    /// Fashion-MNIST stand-in: overlapping prototypes, higher noise, very
    /// confusable pairs — the "harder dataset" of §6.2 / Table 2.
    pub fn fashion_mnist_like() -> Self {
        Self {
            side: 16,
            num_classes: 10,
            bumps_per_class: 5,
            separation: 0.9,
            noise: 0.45,
            prototype_overlap: 0.15,
            pair_similarity: 0.55,
            noise_spread: 0.3,
            separation_spread: 0.60,
        }
    }

    /// Feature dimension (`side²`).
    pub fn dim(&self) -> usize {
        self.side * self.side
    }
}

/// The frozen class prototypes of one synthetic image distribution.
#[derive(Debug, Clone)]
pub struct ImageDistribution {
    cfg: ImageConfig,
    /// `num_classes × dim` prototype matrix (already overlap-mixed and
    /// separation-scaled).
    prototypes: Matrix,
    seed: u64,
}

impl ImageDistribution {
    /// Build the distribution: prototypes are a pure function of
    /// `(seed, config)`.
    pub fn new(cfg: ImageConfig, seed: u64) -> Self {
        assert!(cfg.side > 0 && cfg.num_classes > 0 && cfg.bumps_per_class > 0);
        assert!(
            (0.0..=1.0).contains(&cfg.prototype_overlap),
            "prototype_overlap must lie in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.pair_similarity),
            "pair_similarity must lie in [0,1]"
        );
        assert!(cfg.noise_spread >= 0.0, "noise_spread must be non-negative");
        assert!(
            (0.0..1.0).contains(&cfg.separation_spread),
            "separation_spread must lie in [0,1)"
        );
        let dim = cfg.dim();
        // A bump image keyed by (seed, entity): used for both per-class
        // detail prototypes and per-pair base prototypes.
        let bump_image = |entity: u64, bumps: usize| -> Vec<f32> {
            let mut rng = StreamRng::for_key(StreamKey::new(seed, Purpose::DataGen, 0, entity));
            let mut img = vec![0.0_f32; dim];
            for _ in 0..bumps {
                let cx = rng.uniform() * cfg.side as f64;
                let cy = rng.uniform() * cfg.side as f64;
                let sigma = 0.8 + rng.uniform() * (cfg.side as f64 / 5.0);
                let amp = 0.5 + rng.uniform() * 0.5;
                for py in 0..cfg.side {
                    for px in 0..cfg.side {
                        let dx = px as f64 + 0.5 - cx;
                        let dy = py as f64 + 0.5 - cy;
                        let v = amp * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
                        img[py * cfg.side + px] += v as f32;
                    }
                }
            }
            let mx = img.iter().copied().fold(0.0_f32, f32::max).max(1e-6);
            img.iter_mut().for_each(|x| *x /= mx);
            img
        };
        let num_pairs = cfg.num_classes.div_ceil(2);
        let mut raw = Matrix::zeros(cfg.num_classes, dim);
        for c in 0..cfg.num_classes {
            let detail = bump_image(c as u64, cfg.bumps_per_class);
            // Pair base: shared by classes 2k and 2k+1; later pairs mix it
            // in more strongly (more confusable).
            let pair = c / 2;
            let base = bump_image(10_000 + pair as u64, cfg.bumps_per_class);
            let frac = if num_pairs > 1 {
                0.5 + 0.5 * pair as f32 / (num_pairs - 1) as f32
            } else {
                1.0
            };
            let s = cfg.pair_similarity * frac;
            let row = raw.row_mut(c);
            for ((r, &d), &b) in row.iter_mut().zip(&detail).zip(&base) {
                *r = (1.0 - s) * d + s * b;
            }
        }
        // Mix in the mean prototype to create class confusability.
        let mean: Vec<f32> = (0..dim)
            .map(|j| {
                (0..cfg.num_classes).map(|c| raw[(c, j)]).sum::<f32>() / cfg.num_classes as f32
            })
            .collect();
        let lam = cfg.prototype_overlap;
        let c_max = (cfg.num_classes - 1).max(1) as f32;
        let mut prototypes = raw;
        for c in 0..cfg.num_classes {
            let atten = 1.0 - cfg.separation_spread * c as f32 / c_max;
            let scale = cfg.separation * atten;
            let row = prototypes.row_mut(c);
            for (x, &m) in row.iter_mut().zip(&mean) {
                *x = scale * ((1.0 - lam) * *x + lam * m);
            }
        }
        Self {
            cfg,
            prototypes,
            seed,
        }
    }

    /// The configuration this distribution was built from.
    pub fn config(&self) -> &ImageConfig {
        &self.cfg
    }

    /// Prototype row for a class (separation-scaled).
    pub fn prototype(&self, class: usize) -> &[f32] {
        self.prototypes.row(class)
    }

    /// Effective pixel-noise standard deviation of a class:
    /// `noise · (1 + noise_spread · c/(C−1))`.
    pub fn class_noise(&self, class: usize) -> f32 {
        let c_max = (self.cfg.num_classes - 1).max(1) as f32;
        self.cfg.noise * (1.0 + self.cfg.noise_spread * class as f32 / c_max)
    }

    /// Sample `n` examples of the given classes (cycled), using the
    /// `(stream, entity)` pair to key the RNG so different edges/clients
    /// draw independent data.
    pub fn sample(&self, classes: &[usize], n: usize, entity: u64) -> Dataset {
        assert!(!classes.is_empty(), "need at least one class to sample");
        let dim = self.cfg.dim();
        let mut rng = StreamRng::for_key(StreamKey::new(self.seed, Purpose::DataGen, 1, entity));
        let mut x = Matrix::zeros(n, dim);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = classes[i % classes.len()];
            assert!(class < self.cfg.num_classes, "class {class} out of range");
            let proto = self.prototypes.row(class);
            let noise = f64::from(self.class_noise(class));
            let row = x.row_mut(i);
            for (v, &p) in row.iter_mut().zip(proto) {
                let noisy = f64::from(p) + noise * rng.normal();
                *v = noisy.clamp(0.0, 1.0) as f32;
            }
            y.push(class);
        }
        // Shuffle so classes are interleaved within the dataset.
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        Dataset::new(
            x.select_rows(&idx),
            idx.iter().map(|&i| y[i]).collect(),
            self.cfg.num_classes,
        )
    }

    /// Sample a balanced dataset over *all* classes.
    pub fn sample_all_classes(&self, n: usize, entity: u64) -> Dataset {
        let classes: Vec<usize> = (0..self.cfg.num_classes).collect();
        self.sample(&classes, n, entity)
    }

    /// Sample `n` examples with class frequencies proportional to
    /// `weights` (deterministic largest-remainder allocation, so exact
    /// counts are reproducible). Models real-world class imbalance: rare
    /// classes receive proportionally less gradient mass under sample-mean
    /// training, which is a fairness deficit minimax reweighting can fix.
    ///
    /// # Panics
    /// Panics unless `weights.len() == num_classes` with positive total.
    pub fn sample_weighted_classes(&self, weights: &[f64], n: usize, entity: u64) -> Dataset {
        assert_eq!(weights.len(), self.cfg.num_classes, "one weight per class");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0),
            "bad class weights"
        );
        // Largest-remainder apportionment of n samples to classes.
        let quotas: Vec<f64> = weights.iter().map(|&w| w / total * n as f64).collect();
        let mut counts: Vec<usize> = quotas.iter().map(|&q| q.floor() as usize).collect();
        let mut rest: Vec<(usize, f64)> = quotas
            .iter()
            .enumerate()
            .map(|(i, &q)| (i, q - q.floor()))
            .collect();
        rest.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let assigned: usize = counts.iter().sum();
        for (i, _) in rest.iter().take(n - assigned) {
            counts[*i] += 1;
        }
        let classes: Vec<usize> = counts
            .iter()
            .enumerate()
            .flat_map(|(c, &k)| std::iter::repeat_n(c, k))
            .collect();
        self.sample(&classes, n, entity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototypes_are_deterministic() {
        let a = ImageDistribution::new(ImageConfig::emnist_digits_like(), 9);
        let b = ImageDistribution::new(ImageConfig::emnist_digits_like(), 9);
        assert_eq!(a.prototype(3), b.prototype(3));
    }

    #[test]
    fn different_seeds_differ() {
        let a = ImageDistribution::new(ImageConfig::emnist_digits_like(), 9);
        let b = ImageDistribution::new(ImageConfig::emnist_digits_like(), 10);
        assert_ne!(a.prototype(0), b.prototype(0));
    }

    #[test]
    fn samples_have_expected_shape_and_range() {
        let d = ImageDistribution::new(ImageConfig::mnist_like(), 1);
        let ds = d.sample(&[2, 7], 20, 0);
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.dim(), 256);
        assert!(ds.x.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(ds.y.iter().all(|&l| l == 2 || l == 7));
        let counts = ds.class_counts();
        assert_eq!(counts[2], 10);
        assert_eq!(counts[7], 10);
    }

    #[test]
    fn entities_draw_independent_data() {
        let d = ImageDistribution::new(ImageConfig::mnist_like(), 1);
        let a = d.sample(&[0], 4, 0);
        let b = d.sample(&[0], 4, 1);
        assert!(a.x.max_abs_diff(&b.x) > 0.0);
    }

    #[test]
    fn overlap_one_collapses_prototypes() {
        let mut cfg = ImageConfig::emnist_digits_like();
        cfg.prototype_overlap = 1.0;
        cfg.separation_spread = 0.0; // per-class attenuation would re-split them
        let d = ImageDistribution::new(cfg, 3);
        let p0: Vec<f32> = d.prototype(0).to_vec();
        let p1: Vec<f32> = d.prototype(1).to_vec();
        for (a, b) in p0.iter().zip(&p1) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fashion_preset_is_harder_than_emnist() {
        // Harder = prototypes closer together relative to noise. Compare the
        // minimum inter-class prototype distance scaled by noise.
        let sep = |cfg: ImageConfig| {
            let d = ImageDistribution::new(cfg.clone(), 5);
            let mut min_dist = f64::MAX;
            for a in 0..cfg.num_classes {
                for b in (a + 1)..cfg.num_classes {
                    let dist = hm_tensor::vecops::dist2_sq(d.prototype(a), d.prototype(b)).sqrt();
                    min_dist = min_dist.min(dist);
                }
            }
            min_dist / f64::from(cfg.noise)
        };
        assert!(
            sep(ImageConfig::fashion_mnist_like()) < sep(ImageConfig::emnist_digits_like()),
            "fashion stand-in should have lower signal-to-noise than emnist stand-in"
        );
    }

    #[test]
    fn balanced_sampling_covers_all_classes() {
        let d = ImageDistribution::new(ImageConfig::emnist_digits_like(), 2);
        let ds = d.sample_all_classes(40, 7);
        let counts = ds.class_counts();
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }
}
