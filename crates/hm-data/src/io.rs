//! Real-dataset loaders.
//!
//! The experiments ship with synthetic stand-ins (no downloads in the build
//! environment), but the loaders here let a user drop in the *actual*
//! datasets the paper uses:
//!
//! - [`load_idx_dataset`] — the IDX format of MNIST / Fashion-MNIST /
//!   EMNIST (`train-images-idx3-ubyte` + `train-labels-idx1-ubyte`),
//!   pixels normalised to `[0, 1]`.
//! - [`load_categorical_csv`] — UCI Adult-style categorical CSV, one-hot
//!   encoded with level discovery, last column = class label.
//!
//! Both return the same [`Dataset`] the generators produce, so every
//! scenario constructor and algorithm works unchanged on real data.

use crate::dataset::Dataset;
use hm_tensor::Matrix;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::Path;

/// Errors from the dataset loaders.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid file (bad magic, truncated, inconsistent).
    Format(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn read_u32_be(r: &mut impl Read) -> Result<u32, LoadError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_be_bytes(buf))
}

/// Read an IDX3 image file (magic `0x00000803`): returns an `n × (rows·cols)`
/// matrix with pixels scaled to `[0, 1]`.
pub fn read_idx_images(path: &Path) -> Result<Matrix, LoadError> {
    let mut r = BufReader::new(File::open(path)?);
    let magic = read_u32_be(&mut r)?;
    if magic != 0x0000_0803 {
        return Err(LoadError::Format(format!(
            "bad IDX3 magic 0x{magic:08x} in {}",
            path.display()
        )));
    }
    let n = read_u32_be(&mut r)? as usize;
    let rows = read_u32_be(&mut r)? as usize;
    let cols = read_u32_be(&mut r)? as usize;
    // Validate header sizes before allocating: a corrupt header must fail
    // cleanly, not request a petabyte (or overflow the multiply).
    const MAX_ELEMENTS: u64 = 1 << 31;
    let dim64 = (rows as u64)
        .checked_mul(cols as u64)
        .ok_or_else(|| LoadError::Format("image dimensions overflow".into()))?;
    let total = (n as u64)
        .checked_mul(dim64)
        .filter(|&t| t <= MAX_ELEMENTS)
        .ok_or_else(|| {
            LoadError::Format(format!("implausible IDX3 header: {n} x {rows} x {cols}"))
        })?;
    let dim = dim64 as usize;
    let mut bytes = vec![0u8; total as usize];
    r.read_exact(&mut bytes)
        .map_err(|e| LoadError::Format(format!("truncated image data: {e}")))?;
    let data: Vec<f32> = bytes.into_iter().map(|b| f32::from(b) / 255.0).collect();
    Ok(Matrix::from_vec(n, dim, data))
}

/// Read an IDX1 label file (magic `0x00000801`).
pub fn read_idx_labels(path: &Path) -> Result<Vec<usize>, LoadError> {
    let mut r = BufReader::new(File::open(path)?);
    let magic = read_u32_be(&mut r)?;
    if magic != 0x0000_0801 {
        return Err(LoadError::Format(format!(
            "bad IDX1 magic 0x{magic:08x} in {}",
            path.display()
        )));
    }
    let n = read_u32_be(&mut r)? as usize;
    if n as u64 > 1 << 31 {
        return Err(LoadError::Format(format!(
            "implausible IDX1 header: {n} labels"
        )));
    }
    let mut bytes = vec![0u8; n];
    r.read_exact(&mut bytes)
        .map_err(|e| LoadError::Format(format!("truncated label data: {e}")))?;
    Ok(bytes.into_iter().map(usize::from).collect())
}

/// Load a full IDX dataset (image file + label file), e.g. MNIST's
/// `train-images-idx3-ubyte` / `train-labels-idx1-ubyte` pair.
///
/// `num_classes` of the returned dataset is `max(label) + 1`.
pub fn load_idx_dataset(images: &Path, labels: &Path) -> Result<Dataset, LoadError> {
    let x = read_idx_images(images)?;
    let y = read_idx_labels(labels)?;
    if x.rows() != y.len() {
        return Err(LoadError::Format(format!(
            "{} images but {} labels",
            x.rows(),
            y.len()
        )));
    }
    let num_classes = y.iter().copied().max().map_or(1, |m| m + 1);
    Ok(Dataset::new(x, y, num_classes))
}

/// Load a categorical CSV (UCI Adult style): every column but the last is a
/// categorical attribute (one-hot encoded; levels discovered in first-seen
/// order per column, then sorted for determinism), the last column is the
/// class label (levels likewise discovered; e.g. `<=50K` / `>50K` → 0 / 1).
/// Lines are comma-separated; surrounding whitespace is trimmed; empty
/// lines are skipped.
pub fn load_categorical_csv(path: &Path) -> Result<Dataset, LoadError> {
    let r = BufReader::new(File::open(path)?);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for line in r.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<String> = line.split(',').map(|f| f.trim().to_string()).collect();
        if let Some(first) = rows.first() {
            if fields.len() != first.len() {
                return Err(LoadError::Format(format!(
                    "inconsistent column count: {} vs {}",
                    fields.len(),
                    first.len()
                )));
            }
        }
        rows.push(fields);
    }
    if rows.is_empty() {
        return Err(LoadError::Format("empty csv".into()));
    }
    let cols = rows[0].len();
    if cols < 2 {
        return Err(LoadError::Format("need ≥1 attribute column + label".into()));
    }
    let n_attrs = cols - 1;
    // Discover levels per attribute column (BTreeMap: sorted & deterministic).
    let mut levels: Vec<BTreeMap<String, usize>> = vec![BTreeMap::new(); n_attrs];
    let mut label_levels: BTreeMap<String, usize> = BTreeMap::new();
    for row in &rows {
        for (a, field) in row[..n_attrs].iter().enumerate() {
            let next = levels[a].len();
            levels[a].entry(field.clone()).or_insert(next);
        }
        let next = label_levels.len();
        label_levels.entry(row[n_attrs].clone()).or_insert(next);
    }
    // Re-index sorted (BTreeMap iteration order) for determinism independent
    // of row order.
    for m in levels.iter_mut() {
        let keys: Vec<String> = m.keys().cloned().collect();
        for (i, k) in keys.into_iter().enumerate() {
            m.insert(k, i);
        }
    }
    {
        let keys: Vec<String> = label_levels.keys().cloned().collect();
        for (i, k) in keys.into_iter().enumerate() {
            label_levels.insert(k, i);
        }
    }
    let offsets: Vec<usize> = levels
        .iter()
        .scan(0usize, |acc, m| {
            let off = *acc;
            *acc += m.len();
            Some(off)
        })
        .collect();
    let dim: usize = levels.iter().map(|m| m.len()).sum();
    let mut x = Matrix::zeros(rows.len(), dim);
    let mut y = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        for (a, field) in row[..n_attrs].iter().enumerate() {
            let level = levels[a][field];
            x[(i, offsets[a] + level)] = 1.0;
        }
        y.push(label_levels[&row[n_attrs]]);
    }
    Ok(Dataset::new(x, y, label_levels.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hm-io-{}-{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-")
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_idx3(path: &Path, n: u32, rows: u32, cols: u32, pixels: &[u8]) {
        let mut f = File::create(path).unwrap();
        f.write_all(&0x0000_0803u32.to_be_bytes()).unwrap();
        f.write_all(&n.to_be_bytes()).unwrap();
        f.write_all(&rows.to_be_bytes()).unwrap();
        f.write_all(&cols.to_be_bytes()).unwrap();
        f.write_all(pixels).unwrap();
    }

    fn write_idx1(path: &Path, labels: &[u8]) {
        let mut f = File::create(path).unwrap();
        f.write_all(&0x0000_0801u32.to_be_bytes()).unwrap();
        f.write_all(&(labels.len() as u32).to_be_bytes()).unwrap();
        f.write_all(labels).unwrap();
    }

    #[test]
    fn idx_roundtrip() {
        let d = tmpdir();
        let img = d.join("images");
        let lab = d.join("labels");
        // 2 images of 2×2.
        write_idx3(&img, 2, 2, 2, &[0, 255, 128, 64, 10, 20, 30, 40]);
        write_idx1(&lab, &[3, 7]);
        let ds = load_idx_dataset(&img, &lab).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 4);
        assert_eq!(ds.num_classes, 8);
        assert_eq!(ds.y, vec![3, 7]);
        assert!((ds.x[(0, 1)] - 1.0).abs() < 1e-6);
        assert!((ds.x[(0, 2)] - 128.0 / 255.0).abs() < 1e-6);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn idx_bad_magic_rejected() {
        let d = tmpdir();
        let img = d.join("badmagic");
        let mut f = File::create(&img).unwrap();
        f.write_all(&0xDEADBEEFu32.to_be_bytes()).unwrap();
        drop(f);
        let err = read_idx_images(&img).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)), "{err}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn idx_huge_header_rejected_without_allocating() {
        let d = tmpdir();
        let img = d.join("huge");
        let mut f = File::create(&img).unwrap();
        f.write_all(&0x0000_0803u32.to_be_bytes()).unwrap();
        f.write_all(&u32::MAX.to_be_bytes()).unwrap(); // n
        f.write_all(&u32::MAX.to_be_bytes()).unwrap(); // rows
        f.write_all(&u32::MAX.to_be_bytes()).unwrap(); // cols
        drop(f);
        let err = read_idx_images(&img).unwrap_err();
        assert!(
            matches!(err, LoadError::Format(m) if m.contains("implausible") || m.contains("overflow"))
        );
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn idx_truncated_rejected() {
        let d = tmpdir();
        let img = d.join("trunc");
        write_idx3(&img, 3, 2, 2, &[0; 4]); // claims 3 images, has 1
        let err = read_idx_images(&img).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)), "{err}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn idx_count_mismatch_rejected() {
        let d = tmpdir();
        let img = d.join("img");
        let lab = d.join("lab");
        write_idx3(&img, 1, 1, 1, &[9]);
        write_idx1(&lab, &[0, 1]);
        let err = load_idx_dataset(&img, &lab).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)), "{err}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn csv_one_hot_roundtrip() {
        let d = tmpdir();
        let p = d.join("adult.csv");
        std::fs::write(
            &p,
            "Private, Bachelors, <=50K\nSelf-emp, HS-grad, >50K\nPrivate, HS-grad, <=50K\n",
        )
        .unwrap();
        let ds = load_categorical_csv(&p).unwrap();
        assert_eq!(ds.len(), 3);
        // Column 0 has 2 levels, column 1 has 2 levels → dim 4.
        assert_eq!(ds.dim(), 4);
        assert_eq!(ds.num_classes, 2);
        // Each row has exactly one 1 per attribute.
        for row in ds.x.rows_iter() {
            assert_eq!(row.iter().sum::<f32>(), 2.0);
        }
        // Deterministic label mapping: "<=50K" < ">50K" lexicographically.
        assert_eq!(ds.y, vec![0, 1, 0]);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn csv_level_indexing_is_row_order_independent() {
        let d = tmpdir();
        let p1 = d.join("a.csv");
        let p2 = d.join("b.csv");
        std::fs::write(&p1, "x, yes\ny, no\n").unwrap();
        std::fs::write(&p2, "y, no\nx, yes\n").unwrap();
        let a = load_categorical_csv(&p1).unwrap();
        let b = load_categorical_csv(&p2).unwrap();
        // Same encoding: row "x,yes" identical in both files.
        let row_a: Vec<f32> = a.x.row(0).to_vec();
        let row_b: Vec<f32> = b.x.row(1).to_vec();
        assert_eq!(row_a, row_b);
        assert_eq!(a.y[0], b.y[1]);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn csv_inconsistent_columns_rejected() {
        let d = tmpdir();
        let p = d.join("bad.csv");
        std::fs::write(&p, "a, b, 0\nc, 1\n").unwrap();
        let err = load_categorical_csv(&p).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)), "{err}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Arbitrary bytes never panic the IDX readers — they either
            /// parse (only when structurally valid) or return an error.
            #[test]
            fn prop_idx_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
                let d = std::env::temp_dir()
                    .join(format!("hm-io-fuzz-{}-{:x}", std::process::id(), bytes.len()));
                std::fs::create_dir_all(&d).unwrap();
                let p = d.join("fuzz.idx");
                std::fs::write(&p, &bytes).unwrap();
                let _ = read_idx_images(&p); // must not panic
                let _ = read_idx_labels(&p);
                std::fs::remove_dir_all(&d).ok();
            }

            /// Arbitrary text never panics the CSV loader.
            #[test]
            fn prop_csv_loader_never_panics(text in "[ -~\n]{0,200}") {
                let d = std::env::temp_dir()
                    .join(format!("hm-csv-fuzz-{}-{:x}", std::process::id(), text.len()));
                std::fs::create_dir_all(&d).unwrap();
                let p = d.join("fuzz.csv");
                std::fs::write(&p, &text).unwrap();
                let _ = load_categorical_csv(&p); // must not panic
                std::fs::remove_dir_all(&d).ok();
            }
        }
    }

    #[test]
    fn csv_empty_rejected() {
        let d = tmpdir();
        let p = d.join("empty.csv");
        std::fs::write(&p, "\n\n").unwrap();
        assert!(load_categorical_csv(&p).is_err());
        std::fs::remove_dir_all(&d).unwrap();
    }
}
