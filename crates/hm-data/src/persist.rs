//! Flat-parameter persistence: a minimal versioned binary format for model
//! vectors, so trained models can be saved from one run and evaluated (or
//! warm-started) in another without pulling a serialization framework.
//!
//! Format (all little-endian): magic `b"HMW1"`, `u64` length, then `len`
//! IEEE-754 `f32` values, then a `u64` FNV-1a checksum of the payload
//! bytes. The checksum catches truncation and bit rot; the magic catches
//! wrong-file mistakes.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HMW1";

/// Errors from parameter persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid file.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Write a parameter vector to `path`.
pub fn save_params(path: &Path, params: &[f32]) -> Result<(), PersistError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    let mut payload = Vec::with_capacity(params.len() * 4);
    for &x in params {
        payload.extend_from_slice(&x.to_le_bytes());
    }
    w.write_all(&payload)?;
    w.write_all(&fnv1a(&payload).to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Read a parameter vector from `path`, validating magic and checksum.
pub fn load_params(path: &Path) -> Result<Vec<f32>, PersistError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format(format!(
            "bad magic {magic:?} in {}",
            path.display()
        )));
    }
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)?;
    let len64 = u64::from_le_bytes(len_bytes);
    // Validate before allocating: a corrupt length field must fail cleanly,
    // not request terabytes (or overflow the multiply on 32-bit targets).
    const MAX_PARAMS: u64 = 1 << 31;
    if len64 > MAX_PARAMS {
        return Err(PersistError::Format(format!(
            "implausible parameter count {len64}"
        )));
    }
    let len = len64 as usize;
    let mut payload = vec![0u8; len * 4];
    r.read_exact(&mut payload)
        .map_err(|e| PersistError::Format(format!("truncated payload: {e}")))?;
    let mut sum_bytes = [0u8; 8];
    r.read_exact(&mut sum_bytes)
        .map_err(|e| PersistError::Format(format!("missing checksum: {e}")))?;
    if u64::from_le_bytes(sum_bytes) != fnv1a(&payload) {
        return Err(PersistError::Format("checksum mismatch".into()));
    }
    Ok(payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("hm-persist-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn roundtrip() {
        let p = tmp("w.hmw");
        let orig: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        save_params(&p, &orig).unwrap();
        let back = load_params(&p).unwrap();
        assert_eq!(orig, back);
    }

    #[test]
    fn empty_roundtrip() {
        let p = tmp("empty.hmw");
        save_params(&p, &[]).unwrap();
        assert_eq!(load_params(&p).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn special_values_roundtrip() {
        let p = tmp("special.hmw");
        let orig = vec![0.0, -0.0, f32::MIN_POSITIVE, f32::MAX, -1e-38];
        save_params(&p, &orig).unwrap();
        let back = load_params(&p).unwrap();
        assert_eq!(orig.len(), back.len());
        for (a, b) in orig.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let p = tmp("bad.hmw");
        std::fs::write(&p, b"NOPE\x00\x00\x00\x00\x00\x00\x00\x00").unwrap();
        assert!(matches!(load_params(&p), Err(PersistError::Format(_))));
    }

    #[test]
    fn corruption_detected() {
        let p = tmp("corrupt.hmw");
        save_params(&p, &[1.0, 2.0, 3.0]).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[14] ^= 0xFF; // flip a payload byte
        std::fs::write(&p, bytes).unwrap();
        let err = load_params(&p).unwrap_err();
        assert!(matches!(err, PersistError::Format(m) if m.contains("checksum")));
    }

    #[test]
    fn truncation_detected() {
        let p = tmp("trunc.hmw");
        save_params(&p, &[1.0; 100]).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(load_params(&p), Err(PersistError::Format(_))));
    }
}
