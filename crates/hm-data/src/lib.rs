//! Data substrate for the HierMinimax reproduction.
//!
//! The paper evaluates on EMNIST-Digits, Fashion-MNIST, MNIST, Adult, and
//! the Synthetic dataset of Li et al. (2020). Real downloads are not
//! available in this environment, so this crate provides synthetic stand-ins
//! that preserve the property each experiment exercises — *heterogeneity of
//! the per-edge data distributions* — plus the partitioners the paper uses
//! to induce it (one-label-per-edge, and the s%-similarity split of
//! SCAFFOLD/Karimireddy et al.). See DESIGN.md §2 for the substitution
//! rationale.
//!
//! Determinism: every random draw in the workspace flows through
//! [`rng::StreamRng`], a xoshiro256** generator seeded by hashing a
//! `(master seed, purpose, round, entity)` key with SplitMix64. Two runs
//! with the same master seed produce bit-identical results regardless of
//! rayon scheduling, because each (client, round) pair owns its own stream.

pub mod batch;
pub mod dataset;
pub mod generators;
pub mod io;
pub mod partition;
pub mod persist;
pub mod rng;
pub mod scenarios;

pub use dataset::{Dataset, DatasetError};
pub use rng::StreamRng;
