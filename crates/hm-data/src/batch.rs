//! Mini-batch sampling.
//!
//! Local SGD at a client (eq. 4 of the paper) consumes a fresh mini-batch
//! `ξ_n^{(t)}` per step, drawn i.i.d. from the client's local distribution.
//! We sample indices uniformly **with replacement** from the client's local
//! dataset, which is the sampling model under which the paper's bounded
//! stochastic-gradient-variance assumption (Assumption 4) is stated.

use crate::dataset::Dataset;
use crate::rng::StreamRng;

/// Draw a mini-batch of `batch_size` samples (with replacement) from `data`.
///
/// # Panics
/// Panics if `data` is empty or `batch_size == 0`.
pub fn sample_batch(data: &Dataset, batch_size: usize, rng: &mut StreamRng) -> Dataset {
    let mut scratch = BatchScratch::new();
    sample_batch_into(data, batch_size, rng, &mut scratch);
    scratch.batch
}

/// Reusable mini-batch storage: the sampled index buffer plus the gathered
/// batch itself. One `BatchScratch` held across the τ1 local steps makes
/// batch sampling allocation-free after the first draw.
#[derive(Debug)]
pub struct BatchScratch {
    /// Index buffer refilled on every draw.
    pub idx: Vec<usize>,
    /// The gathered mini-batch (rows copied out of the source dataset).
    pub batch: Dataset,
}

impl BatchScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            idx: Vec::new(),
            batch: Dataset {
                x: hm_tensor::Matrix::zeros(0, 0),
                y: Vec::new(),
                num_classes: 1,
            },
        }
    }
}

impl Default for BatchScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Draw a mini-batch into `scratch.batch`, reusing its buffers. The RNG draw
/// order matches [`sample_batch`] exactly, so both produce identical batches
/// from identical streams.
///
/// # Panics
/// Panics if `data` is empty or `batch_size == 0`.
pub fn sample_batch_into(
    data: &Dataset,
    batch_size: usize,
    rng: &mut StreamRng,
    scratch: &mut BatchScratch,
) {
    assert!(
        !data.is_empty(),
        "cannot sample a batch from an empty dataset"
    );
    assert!(batch_size > 0, "batch_size must be positive");
    scratch.idx.clear();
    scratch
        .idx
        .extend((0..batch_size).map(|_| rng.below(data.len())));
    data.subset_into(&scratch.idx, &mut scratch.batch);
}

/// A deterministic epoch-style batcher: shuffles once, then yields
/// consecutive batches, reshuffling at each epoch boundary. Used by the
/// centralised duality-gap solver, where full passes are preferable.
#[derive(Debug)]
pub struct EpochBatcher {
    order: Vec<usize>,
    cursor: usize,
    batch_size: usize,
}

impl EpochBatcher {
    /// Create a batcher over `n` samples.
    ///
    /// # Panics
    /// Panics if `n == 0` or `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize, rng: &mut StreamRng) -> Self {
        assert!(n > 0 && batch_size > 0);
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        Self {
            order,
            cursor: 0,
            batch_size,
        }
    }

    /// Next batch of indices, borrowed from the internal order buffer (valid
    /// until the next call); reshuffles when the epoch is exhausted.
    pub fn next_batch(&mut self, rng: &mut StreamRng) -> &[usize] {
        if self.cursor >= self.order.len() {
            rng.shuffle(&mut self.order);
            self.cursor = 0;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = &self.order[self.cursor..end];
        self.cursor = end;
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Purpose, StreamRng};
    use hm_tensor::Matrix;

    fn toy(n: usize) -> Dataset {
        Dataset::new(Matrix::from_fn(n, 1, |r, _| r as f32), vec![0; n], 1)
    }

    #[test]
    fn batch_has_requested_size_and_valid_rows() {
        let d = toy(5);
        let mut rng = StreamRng::new(0, Purpose::Batch, 0, 0);
        let b = sample_batch(&d, 8, &mut rng);
        assert_eq!(b.len(), 8);
        assert!(b.x.as_slice().iter().all(|&v| v < 5.0));
    }

    #[test]
    fn batches_are_deterministic_per_stream() {
        let d = toy(10);
        let mut r1 = StreamRng::new(3, Purpose::Batch, 1, 2);
        let mut r2 = StreamRng::new(3, Purpose::Batch, 1, 2);
        let a = sample_batch(&d, 4, &mut r1);
        let b = sample_batch(&d, 4, &mut r2);
        assert_eq!(a.x.max_abs_diff(&b.x), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let d = Dataset::new(Matrix::zeros(0, 1), vec![], 1);
        let mut rng = StreamRng::new(0, Purpose::Batch, 0, 0);
        let _ = sample_batch(&d, 1, &mut rng);
    }

    #[test]
    fn epoch_batcher_covers_every_index_once_per_epoch() {
        let mut rng = StreamRng::new(1, Purpose::Batch, 0, 0);
        let mut b = EpochBatcher::new(10, 3, &mut rng);
        let mut seen: Vec<usize> = Vec::new();
        for _ in 0..4 {
            seen.extend(b.next_batch(&mut rng));
        }
        // 3+3+3+1 = one full epoch.
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        // Next call starts a new epoch.
        let nb = b.next_batch(&mut rng);
        assert_eq!(nb.len(), 3);
    }
}
