//! The [`Model`] trait: a loss/gradient oracle over flat parameter vectors.

use crate::workspace::Workspace;
use hm_data::{Dataset, StreamRng};
use hm_tensor::Matrix;

/// A differentiable classification model with flat `f32` parameters.
///
/// Implementations must be pure functions of `(params, batch)`: calling
/// `loss_grad` twice with the same inputs returns identical results. This is
/// what lets the simulator replay clients deterministically and in parallel.
///
/// `loss_grad` and `loss_grad_ws` default to each other, so implementors
/// override exactly one: `loss_grad_ws` when the model stages intermediates
/// in the [`Workspace`] (the in-tree models do), `loss_grad` otherwise.
/// The two must return bit-identical results — `loss_grad_ws` is the same
/// computation minus the allocations, not an approximation.
pub trait Model: Send + Sync {
    /// Total number of scalar parameters `d` (the dimension of `W`).
    fn num_params(&self) -> usize;

    /// Draw initial parameters (architecture-appropriate initialisation).
    fn init_params(&self, rng: &mut StreamRng) -> Vec<f32>;

    /// Mean loss of `params` over `batch`.
    fn loss(&self, params: &[f32], batch: &Dataset) -> f64;

    /// Mean loss and its gradient. `grad` is overwritten (not accumulated)
    /// and must have length [`Model::num_params`].
    ///
    /// **Test/oracle use only.** This wrapper allocates a fresh
    /// [`Workspace`] on every call, which is exactly the per-call cost the
    /// training path exists to avoid. Production code holds scratch — via
    /// [`crate::pool::with_scratch`] or a long-lived [`Workspace`] — and
    /// calls [`loss_grad_ws`](Self::loss_grad_ws); the only in-tree callers
    /// of this wrapper are tests, gradient checks, and the deliberately
    /// naive reference oracle, where an extra allocation buys obviousness.
    fn loss_grad(&self, params: &[f32], batch: &Dataset, grad: &mut [f32]) -> f64 {
        let mut ws = Workspace::new();
        self.loss_grad_ws(params, batch, grad, &mut ws)
    }

    /// [`loss_grad`](Self::loss_grad) with caller-owned scratch: all
    /// intermediates live in `ws`, so a reused workspace makes repeated
    /// calls allocation-free. Results are bit-identical to `loss_grad`.
    fn loss_grad_ws(
        &self,
        params: &[f32],
        batch: &Dataset,
        grad: &mut [f32],
        ws: &mut Workspace,
    ) -> f64 {
        let _ = ws;
        self.loss_grad(params, batch, grad)
    }

    /// Predicted class per row of `x`.
    fn predict(&self, params: &[f32], x: &Matrix) -> Vec<usize>;

    /// Classification accuracy of `params` on `data` in `[0, 1]`.
    fn accuracy(&self, params: &[f32], data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let pred = self.predict(params, &data.x);
        let correct = pred.iter().zip(&data.y).filter(|(p, y)| p == y).count();
        correct as f64 / data.len() as f64
    }
}

/// Blanket impl so `&M`, `Box<M>`, `Arc<M>` work wherever a model is needed.
impl<M: Model + ?Sized> Model for &M {
    fn num_params(&self) -> usize {
        (**self).num_params()
    }
    fn init_params(&self, rng: &mut StreamRng) -> Vec<f32> {
        (**self).init_params(rng)
    }
    fn loss(&self, params: &[f32], batch: &Dataset) -> f64 {
        (**self).loss(params, batch)
    }
    fn loss_grad(&self, params: &[f32], batch: &Dataset, grad: &mut [f32]) -> f64 {
        (**self).loss_grad(params, batch, grad)
    }
    fn loss_grad_ws(
        &self,
        params: &[f32],
        batch: &Dataset,
        grad: &mut [f32],
        ws: &mut Workspace,
    ) -> f64 {
        (**self).loss_grad_ws(params, batch, grad, ws)
    }
    fn predict(&self, params: &[f32], x: &Matrix) -> Vec<usize> {
        (**self).predict(params, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MulticlassLogistic;
    use hm_data::rng::Purpose;

    #[test]
    fn accuracy_default_impl() {
        // A 1-feature 2-class problem where sign of the feature decides.
        let model = MulticlassLogistic::new(1, 2);
        // W = [[-1],[1]], b = 0: class 1 wins for x > 0.
        let params = vec![-1.0, 1.0, 0.0, 0.0];
        let x = Matrix::from_vec(4, 1, vec![-2.0, -1.0, 1.0, 2.0]);
        let data = Dataset::new(x, vec![0, 0, 1, 1], 2);
        assert_eq!(model.accuracy(&params, &data), 1.0);
        let flipped = Dataset::new(data.x.clone(), vec![1, 1, 0, 0], 2);
        assert_eq!(model.accuracy(&params, &flipped), 0.0);
    }

    #[test]
    fn reference_impl_through_ref() {
        let model = MulticlassLogistic::new(2, 2);
        let by_ref: &dyn Model = &model;
        assert_eq!(by_ref.num_params(), model.num_params());
        let mut rng = StreamRng::new(0, Purpose::Init, 0, 0);
        assert_eq!(by_ref.init_params(&mut rng).len(), model.num_params());
    }
}
