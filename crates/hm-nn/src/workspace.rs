//! Reusable forward/backward scratch — the allocation pool behind
//! [`Model::loss_grad_ws`](crate::Model::loss_grad_ws).
//!
//! A [`Workspace`] owns every intermediate buffer a model needs for one
//! `loss_grad` evaluation: activations, logits, backprop deltas, the CNN's
//! per-sample conv caches. Buffers are sized lazily on first use and then
//! reused, so a workspace held across the τ1 local-SGD steps of a client
//! makes the steady-state step loop allocation-free.
//!
//! One workspace per worker thread: a workspace is plain mutable state and
//! must not be shared between concurrent gradient evaluations. Reuse across
//! models or batch sizes is safe — every kernel writing into a buffer
//! resizes it first and either overwrites or explicitly zeroes it, so no
//! stale values leak between calls.

use crate::cnn::ConvCache;
use hm_tensor::Matrix;

/// Scratch buffers for one in-flight gradient evaluation.
///
/// The fields are crate-private: models lay them out as they need, callers
/// only create the workspace and hand it back on every call.
#[derive(Default)]
pub struct Workspace {
    /// Batch logits (`n × classes`).
    pub(crate) logits: Matrix,
    /// Cross-entropy backward delta, ping-ponged through the layer stack.
    pub(crate) delta: Matrix,
    /// Second delta buffer (swap partner of `delta`).
    pub(crate) delta2: Matrix,
    /// MLP hidden activations (`acts[l]` = post-ReLU output of layer `l`).
    pub(crate) acts: Vec<Matrix>,
    /// CNN flat conv features (`n × flat`).
    pub(crate) feats: Matrix,
    /// CNN fully-connected hidden activations (`n × hidden`).
    pub(crate) hid: Matrix,
    /// CNN gradient w.r.t. the flat features (`n × flat`).
    pub(crate) delta_feat: Matrix,
    /// CNN per-sample conv-stack caches (one per batch row).
    pub(crate) conv: Vec<ConvCache>,
    /// CNN per-sample backward scratch: grad w.r.t. conv2 activations.
    pub(crate) da2: Vec<f32>,
    /// CNN per-sample backward scratch: grad w.r.t. pool1 output.
    pub(crate) dp1: Vec<f32>,
    /// CNN per-sample backward scratch: grad w.r.t. conv1 activations.
    pub(crate) da1: Vec<f32>,
    /// Transposed weight matrix for the pre-transposed forward kernel
    /// (`ops::matmul_transb_pret_into`), rebuilt per linear layer.
    pub(crate) wt: Matrix,
    /// Lane-accumulator scratch (`4 × fan_out`) for the same kernel.
    pub(crate) lanes: Matrix,
}

impl Workspace {
    /// Empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make sure `acts` holds at least `n` matrices (shapes are fixed up by
    /// the kernels writing into them).
    pub(crate) fn ensure_acts(&mut self, n: usize) {
        while self.acts.len() < n {
            self.acts.push(Matrix::zeros(0, 0));
        }
    }
}
