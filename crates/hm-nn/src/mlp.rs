//! Fully-connected ReLU network — the paper's non-convex model (§6.2).
//!
//! The paper uses two hidden layers of 300 and 100 neurons with ReLU and a
//! softmax cross-entropy head (`W = R^266610` for 784-300-100-10). Widths
//! are configurable; experiments here default to scaled-down widths so runs
//! finish on CPU (DESIGN.md §2).
//!
//! Parameters are packed flat, layer by layer: `[W1 (h1×in), b1 (h1),
//! W2 (h2×h1), b2 (h2), ..., Wk (out×h_{k-1}), bk (out)]`.

use crate::losses::{cross_entropy_backward, cross_entropy_from_logits};
use crate::model::Model;
use hm_data::{Dataset, StreamRng};
use hm_tensor::{ops, Matrix};

/// Multi-layer perceptron with ReLU activations and a linear head.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Layer widths including input and output: `[in, h1, ..., out]`.
    widths: Vec<usize>,
}

impl Mlp {
    /// Build an MLP with the given hidden widths.
    ///
    /// # Panics
    /// Panics if any width is zero.
    pub fn new(input_dim: usize, hidden: &[usize], classes: usize) -> Self {
        let mut widths = Vec::with_capacity(hidden.len() + 2);
        widths.push(input_dim);
        widths.extend_from_slice(hidden);
        widths.push(classes);
        assert!(widths.iter().all(|&w| w > 0), "zero layer width");
        Self { widths }
    }

    /// The paper's architecture: hidden layers of 300 and 100 neurons.
    pub fn paper_arch(input_dim: usize, classes: usize) -> Self {
        Self::new(input_dim, &[300, 100], classes)
    }

    /// Layer widths including input and output.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Number of layers (linear transforms).
    pub fn num_layers(&self) -> usize {
        self.widths.len() - 1
    }

    /// Offsets of each layer's `(W, b)` blocks in the flat vector.
    fn layout(&self) -> Vec<(usize, usize, usize, usize)> {
        // (w_offset, w_len, b_offset, b_len) per layer.
        let mut out = Vec::with_capacity(self.num_layers());
        let mut off = 0;
        for l in 0..self.num_layers() {
            let (fan_in, fan_out) = (self.widths[l], self.widths[l + 1]);
            let w_len = fan_out * fan_in;
            out.push((off, w_len, off + w_len, fan_out));
            off += w_len + fan_out;
        }
        out
    }

    /// Forward pass; returns the logits and (optionally) the per-layer
    /// post-activation outputs needed by backprop (`acts[0]` is the input).
    fn forward(&self, params: &[f32], x: &Matrix, keep: bool) -> (Matrix, Vec<Matrix>) {
        assert_eq!(params.len(), self.num_params(), "bad parameter length");
        assert_eq!(x.cols(), self.widths[0], "input dim mismatch");
        let layout = self.layout();
        let mut acts: Vec<Matrix> = Vec::new();
        if keep {
            acts.push(x.clone());
        }
        let mut cur = x.clone();
        for (l, &(wo, wl, bo, bl)) in layout.iter().enumerate() {
            let (fan_in, fan_out) = (self.widths[l], self.widths[l + 1]);
            let w = Matrix::from_vec(fan_out, fan_in, params[wo..wo + wl].to_vec());
            let mut z = ops::matmul_transb(&cur, &w);
            ops::add_row_inplace(&mut z, &params[bo..bo + bl]);
            let last = l + 1 == self.num_layers();
            if !last {
                ops::relu_inplace(&mut z);
                if keep {
                    acts.push(z.clone());
                }
            }
            cur = z;
        }
        (cur, acts)
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.layout().last().map_or(0, |&(_, _, bo, bl)| bo + bl)
    }

    fn init_params(&self, rng: &mut StreamRng) -> Vec<f32> {
        // He (Kaiming) initialisation for ReLU layers; zero biases.
        let mut params = vec![0.0_f32; self.num_params()];
        for (l, (wo, wl, _, _)) in self.layout().into_iter().enumerate() {
            let fan_in = self.widths[l] as f64;
            let std = (2.0 / fan_in).sqrt();
            for p in &mut params[wo..wo + wl] {
                *p = rng.normal_with(0.0, std) as f32;
            }
        }
        params
    }

    fn loss(&self, params: &[f32], batch: &Dataset) -> f64 {
        let (logits, _) = self.forward(params, &batch.x, false);
        cross_entropy_from_logits(&logits, &batch.y)
    }

    fn loss_grad(&self, params: &[f32], batch: &Dataset, grad: &mut [f32]) -> f64 {
        assert_eq!(grad.len(), self.num_params(), "bad gradient length");
        let (logits, acts) = self.forward(params, &batch.x, true);
        let loss = cross_entropy_from_logits(&logits, &batch.y);
        let layout = self.layout();
        // Backward through the linear head and the ReLU stack.
        let mut delta = cross_entropy_backward(&logits, &batch.y); // n × out
        for l in (0..self.num_layers()).rev() {
            let (wo, wl, bo, bl) = layout[l];
            let (fan_in, fan_out) = (self.widths[l], self.widths[l + 1]);
            let input = &acts[l]; // n × fan_in (post-activation of prev layer)
                                  // Parameter gradients.
            let gw = ops::matmul_transa(&delta, input); // Δᵀ·input: fan_out × fan_in
            grad[wo..wo + wl].copy_from_slice(gw.as_slice());
            grad[bo..bo + bl].copy_from_slice(&ops::col_sums(&delta));
            // Propagate to the previous layer (skip for the input layer).
            if l > 0 {
                let w = Matrix::from_vec(fan_out, fan_in, params[wo..wo + wl].to_vec());
                let mut prev = ops::matmul(&delta, &w); // n × fan_in
                ops::relu_backward_inplace(&mut prev, &acts[l]);
                delta = prev;
            }
        }
        loss
    }

    fn predict(&self, params: &[f32], x: &Matrix) -> Vec<usize> {
        let (logits, _) = self.forward(params, x, false);
        ops::argmax_rows(&logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradient;
    use hm_data::rng::Purpose;

    fn toy_batch(dim: usize, classes: usize, n: usize) -> Dataset {
        let x = Matrix::from_fn(n, dim, |r, c| ((r * 13 + c * 7) % 11) as f32 / 11.0 - 0.5);
        let y = (0..n).map(|i| i % classes).collect();
        Dataset::new(x, y, classes)
    }

    #[test]
    fn param_count_matches_paper_arch() {
        let m = Mlp::paper_arch(784, 10);
        // 784*300+300 + 300*100+100 + 100*10+10 = 266610 (the paper's d).
        assert_eq!(m.num_params(), 266_610);
    }

    #[test]
    fn init_is_deterministic_and_nonzero() {
        let m = Mlp::new(5, &[4], 3);
        let mut r1 = StreamRng::new(1, Purpose::Init, 0, 0);
        let mut r2 = StreamRng::new(1, Purpose::Init, 0, 0);
        let p1 = m.init_params(&mut r1);
        let p2 = m.init_params(&mut r2);
        assert_eq!(p1, p2);
        assert!(p1.iter().any(|&x| x != 0.0));
        // Biases are zero: last 3 entries.
        assert!(p1[p1.len() - 3..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = Mlp::new(4, &[6, 5], 3);
        let mut rng = StreamRng::new(2, Purpose::Init, 0, 0);
        let params = m.init_params(&mut rng);
        let batch = toy_batch(4, 3, 6);
        // Central differences step across ReLU kinks, so the tolerance is
        // looser than for smooth models (the analytic one-sided gradient is
        // still correct at the kink).
        let max_err = check_gradient(&m, &params, &batch, 40, 3);
        assert!(max_err < 2.5e-2, "gradcheck error {max_err}");
    }

    #[test]
    fn gradient_matches_fd_single_hidden() {
        let m = Mlp::new(3, &[4], 2);
        let mut rng = StreamRng::new(5, Purpose::Init, 0, 0);
        let params = m.init_params(&mut rng);
        let batch = toy_batch(3, 2, 5);
        let max_err = check_gradient(&m, &params, &batch, 30, 9);
        assert!(max_err < 1e-2, "gradcheck error {max_err}");
    }

    #[test]
    fn sgd_fits_toy_problem() {
        let m = Mlp::new(4, &[16], 3);
        let batch = toy_batch(4, 3, 9);
        let mut rng = StreamRng::new(3, Purpose::Init, 0, 0);
        let mut p = m.init_params(&mut rng);
        let mut g = vec![0.0_f32; m.num_params()];
        let l0 = m.loss(&p, &batch);
        for _ in 0..800 {
            m.loss_grad(&p, &batch, &mut g);
            hm_tensor::vecops::axpy(-0.3, &g, &mut p);
        }
        let l1 = m.loss(&p, &batch);
        assert!(l1 < l0 * 0.5, "loss {l0} -> {l1}");
        assert!(m.accuracy(&p, &batch) >= 0.8);
    }

    #[test]
    fn no_hidden_layer_equals_linear_model() {
        // An MLP with no hidden layers is exactly multinomial logistic
        // regression; its loss at zero params must be ln(classes).
        let m = Mlp::new(3, &[], 4);
        let p = vec![0.0; m.num_params()];
        let batch = toy_batch(3, 4, 8);
        assert!((m.loss(&p, &batch) - (4.0_f64).ln()).abs() < 1e-6);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            #[test]
            fn prop_loss_finite_nonnegative(
                dim in 1usize..5, h in 1usize..6, classes in 2usize..4,
                n in 1usize..5, seed in 0u64..200,
            ) {
                let m = Mlp::new(dim, &[h], classes);
                let mut rng = StreamRng::new(seed, Purpose::Init, 0, 0);
                let params = m.init_params(&mut rng);
                let batch = toy_batch(dim, classes, n);
                let loss = m.loss(&params, &batch);
                prop_assert!(loss.is_finite() && loss >= 0.0);
            }

            #[test]
            fn prop_gradient_is_a_descent_direction(
                dim in 1usize..4, h in 2usize..5, classes in 2usize..4, seed in 0u64..100,
            ) {
                // Finite differences are unreliable near ReLU kinks (the
                // fixed-shape tests above cover FD agreement away from
                // them); across random shapes we assert the necessary
                // property that is kink-robust: a small step against the
                // analytic gradient does not increase the loss.
                let m = Mlp::new(dim, &[h], classes);
                let mut rng = StreamRng::new(seed, Purpose::Init, 0, 0);
                let params = m.init_params(&mut rng);
                let batch = toy_batch(dim, classes, 4);
                let mut grad = vec![0.0_f32; m.num_params()];
                let before = m.loss_grad(&params, &batch, &mut grad);
                let gnorm = hm_tensor::vecops::norm2(&grad);
                prop_assume!(gnorm > 1e-6);
                let mut stepped = params.clone();
                hm_tensor::vecops::axpy(-1e-3, &grad, &mut stepped);
                let after = m.loss(&stepped, &batch);
                prop_assert!(
                    after <= before + 1e-9,
                    "gradient step increased loss: {} -> {}",
                    before,
                    after
                );
            }

            #[test]
            fn prop_param_count_matches_layout(
                dim in 1usize..6, h1 in 1usize..6, h2 in 1usize..6, classes in 1usize..5,
            ) {
                let m = Mlp::new(dim, &[h1, h2], classes);
                let expect = h1 * dim + h1 + h2 * h1 + h2 + classes * h2 + classes;
                prop_assert_eq!(m.num_params(), expect);
            }

            #[test]
            fn prop_predictions_in_range(
                dim in 1usize..5, classes in 2usize..5, n in 1usize..6, seed in 0u64..200,
            ) {
                let m = Mlp::new(dim, &[4], classes);
                let mut rng = StreamRng::new(seed, Purpose::Init, 0, 0);
                let params = m.init_params(&mut rng);
                let batch = toy_batch(dim, classes, n);
                let preds = m.predict(&params, &batch.x);
                prop_assert_eq!(preds.len(), n);
                prop_assert!(preds.iter().all(|&p| p < classes));
            }
        }
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn wrong_input_dim_panics() {
        let m = Mlp::new(3, &[2], 2);
        let p = vec![0.0; m.num_params()];
        let _ = m.predict(&p, &Matrix::zeros(1, 4));
    }
}
