//! Fully-connected ReLU network — the paper's non-convex model (§6.2).
//!
//! The paper uses two hidden layers of 300 and 100 neurons with ReLU and a
//! softmax cross-entropy head (`W = R^266610` for 784-300-100-10). Widths
//! are configurable; experiments here default to scaled-down widths so runs
//! finish on CPU (DESIGN.md §2).
//!
//! Parameters are packed flat, layer by layer: `[W1 (h1×in), b1 (h1),
//! W2 (h2×h1), b2 (h2), ..., Wk (out×h_{k-1}), bk (out)]`.

use crate::losses::{cross_entropy_backward_into, cross_entropy_from_logits};
use crate::model::Model;
use crate::workspace::Workspace;
use hm_data::{Dataset, StreamRng};
use hm_tensor::{ops, Matrix, MatrixView};

/// Multi-layer perceptron with ReLU activations and a linear head.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Layer widths including input and output: `[in, h1, ..., out]`.
    widths: Vec<usize>,
    /// Per-layer `(w_offset, w_len, b_offset, b_len)` blocks in the flat
    /// parameter vector, precomputed so the hot path never allocates.
    layout: Vec<(usize, usize, usize, usize)>,
}

impl Mlp {
    /// Build an MLP with the given hidden widths.
    ///
    /// # Panics
    /// Panics if any width is zero.
    pub fn new(input_dim: usize, hidden: &[usize], classes: usize) -> Self {
        let mut widths = Vec::with_capacity(hidden.len() + 2);
        widths.push(input_dim);
        widths.extend_from_slice(hidden);
        widths.push(classes);
        assert!(widths.iter().all(|&w| w > 0), "zero layer width");
        let mut layout = Vec::with_capacity(widths.len() - 1);
        let mut off = 0;
        for l in 0..widths.len() - 1 {
            let (fan_in, fan_out) = (widths[l], widths[l + 1]);
            let w_len = fan_out * fan_in;
            layout.push((off, w_len, off + w_len, fan_out));
            off += w_len + fan_out;
        }
        Self { widths, layout }
    }

    /// The paper's architecture: hidden layers of 300 and 100 neurons.
    pub fn paper_arch(input_dim: usize, classes: usize) -> Self {
        Self::new(input_dim, &[300, 100], classes)
    }

    /// Layer widths including input and output.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Number of layers (linear transforms).
    pub fn num_layers(&self) -> usize {
        self.widths.len() - 1
    }

    /// Offsets of each layer's `(W, b)` blocks in the flat vector.
    fn layout(&self) -> &[(usize, usize, usize, usize)] {
        &self.layout
    }

    /// Forward pass into the workspace: hidden post-activations land in
    /// `ws.acts[0..L-1]` (layer `l`'s output at index `l`), logits in
    /// `ws.logits`. The input itself is **not** copied — backward reads it
    /// from the caller's batch. Weight matrices are viewed in place from the
    /// flat parameter slice.
    fn forward_ws(&self, params: &[f32], x: &Matrix, ws: &mut Workspace) {
        assert_eq!(params.len(), self.num_params(), "bad parameter length");
        assert_eq!(x.cols(), self.widths[0], "input dim mismatch");
        let layout = self.layout();
        let num_layers = self.num_layers();
        ws.ensure_acts(num_layers - 1);
        let Workspace {
            acts,
            logits,
            wt,
            lanes,
            ..
        } = ws;
        for (l, &(wo, wl, bo, bl)) in layout.iter().enumerate() {
            let (fan_in, fan_out) = (self.widths[l], self.widths[l + 1]);
            let w = MatrixView::new(fan_out, fan_in, &params[wo..wo + wl]);
            // Shape-dispatched forward (bit-identical to
            // `matmul_transb_into`): wide layers go through the
            // pre-transposed kernel, whose streaming inner loop skips
            // exactly-zero inputs (clamped pixels, ReLU'd hidden units) —
            // that dominates the step cost at training batch sizes.
            if l + 1 == num_layers {
                let input = if l == 0 { x.view() } else { acts[l - 1].view() };
                ops::matmul_transb_fwd_into(input, w, wt, lanes, logits);
                ops::add_row_inplace(logits, &params[bo..bo + bl]);
            } else {
                let (prev, rest) = acts.split_at_mut(l);
                let z = &mut rest[0];
                let input = if l == 0 { x.view() } else { prev[l - 1].view() };
                ops::matmul_transb_fwd_into(input, w, wt, lanes, z);
                ops::add_row_inplace(z, &params[bo..bo + bl]);
                ops::relu_inplace(z);
            }
        }
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.layout().last().map_or(0, |&(_, _, bo, bl)| bo + bl)
    }

    fn init_params(&self, rng: &mut StreamRng) -> Vec<f32> {
        // He (Kaiming) initialisation for ReLU layers; zero biases.
        let mut params = vec![0.0_f32; self.num_params()];
        for (l, &(wo, wl, _, _)) in self.layout().iter().enumerate() {
            let fan_in = self.widths[l] as f64;
            let std = (2.0 / fan_in).sqrt();
            for p in &mut params[wo..wo + wl] {
                *p = rng.normal_with(0.0, std) as f32;
            }
        }
        params
    }

    fn loss(&self, params: &[f32], batch: &Dataset) -> f64 {
        let mut ws = Workspace::new();
        self.forward_ws(params, &batch.x, &mut ws);
        cross_entropy_from_logits(&ws.logits, &batch.y)
    }

    fn loss_grad_ws(
        &self,
        params: &[f32],
        batch: &Dataset,
        grad: &mut [f32],
        ws: &mut Workspace,
    ) -> f64 {
        assert_eq!(grad.len(), self.num_params(), "bad gradient length");
        self.forward_ws(params, &batch.x, ws);
        let loss = cross_entropy_from_logits(&ws.logits, &batch.y);
        let layout = self.layout();
        // Backward through the linear head and the ReLU stack; `delta` and
        // `delta2` ping-pong so no layer allocates.
        cross_entropy_backward_into(&ws.logits, &batch.y, &mut ws.delta); // n × out
        let Workspace {
            acts,
            delta,
            delta2,
            ..
        } = ws;
        for l in (0..self.num_layers()).rev() {
            let (wo, wl, bo, bl) = layout[l];
            let (fan_in, fan_out) = (self.widths[l], self.widths[l + 1]);
            // n × fan_in input (post-activation of the previous layer).
            let input = if l == 0 {
                batch.x.view()
            } else {
                acts[l - 1].view()
            };
            // Parameter gradients, staged straight into the flat vector.
            ops::matmul_transa_slice(delta.view(), input, &mut grad[wo..wo + wl]); // Δᵀ·input
            ops::col_sums_into(delta.view(), &mut grad[bo..bo + bl]);
            // Propagate to the previous layer (skip for the input layer).
            if l > 0 {
                let w = MatrixView::new(fan_out, fan_in, &params[wo..wo + wl]);
                ops::matmul_into(delta.view(), w, delta2); // n × fan_in
                ops::relu_backward_inplace(delta2, &acts[l - 1]);
                std::mem::swap(delta, delta2);
            }
        }
        loss
    }

    fn predict(&self, params: &[f32], x: &Matrix) -> Vec<usize> {
        let mut ws = Workspace::new();
        self.forward_ws(params, x, &mut ws);
        ops::argmax_rows(&ws.logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradient;
    use hm_data::rng::Purpose;

    fn toy_batch(dim: usize, classes: usize, n: usize) -> Dataset {
        let x = Matrix::from_fn(n, dim, |r, c| ((r * 13 + c * 7) % 11) as f32 / 11.0 - 0.5);
        let y = (0..n).map(|i| i % classes).collect();
        Dataset::new(x, y, classes)
    }

    #[test]
    fn param_count_matches_paper_arch() {
        let m = Mlp::paper_arch(784, 10);
        // 784*300+300 + 300*100+100 + 100*10+10 = 266610 (the paper's d).
        assert_eq!(m.num_params(), 266_610);
    }

    #[test]
    fn init_is_deterministic_and_nonzero() {
        let m = Mlp::new(5, &[4], 3);
        let mut r1 = StreamRng::new(1, Purpose::Init, 0, 0);
        let mut r2 = StreamRng::new(1, Purpose::Init, 0, 0);
        let p1 = m.init_params(&mut r1);
        let p2 = m.init_params(&mut r2);
        assert_eq!(p1, p2);
        assert!(p1.iter().any(|&x| x != 0.0));
        // Biases are zero: last 3 entries.
        assert!(p1[p1.len() - 3..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = Mlp::new(4, &[6, 5], 3);
        let mut rng = StreamRng::new(2, Purpose::Init, 0, 0);
        let params = m.init_params(&mut rng);
        let batch = toy_batch(4, 3, 6);
        // Central differences step across ReLU kinks, so the tolerance is
        // looser than for smooth models (the analytic one-sided gradient is
        // still correct at the kink).
        let max_err = check_gradient(&m, &params, &batch, 40, 3);
        assert!(max_err < 2.5e-2, "gradcheck error {max_err}");
    }

    #[test]
    fn gradient_matches_fd_single_hidden() {
        let m = Mlp::new(3, &[4], 2);
        let mut rng = StreamRng::new(5, Purpose::Init, 0, 0);
        let params = m.init_params(&mut rng);
        let batch = toy_batch(3, 2, 5);
        let max_err = check_gradient(&m, &params, &batch, 30, 9);
        assert!(max_err < 1e-2, "gradcheck error {max_err}");
    }

    #[test]
    fn sgd_fits_toy_problem() {
        let m = Mlp::new(4, &[16], 3);
        let batch = toy_batch(4, 3, 9);
        let mut rng = StreamRng::new(3, Purpose::Init, 0, 0);
        let mut p = m.init_params(&mut rng);
        let mut g = vec![0.0_f32; m.num_params()];
        let l0 = m.loss(&p, &batch);
        for _ in 0..800 {
            m.loss_grad(&p, &batch, &mut g);
            hm_tensor::vecops::axpy(-0.3, &g, &mut p);
        }
        let l1 = m.loss(&p, &batch);
        assert!(l1 < l0 * 0.5, "loss {l0} -> {l1}");
        assert!(m.accuracy(&p, &batch) >= 0.8);
    }

    #[test]
    fn no_hidden_layer_equals_linear_model() {
        // An MLP with no hidden layers is exactly multinomial logistic
        // regression; its loss at zero params must be ln(classes).
        let m = Mlp::new(3, &[], 4);
        let p = vec![0.0; m.num_params()];
        let batch = toy_batch(3, 4, 8);
        assert!((m.loss(&p, &batch) - (4.0_f64).ln()).abs() < 1e-6);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            #[test]
            fn prop_loss_finite_nonnegative(
                dim in 1usize..5, h in 1usize..6, classes in 2usize..4,
                n in 1usize..5, seed in 0u64..200,
            ) {
                let m = Mlp::new(dim, &[h], classes);
                let mut rng = StreamRng::new(seed, Purpose::Init, 0, 0);
                let params = m.init_params(&mut rng);
                let batch = toy_batch(dim, classes, n);
                let loss = m.loss(&params, &batch);
                prop_assert!(loss.is_finite() && loss >= 0.0);
            }

            #[test]
            fn prop_gradient_is_a_descent_direction(
                dim in 1usize..4, h in 2usize..5, classes in 2usize..4, seed in 0u64..100,
            ) {
                // Finite differences are unreliable near ReLU kinks (the
                // fixed-shape tests above cover FD agreement away from
                // them); across random shapes we assert the necessary
                // property that is kink-robust: a small step against the
                // analytic gradient does not increase the loss.
                let m = Mlp::new(dim, &[h], classes);
                let mut rng = StreamRng::new(seed, Purpose::Init, 0, 0);
                let params = m.init_params(&mut rng);
                let batch = toy_batch(dim, classes, 4);
                let mut grad = vec![0.0_f32; m.num_params()];
                let before = m.loss_grad(&params, &batch, &mut grad);
                let gnorm = hm_tensor::vecops::norm2(&grad);
                prop_assume!(gnorm > 1e-6);
                let mut stepped = params.clone();
                hm_tensor::vecops::axpy(-1e-3, &grad, &mut stepped);
                let after = m.loss(&stepped, &batch);
                prop_assert!(
                    after <= before + 1e-9,
                    "gradient step increased loss: {} -> {}",
                    before,
                    after
                );
            }

            #[test]
            fn prop_param_count_matches_layout(
                dim in 1usize..6, h1 in 1usize..6, h2 in 1usize..6, classes in 1usize..5,
            ) {
                let m = Mlp::new(dim, &[h1, h2], classes);
                let expect = h1 * dim + h1 + h2 * h1 + h2 + classes * h2 + classes;
                prop_assert_eq!(m.num_params(), expect);
            }

            #[test]
            fn prop_predictions_in_range(
                dim in 1usize..5, classes in 2usize..5, n in 1usize..6, seed in 0u64..200,
            ) {
                let m = Mlp::new(dim, &[4], classes);
                let mut rng = StreamRng::new(seed, Purpose::Init, 0, 0);
                let params = m.init_params(&mut rng);
                let batch = toy_batch(dim, classes, n);
                let preds = m.predict(&params, &batch.x);
                prop_assert_eq!(preds.len(), n);
                prop_assert!(preds.iter().all(|&p| p < classes));
            }
        }
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn wrong_input_dim_panics() {
        let m = Mlp::new(3, &[2], 2);
        let p = vec![0.0; m.num_params()];
        let _ = m.predict(&p, &Matrix::zeros(1, 4));
    }
}
