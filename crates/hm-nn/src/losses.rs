//! Shared loss kernels: softmax cross-entropy from logits, forward and
//! backward.

use hm_tensor::{ops, Matrix};

/// Mean cross-entropy of `logits` (`n × c`) against integer labels,
/// computed via log-sum-exp for numerical stability.
///
/// # Panics
/// Panics if row/label counts differ or a label is out of range.
pub fn cross_entropy_from_logits(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "logits/label count mismatch");
    let mut total = 0.0_f64;
    for (row, &y) in logits.rows_iter().zip(labels) {
        assert!(y < row.len(), "label {} out of range ({})", y, row.len());
        let lse = ops::log_sum_exp(row);
        total += f64::from(lse - row[y]);
    }
    total / labels.len().max(1) as f64
}

/// Gradient of the mean cross-entropy with respect to the logits:
/// `(softmax(logits) − onehot(labels)) / n`, returned as a new matrix.
pub fn cross_entropy_backward(logits: &Matrix, labels: &[usize]) -> Matrix {
    let mut delta = Matrix::zeros(0, 0);
    cross_entropy_backward_into(logits, labels, &mut delta);
    delta
}

/// [`cross_entropy_backward`] written into `delta` (resized, capacity
/// reused): copy the logits, softmax in place, subtract the one-hot labels,
/// scale by `1/n` — the exact operation sequence of the allocating version,
/// so results are bit-identical.
pub fn cross_entropy_backward_into(logits: &Matrix, labels: &[usize], delta: &mut Matrix) {
    assert_eq!(logits.rows(), labels.len(), "logits/label count mismatch");
    let n = labels.len().max(1) as f32;
    delta.resize(logits.rows(), logits.cols());
    delta.as_mut_slice().copy_from_slice(logits.as_slice());
    ops::softmax_rows_inplace(delta);
    for (i, &y) in labels.iter().enumerate() {
        delta[(i, y)] -= 1.0;
    }
    let inv = 1.0 / n;
    delta.map_inplace(|x| x * inv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Matrix::zeros(3, 4);
        let ce = cross_entropy_from_logits(&logits, &[0, 1, 2]);
        assert!((ce - (4.0_f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_gives_near_zero_loss() {
        let mut logits = Matrix::zeros(1, 3);
        logits[(0, 2)] = 50.0;
        let ce = cross_entropy_from_logits(&logits, &[2]);
        assert!(ce < 1e-6, "loss {ce}");
    }

    #[test]
    fn confident_wrong_gives_large_loss() {
        let mut logits = Matrix::zeros(1, 3);
        logits[(0, 2)] = 50.0;
        let ce = cross_entropy_from_logits(&logits, &[0]);
        assert!(ce > 40.0, "loss {ce}");
    }

    #[test]
    fn backward_rows_sum_to_zero() {
        let logits = Matrix::from_vec(2, 3, vec![0.3, -0.2, 1.0, 2.0, 0.0, -1.0]);
        let delta = cross_entropy_backward(&logits, &[1, 0]);
        for row in delta.rows_iter() {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6, "row sum {s}");
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let logits = Matrix::from_vec(2, 3, vec![0.5, -0.1, 0.2, -0.4, 0.9, 0.0]);
        let labels = [2usize, 1];
        let delta = cross_entropy_backward(&logits, &labels);
        let eps = 1e-3_f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                let mut lm = logits.clone();
                lp[(r, c)] += eps;
                lm[(r, c)] -= eps;
                let num = (cross_entropy_from_logits(&lp, &labels)
                    - cross_entropy_from_logits(&lm, &labels))
                    / (2.0 * f64::from(eps));
                assert!(
                    (num - f64::from(delta[(r, c)])).abs() < 1e-3,
                    "grad mismatch at ({r},{c}): fd {num} analytic {}",
                    delta[(r, c)]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_labels_panic() {
        let _ = cross_entropy_from_logits(&Matrix::zeros(2, 2), &[0]);
    }
}
