//! Finite-difference gradient verification.
//!
//! Replaces the trust one would otherwise place in an autograd engine: every
//! model's hand-derived backward pass is checked against central differences
//! on a deterministic subset of coordinates.

use crate::model::Model;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_data::Dataset;

/// Maximum absolute error between the analytic gradient and central finite
/// differences on `num_coords` pseudo-randomly chosen coordinates (keyed by
/// `seed` so failures are reproducible).
///
/// Uses `eps = 1e-2` with f64 loss evaluation: the loss is computed in f64
/// from f32 parameters, so smaller eps drowns in f32 rounding.
pub fn check_gradient<M: Model>(
    model: &M,
    params: &[f32],
    batch: &Dataset,
    num_coords: usize,
    seed: u64,
) -> f64 {
    let n = model.num_params();
    assert_eq!(params.len(), n, "bad parameter length");
    let mut analytic = vec![0.0_f32; n];
    model.loss_grad(params, batch, &mut analytic);

    let mut rng = StreamRng::for_key(StreamKey::new(seed, Purpose::Misc, 0, 0));
    let eps = 1e-2_f32;
    let mut worst = 0.0_f64;
    let mut perturbed = params.to_vec();
    for _ in 0..num_coords.min(n) {
        let i = rng.below(n);
        let orig = perturbed[i];
        perturbed[i] = orig + eps;
        let lp = model.loss(&perturbed, batch);
        perturbed[i] = orig - eps;
        let lm = model.loss(&perturbed, batch);
        perturbed[i] = orig;
        let fd = (lp - lm) / (2.0 * f64::from(eps));
        let err = (fd - f64::from(analytic[i])).abs();
        worst = worst.max(err);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MulticlassLogistic;
    use hm_tensor::Matrix;

    struct BrokenModel(MulticlassLogistic);

    impl Model for BrokenModel {
        fn num_params(&self) -> usize {
            self.0.num_params()
        }
        fn init_params(&self, rng: &mut StreamRng) -> Vec<f32> {
            self.0.init_params(rng)
        }
        fn loss(&self, params: &[f32], batch: &Dataset) -> f64 {
            self.0.loss(params, batch)
        }
        fn loss_grad(&self, params: &[f32], batch: &Dataset, grad: &mut [f32]) -> f64 {
            let l = self.0.loss_grad(params, batch, grad);
            grad[0] += 1.0; // deliberate bug
            l
        }
        fn predict(&self, params: &[f32], x: &Matrix) -> Vec<usize> {
            self.0.predict(params, x)
        }
    }

    fn batch() -> Dataset {
        let x = Matrix::from_vec(3, 2, vec![0.5, -1.0, 1.0, 0.3, -0.2, 0.8]);
        Dataset::new(x, vec![0, 1, 0], 2)
    }

    #[test]
    fn correct_gradient_passes() {
        let m = MulticlassLogistic::new(2, 2);
        let params = vec![0.3, -0.2, 0.5, 0.1, 0.0, -0.4];
        let err = check_gradient(&m, &params, &batch(), 6, 1);
        assert!(err < 5e-3, "err {err}");
    }

    #[test]
    fn broken_gradient_is_detected() {
        let m = BrokenModel(MulticlassLogistic::new(2, 2));
        let params = vec![0.3, -0.2, 0.5, 0.1, 0.0, -0.4];
        // Check every coordinate so the corrupted one is sampled.
        let err = check_gradient(&m, &params, &batch(), 200, 1);
        assert!(err > 0.5, "deliberate bug not detected: err {err}");
    }
}
