//! Thread-local pooling of per-client training scratch.
//!
//! Every client-block needs the same bundle of scratch memory: a model
//! [`Workspace`], a gradient buffer, and a [`BatchScratch`] for mini-batch
//! gathers. Allocating these per call is the residual cost the hotpath
//! bench attributes to logistic/CNN (small models amortise nothing), and
//! under the chained round engine a worker thread runs thousands of
//! client-blocks back to back — so scratch is pooled per *thread* and
//! reused across blocks, rounds, and even algorithm runs.
//!
//! Pooling is safe for determinism because every buffer in the bundle is
//! overwrite-on-use: `Workspace` stages intermediates that are fully
//! written before being read (asserted bit-for-bit by
//! `workspace_grad_is_bit_identical_to_legacy_path`), the gradient buffer
//! is overwritten by `loss_grad_ws`'s contract, and `BatchScratch` clears
//! its index buffer on every draw. A dirty pooled bundle therefore yields
//! bit-identical results to a fresh one — proven by the tests below and by
//! the engine-equivalence matrix in `tests/determinism.rs`.

use crate::workspace::Workspace;
use hm_data::batch::BatchScratch;
use std::cell::RefCell;

/// The scratch bundle one client-block's training loop needs.
///
/// Obtain one via [`with_scratch`] (pooled) or `TrainScratch::default()`
/// (fresh, for code that manages its own reuse).
#[derive(Default)]
pub struct TrainScratch {
    /// Model forward/backward intermediates.
    pub ws: Workspace,
    /// Gradient accumulator, resized to `num_params` by the caller.
    pub grad: Vec<f32>,
    /// Mini-batch index + gather buffers.
    pub batch: BatchScratch,
}

thread_local! {
    static POOL: RefCell<Vec<TrainScratch>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a pooled [`TrainScratch`], returning the bundle to this
/// thread's pool afterwards.
///
/// Pop-then-push (rather than borrowing the pool across `f`) keeps the
/// call reentrant: if `f` itself reaches [`with_scratch`] — nested rayon
/// jobs on the same worker do — the inner call simply takes another bundle.
/// Buffer contents are *not* cleared between uses; see the module docs for
/// why that cannot affect results.
pub fn with_scratch<R>(f: impl FnOnce(&mut TrainScratch) -> R) -> R {
    let mut scratch = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    let out = f(&mut scratch);
    POOL.with(|p| p.borrow_mut().push(scratch));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_scratch_is_reused_on_same_thread() {
        // Mark the bundle on first use; the second use on the same thread
        // must observe the mark (same bundle back from the pool).
        let marked = with_scratch(|s| {
            if s.grad.is_empty() {
                s.grad.push(42.0);
            }
            s.grad[0]
        });
        let again = with_scratch(|s| s.grad[0]);
        assert_eq!(marked, again);
    }

    #[test]
    fn with_scratch_is_reentrant() {
        // The inner call must get a DIFFERENT bundle, not deadlock or alias
        // the outer one.
        with_scratch(|outer| {
            outer.grad.clear();
            outer.grad.push(1.0);
            with_scratch(|inner| {
                assert_ne!(
                    inner as *mut TrainScratch, outer as *mut TrainScratch,
                    "nested with_scratch aliased the outer bundle"
                );
                inner.grad.clear();
                inner.grad.push(2.0);
            });
            assert_eq!(outer.grad, [1.0], "inner call clobbered outer scratch");
        });
    }

    #[test]
    fn dirty_scratch_does_not_leak_into_results() {
        // A pooled (dirty) bundle must produce bit-identical gradients to a
        // fresh one — the property that makes cross-block reuse safe.
        use crate::{Mlp, Model};
        use hm_data::rng::{Purpose, StreamKey};
        use hm_data::{Dataset, StreamRng};
        use hm_tensor::Matrix;

        let model = Mlp::new(6, &[5], 3);
        let mut rng = StreamRng::for_key(StreamKey::new(3, Purpose::Misc, 0, 0));
        let x = Matrix::from_fn(7, 6, |_, _| rng.normal() as f32 * 0.5);
        let y = (0..7).map(|_| rng.below(3)).collect();
        let data = Dataset::new(x, y, 3);
        let params: Vec<f32> = (0..model.num_params())
            .map(|_| rng.normal() as f32 * 0.3)
            .collect();

        let mut fresh = TrainScratch::default();
        fresh.grad.resize(model.num_params(), 0.0);
        let l_fresh = model.loss_grad_ws(&params, &data, &mut fresh.grad, &mut fresh.ws);

        // Pollute the pooled bundle with unrelated work first (different
        // sizes, garbage values), then compute the same gradient.
        let (l_pool, g_pool) = with_scratch(|s| {
            s.grad.clear();
            s.grad.resize(2 * model.num_params(), f32::NAN);
            let big = Mlp::new(9, &[8, 4], 2);
            let bx = Matrix::from_fn(3, 9, |_, _| 0.7);
            let bdata = Dataset::new(bx, vec![0, 1, 0], 2);
            let bparams = vec![0.1; big.num_params()];
            s.grad.resize(big.num_params(), 0.0);
            big.loss_grad_ws(&bparams, &bdata, &mut s.grad, &mut s.ws);

            s.grad.resize(model.num_params(), 0.0);
            let l = model.loss_grad_ws(&params, &data, &mut s.grad, &mut s.ws);
            (l, s.grad.clone())
        });

        assert_eq!(l_fresh.to_bits(), l_pool.to_bits());
        assert_eq!(fresh.grad, g_pool);
    }
}
