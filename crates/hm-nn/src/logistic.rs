//! Multinomial logistic regression — the paper's convex model (§6.1).
//!
//! Parameters are packed flat as `[W row-major (classes × dim), b
//! (classes)]`, so the EMNIST setting of the paper (`d = 785 × 10 = 7850`)
//! corresponds to `dim = 784, classes = 10` plus the bias row.
//!
//! The loss `CE(softmax(Wx + b), y)` is convex in `(W, b)`, which is what
//! Theorem 1's duality-gap analysis requires.

use crate::losses::{cross_entropy_backward_into, cross_entropy_from_logits};
use crate::model::Model;
use crate::workspace::Workspace;
use hm_data::{Dataset, StreamRng};
use hm_tensor::{ops, Matrix, MatrixView};

/// Multinomial (softmax) logistic regression.
#[derive(Debug, Clone)]
pub struct MulticlassLogistic {
    dim: usize,
    classes: usize,
}

impl MulticlassLogistic {
    /// Create a model for `dim`-dimensional inputs and `classes` classes.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(dim: usize, classes: usize) -> Self {
        assert!(dim > 0 && classes > 0, "degenerate logistic model");
        Self { dim, classes }
    }

    /// Input feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Split a flat parameter slice into `(W, b)` views.
    fn unpack<'a>(&self, params: &'a [f32]) -> (&'a [f32], &'a [f32]) {
        assert_eq!(params.len(), self.num_params(), "bad parameter length");
        params.split_at(self.classes * self.dim)
    }

    /// Logits `X·Wᵀ + b` for a batch, written into `out`. The weight matrix
    /// is viewed in place from the flat parameter slice — no copy.
    fn logits_into(&self, params: &[f32], x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.cols(), self.dim, "input dim mismatch");
        let (w_flat, b) = self.unpack(params);
        let w = MatrixView::new(self.classes, self.dim, w_flat);
        ops::matmul_transb_into(x.view(), w, out);
        ops::add_row_inplace(out, b);
    }

    /// Logits `X·Wᵀ + b` for a batch.
    fn logits(&self, params: &[f32], x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.logits_into(params, x, &mut out);
        out
    }
}

impl Model for MulticlassLogistic {
    fn num_params(&self) -> usize {
        self.classes * (self.dim + 1)
    }

    fn init_params(&self, _rng: &mut StreamRng) -> Vec<f32> {
        // Zero init: the cross-entropy is convex, and zero is the symmetric
        // starting point (uniform predicted distribution).
        vec![0.0; self.num_params()]
    }

    fn loss(&self, params: &[f32], batch: &Dataset) -> f64 {
        let logits = self.logits(params, &batch.x);
        cross_entropy_from_logits(&logits, &batch.y)
    }

    fn loss_grad_ws(
        &self,
        params: &[f32],
        batch: &Dataset,
        grad: &mut [f32],
        ws: &mut Workspace,
    ) -> f64 {
        assert_eq!(grad.len(), self.num_params(), "bad gradient length");
        assert_eq!(batch.x.cols(), self.dim, "input dim mismatch");
        // Same logits as `logits_into`, but through the shape-dispatched
        // forward kernel (bit-identical, see `ops::matmul_transb_fwd_into`).
        let (w_flat, b) = self.unpack(params);
        let w = MatrixView::new(self.classes, self.dim, w_flat);
        ops::matmul_transb_fwd_into(batch.x.view(), w, &mut ws.wt, &mut ws.lanes, &mut ws.logits);
        ops::add_row_inplace(&mut ws.logits, b);
        let loss = cross_entropy_from_logits(&ws.logits, &batch.y);
        // Δ = (softmax − onehot)/n;  gW = Δᵀ X;  gb = column sums of Δ.
        cross_entropy_backward_into(&ws.logits, &batch.y, &mut ws.delta);
        let (gw_dst, gb_dst) = grad.split_at_mut(self.classes * self.dim);
        ops::matmul_transa_slice(ws.delta.view(), batch.x.view(), gw_dst); // classes × dim
        ops::col_sums_into(ws.delta.view(), gb_dst); // classes
        loss
    }

    fn predict(&self, params: &[f32], x: &Matrix) -> Vec<usize> {
        ops::argmax_rows(&self.logits(params, x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradient;
    use hm_data::rng::{Purpose, StreamKey};

    fn toy_batch() -> Dataset {
        let x = Matrix::from_vec(
            4,
            3,
            vec![
                1.0, 0.0, 0.5, //
                0.0, 1.0, -0.5, //
                -1.0, 0.3, 0.2, //
                0.4, -0.9, 1.0,
            ],
        );
        Dataset::new(x, vec![0, 1, 2, 0], 3)
    }

    #[test]
    fn param_count() {
        let m = MulticlassLogistic::new(784, 10);
        assert_eq!(m.num_params(), 7850); // the paper's W = R^7850
    }

    #[test]
    fn zero_params_give_uniform_loss() {
        let m = MulticlassLogistic::new(3, 3);
        let p = vec![0.0; m.num_params()];
        let loss = m.loss(&p, &toy_batch());
        assert!((loss - (3.0_f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = MulticlassLogistic::new(3, 3);
        let mut rng = StreamRng::for_key(StreamKey::new(1, Purpose::Init, 0, 0));
        let params: Vec<f32> = (0..m.num_params())
            .map(|_| rng.normal() as f32 * 0.5)
            .collect();
        let max_err = check_gradient(&m, &params, &toy_batch(), 24, 7);
        assert!(max_err < 5e-3, "gradcheck error {max_err}");
    }

    #[test]
    fn sgd_reduces_loss_and_fits_toy_problem() {
        let m = MulticlassLogistic::new(3, 3);
        let batch = toy_batch();
        let mut p = vec![0.0_f32; m.num_params()];
        let mut g = vec![0.0_f32; m.num_params()];
        let l0 = m.loss(&p, &batch);
        for _ in 0..500 {
            m.loss_grad(&p, &batch, &mut g);
            hm_tensor::vecops::axpy(-0.5, &g, &mut p);
        }
        let l1 = m.loss(&p, &batch);
        assert!(l1 < l0 * 0.2, "loss {l0} -> {l1}");
        assert_eq!(m.accuracy(&p, &batch), 1.0);
    }

    #[test]
    #[should_panic(expected = "bad parameter length")]
    fn wrong_param_len_panics() {
        let m = MulticlassLogistic::new(3, 3);
        let _ = m.loss(&[0.0; 5], &toy_batch());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_batch(dim: usize, classes: usize, n: usize, seed: u64) -> Dataset {
            let mut rng = StreamRng::for_key(StreamKey::new(seed, Purpose::Misc, 0, 0));
            let x = Matrix::from_fn(n, dim, |_, _| rng.normal() as f32 * 0.7);
            let y = (0..n).map(|_| rng.below(classes)).collect();
            Dataset::new(x, y, classes)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn prop_loss_nonnegative_and_finite(
                dim in 1usize..6, classes in 2usize..5, n in 1usize..6, seed in 0u64..300,
            ) {
                let m = MulticlassLogistic::new(dim, classes);
                let batch = arb_batch(dim, classes, n, seed);
                let mut rng = StreamRng::for_key(StreamKey::new(seed, Purpose::Init, 0, 1));
                let params: Vec<f32> = (0..m.num_params()).map(|_| rng.normal() as f32).collect();
                let loss = m.loss(&params, &batch);
                prop_assert!(loss.is_finite() && loss >= 0.0, "loss {}", loss);
            }

            #[test]
            fn prop_gradient_matches_fd(
                dim in 1usize..5, classes in 2usize..4, n in 1usize..5, seed in 0u64..200,
            ) {
                let m = MulticlassLogistic::new(dim, classes);
                let batch = arb_batch(dim, classes, n, seed);
                let mut rng = StreamRng::for_key(StreamKey::new(seed, Purpose::Init, 0, 2));
                let params: Vec<f32> =
                    (0..m.num_params()).map(|_| rng.normal() as f32 * 0.3).collect();
                let err = check_gradient(&m, &params, &batch, 12, seed);
                prop_assert!(err < 1e-2, "gradcheck err {}", err);
            }

            #[test]
            fn prop_accuracy_in_unit_interval(
                dim in 1usize..6, classes in 2usize..5, n in 1usize..8, seed in 0u64..300,
            ) {
                let m = MulticlassLogistic::new(dim, classes);
                let batch = arb_batch(dim, classes, n, seed);
                let params = vec![0.1_f32; m.num_params()];
                let acc = m.accuracy(&params, &batch);
                prop_assert!((0.0..=1.0).contains(&acc));
            }

            #[test]
            fn prop_duplicated_batch_has_same_loss(
                dim in 1usize..5, classes in 2usize..4, seed in 0u64..200,
            ) {
                // Mean loss is invariant to duplicating every sample.
                let m = MulticlassLogistic::new(dim, classes);
                let batch = arb_batch(dim, classes, 3, seed);
                let doubled = {
                    let idx: Vec<usize> = (0..3).chain(0..3).collect();
                    batch.subset(&idx)
                };
                let mut rng = StreamRng::for_key(StreamKey::new(seed, Purpose::Init, 0, 3));
                let params: Vec<f32> = (0..m.num_params()).map(|_| rng.normal() as f32).collect();
                let a = m.loss(&params, &batch);
                let b = m.loss(&params, &doubled);
                prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn grad_is_overwritten_not_accumulated() {
        let m = MulticlassLogistic::new(3, 3);
        let p = vec![0.1; m.num_params()];
        let mut g1 = vec![999.0; m.num_params()];
        let mut g2 = vec![0.0; m.num_params()];
        m.loss_grad(&p, &toy_batch(), &mut g1);
        m.loss_grad(&p, &toy_batch(), &mut g2);
        assert_eq!(g1, g2);
    }
}
