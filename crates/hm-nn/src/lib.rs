//! Model families for the HierMinimax reproduction.
//!
//! The paper trains two model families:
//! - multinomial logistic regression (§6.1, convex loss), and
//! - a two-hidden-layer fully-connected ReLU network (§6.2, non-convex),
//!
//! plus, as an extension, a small convolutional network ([`SimpleCnn`]).
//!
//! Both are exposed through the [`Model`] trait: a loss/gradient oracle over
//! *flat* `f32` parameter vectors. The flat representation is what the
//! distributed algorithms manipulate — they average, difference, checkpoint,
//! and project parameter vectors without knowing the architecture, exactly
//! as the paper treats `w ∈ W ⊆ R^d`.
//!
//! Gradients are hand-derived (softmax cross-entropy and dense ReLU
//! backprop) and verified against central finite differences in
//! [`gradcheck`]'s tests, replacing the autograd engine the paper gets from
//! PyTorch (DESIGN.md §2).

pub mod cnn;
pub mod gradcheck;
pub mod logistic;
pub mod losses;
pub mod mlp;
pub mod model;
pub mod pool;
pub mod workspace;

pub use cnn::SimpleCnn;
pub use logistic::MulticlassLogistic;
pub use mlp::Mlp;
pub use model::Model;
pub use pool::{with_scratch, TrainScratch};
pub use workspace::Workspace;
