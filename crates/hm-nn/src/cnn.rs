//! A small convolutional network — an extension model family beyond the
//! paper's two (the paper trains logistic regression and an MLP; image FL
//! users typically reach for a CNN next, and the [`Model`] abstraction
//! should demonstrably support one).
//!
//! Architecture (all valid-padding, stride 1):
//! `conv k×k (c1) → ReLU → maxpool 2×2 → conv k×k (c2) → ReLU →
//! maxpool 2×2 → flatten → linear(h) → ReLU → linear(classes)`.
//!
//! Implementation favours verifiability over speed: direct convolution
//! loops (no im2col) with a finite-difference gradcheck in the tests. For
//! the 16×16 inputs of this repository's experiments the cost is fine.

use crate::losses::{cross_entropy_backward_into, cross_entropy_from_logits};
use crate::model::Model;
use crate::workspace::Workspace;
use hm_data::{Dataset, StreamRng};
use hm_tensor::{ops, Matrix, MatrixView};

/// Small two-conv-block CNN with a one-hidden-layer MLP head.
#[derive(Debug, Clone)]
pub struct SimpleCnn {
    side: usize,
    k: usize,
    c1: usize,
    c2: usize,
    hidden: usize,
    classes: usize,
}

/// Spatial sizes at each stage.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Dims {
    conv1: usize,
    pool1: usize,
    conv2: usize,
    pool2: usize,
    flat: usize,
}

impl SimpleCnn {
    /// Build a CNN for single-channel `side × side` inputs.
    ///
    /// # Panics
    /// Panics when the spatial pipeline collapses to zero (input too small
    /// for the kernel/pooling) or any width is zero.
    pub fn new(side: usize, k: usize, c1: usize, c2: usize, hidden: usize, classes: usize) -> Self {
        assert!(k >= 1 && c1 >= 1 && c2 >= 1 && hidden >= 1 && classes >= 1);
        let me = Self {
            side,
            k,
            c1,
            c2,
            hidden,
            classes,
        };
        let d = me.dims();
        assert!(
            d.conv1 >= 1 && d.pool1 >= 1 && d.conv2 >= 1 && d.pool2 >= 1,
            "input {side}x{side} too small for kernel {k} with two pooled blocks"
        );
        me
    }

    fn dims(&self) -> Dims {
        let conv1 = self.side.saturating_sub(self.k - 1);
        let pool1 = conv1 / 2;
        let conv2 = pool1.saturating_sub(self.k - 1);
        let pool2 = conv2 / 2;
        Dims {
            conv1,
            pool1,
            conv2,
            pool2,
            flat: self.c2 * pool2 * pool2,
        }
    }

    /// Parameter block offsets:
    /// `[w1 (c1·k²), b1 (c1), w2 (c2·c1·k²), b2 (c2), fcw (h·flat),
    /// fcb (h), hw (classes·h), hb (classes)]`.
    fn layout(&self) -> [usize; 8] {
        let d = self.dims();
        let w1 = self.c1 * self.k * self.k;
        let w2 = self.c2 * self.c1 * self.k * self.k;
        let fcw = self.hidden * d.flat;
        let hw = self.classes * self.hidden;
        [w1, self.c1, w2, self.c2, fcw, self.hidden, hw, self.classes]
    }

    fn offsets(&self) -> [usize; 9] {
        let lens = self.layout();
        let mut off = [0usize; 9];
        for i in 0..8 {
            off[i + 1] = off[i] + lens[i];
        }
        off
    }

    /// Valid-padding correlation of a `ch_in`-channel square image stack
    /// with one output channel's kernels, plus bias.
    #[allow(clippy::too_many_arguments)]
    fn conv_forward(
        input: &[f32],
        side_in: usize,
        ch_in: usize,
        weights: &[f32],
        bias: f32,
        k: usize,
        side_out: usize,
        out: &mut [f32],
    ) {
        for oy in 0..side_out {
            for ox in 0..side_out {
                let mut acc = bias;
                for c in 0..ch_in {
                    let img = &input[c * side_in * side_in..];
                    let ker = &weights[c * k * k..];
                    for ky in 0..k {
                        let row = &img[(oy + ky) * side_in + ox..];
                        let krow = &ker[ky * k..];
                        for kx in 0..k {
                            acc += row[kx] * krow[kx];
                        }
                    }
                }
                out[oy * side_out + ox] = acc;
            }
        }
    }

    /// 2×2 max-pool of each channel, recording the argmax index per cell
    /// for the backward pass.
    fn pool_forward(
        input: &[f32],
        side_in: usize,
        channels: usize,
        side_out: usize,
        out: &mut [f32],
        argmax: &mut [usize],
    ) {
        for c in 0..channels {
            let img = &input[c * side_in * side_in..(c + 1) * side_in * side_in];
            for oy in 0..side_out {
                for ox in 0..side_out {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let i = (oy * 2 + dy) * side_in + ox * 2 + dx;
                            if img[i] > best {
                                best = img[i];
                                best_i = i;
                            }
                        }
                    }
                    let o = c * side_out * side_out + oy * side_out + ox;
                    out[o] = best;
                    argmax[o] = c * side_in * side_in + best_i;
                }
            }
        }
    }

    /// Size `cache`'s buffers for this model, reusing existing capacity.
    /// The forward pass overwrites every element, so stale contents from a
    /// previous batch (or model) cannot leak through.
    fn ensure_cache(&self, cache: &mut ConvCache) {
        let d = self.dims();
        cache.a1.resize(self.c1 * d.conv1 * d.conv1, 0.0);
        cache.p1.resize(self.c1 * d.pool1 * d.pool1, 0.0);
        cache.m1.resize(self.c1 * d.pool1 * d.pool1, 0);
        cache.a2.resize(self.c2 * d.conv2 * d.conv2, 0.0);
        cache.p2.resize(self.c2 * d.pool2 * d.pool2, 0.0);
        cache.m2.resize(self.c2 * d.pool2 * d.pool2, 0);
        cache.off = self.offsets();
        cache.d = d;
        cache.k = self.k;
    }

    /// Forward through the two conv blocks. `input` is one sample's
    /// `side × side` image, borrowed from the batch — the cache does not
    /// keep a copy; backward reads the same batch row again.
    fn run_conv_stack(&self, params: &[f32], input: &[f32], cache: &mut ConvCache) {
        let d = cache.d;
        let off = cache.off;
        // Block 1.
        for c in 0..self.c1 {
            let wslice = &params[off[0] + c * self.k * self.k..];
            let bias = params[off[1] + c];
            let out = &mut cache.a1[c * d.conv1 * d.conv1..(c + 1) * d.conv1 * d.conv1];
            Self::conv_forward(input, self.side, 1, wslice, bias, self.k, d.conv1, out);
        }
        for v in cache.a1.iter_mut() {
            *v = v.max(0.0);
        }
        {
            let (a1, p1, m1) = (&cache.a1, &mut cache.p1, &mut cache.m1);
            Self::pool_forward(a1, d.conv1, self.c1, d.pool1, p1, m1);
        }
        // Block 2.
        for c in 0..self.c2 {
            let wslice = &params[off[2] + c * self.c1 * self.k * self.k..];
            let bias = params[off[3] + c];
            let out = &mut cache.a2[c * d.conv2 * d.conv2..(c + 1) * d.conv2 * d.conv2];
            Self::conv_forward(
                &cache.p1, d.pool1, self.c1, wslice, bias, self.k, d.conv2, out,
            );
        }
        for v in cache.a2.iter_mut() {
            *v = v.max(0.0);
        }
        {
            let (a2, p2, m2) = (&cache.a2, &mut cache.p2, &mut cache.m2);
            Self::pool_forward(a2, d.conv2, self.c2, d.pool2, p2, m2);
        }
    }
}

/// Per-sample intermediates of the conv stack. Lives in the
/// [`Workspace`] so buffers survive across gradient calls; the input image
/// itself is not cached — it stays borrowed from the batch.
#[derive(Default)]
pub(crate) struct ConvCache {
    pub(crate) a1: Vec<f32>, // post-ReLU conv1 activations
    pub(crate) p1: Vec<f32>, // pooled block-1 output
    pub(crate) m1: Vec<usize>,
    pub(crate) a2: Vec<f32>,
    pub(crate) p2: Vec<f32>, // flat features
    pub(crate) m2: Vec<usize>,
    pub(crate) off: [usize; 9],
    pub(crate) d: Dims,
    pub(crate) k: usize,
}

impl Model for SimpleCnn {
    fn num_params(&self) -> usize {
        self.layout().iter().sum()
    }

    fn init_params(&self, rng: &mut StreamRng) -> Vec<f32> {
        let off = self.offsets();
        let d = self.dims();
        let mut p = vec![0.0_f32; self.num_params()];
        let mut he = |range: std::ops::Range<usize>, fan_in: usize| {
            let std = (2.0 / fan_in as f64).sqrt();
            for v in &mut p[range] {
                *v = rng.normal_with(0.0, std) as f32;
            }
        };
        he(off[0]..off[1], self.k * self.k);
        he(off[2]..off[3], self.c1 * self.k * self.k);
        he(off[4]..off[5], d.flat);
        he(off[6]..off[7], self.hidden);
        p
    }

    fn loss(&self, params: &[f32], batch: &Dataset) -> f64 {
        let logits = self.forward_batch(params, &batch.x);
        cross_entropy_from_logits(&logits, &batch.y)
    }

    fn loss_grad_ws(
        &self,
        params: &[f32],
        batch: &Dataset,
        grad: &mut [f32],
        ws: &mut Workspace,
    ) -> f64 {
        assert_eq!(grad.len(), self.num_params(), "bad gradient length");
        grad.iter_mut().for_each(|g| *g = 0.0);
        let n = batch.len();
        let d = self.dims();
        let off = self.offsets();
        let Workspace {
            logits,
            delta,
            delta2,
            feats,
            hid,
            delta_feat,
            conv,
            da2,
            dp1,
            da1,
            wt,
            lanes,
            ..
        } = ws;
        // Forward (keeping per-sample caches) then manual backward; batch
        // loops are plain — clarity over speed for this extension model.
        while conv.len() < n {
            conv.push(ConvCache::default());
        }
        feats.resize(n, d.flat);
        for (i, cache) in conv.iter_mut().enumerate().take(n) {
            self.ensure_cache(cache);
            self.run_conv_stack(params, batch.x.row(i), cache);
            feats.row_mut(i).copy_from_slice(&cache.p2);
        }
        // Head: feats → fc(ReLU) → logits. Weights are viewed in place from
        // the flat parameter slice.
        let fcw = MatrixView::new(self.hidden, d.flat, &params[off[4]..off[5]]);
        // Shape-dispatched forward (bit-identical to `matmul_transb_into`):
        // post-pooling features are sparse, and the wide fc layer goes
        // through the pre-transposed kernel whose streaming loop skips the
        // zeros.
        ops::matmul_transb_fwd_into(feats.view(), fcw, wt, lanes, hid);
        ops::add_row_inplace(hid, &params[off[5]..off[6]]);
        ops::relu_inplace(hid);
        let hw = MatrixView::new(self.classes, self.hidden, &params[off[6]..off[7]]);
        ops::matmul_transb_fwd_into(hid.view(), hw, wt, lanes, logits);
        ops::add_row_inplace(logits, &params[off[7]..off[8]]);
        let loss = cross_entropy_from_logits(logits, &batch.y);

        // Backward through the head (`delta` = ∂L/∂logits, `delta2` =
        // ∂L/∂hidden), staging parameter gradients straight into `grad`.
        cross_entropy_backward_into(logits, &batch.y, delta); // n × classes
        ops::matmul_transa_slice(delta.view(), hid.view(), &mut grad[off[6]..off[7]]);
        ops::col_sums_into(delta.view(), &mut grad[off[7]..off[8]]);
        ops::matmul_into(delta.view(), hw, delta2); // n × hidden
        ops::relu_backward_inplace(delta2, hid);
        ops::matmul_transa_slice(delta2.view(), feats.view(), &mut grad[off[4]..off[5]]);
        ops::col_sums_into(delta2.view(), &mut grad[off[5]..off[6]]);
        ops::matmul_into(delta2.view(), fcw, delta_feat); // n × flat

        // Backward through the conv stack, per sample.
        for (i, cache) in conv[..n].iter().enumerate() {
            let input = batch.x.row(i);
            let dfeat = delta_feat.row(i);
            // Unpool 2 (route gradient to argmax positions of conv2 act).
            da2.resize(self.c2 * d.conv2 * d.conv2, 0.0);
            da2.iter_mut().for_each(|v| *v = 0.0);
            for (o, &src) in cache.m2.iter().enumerate() {
                da2[src] += dfeat[o];
            }
            // ReLU 2 mask.
            for (g, &a) in da2.iter_mut().zip(&cache.a2) {
                if a <= 0.0 {
                    *g = 0.0;
                }
            }
            // Conv2 gradients + gradient to p1.
            dp1.resize(self.c1 * d.pool1 * d.pool1, 0.0);
            dp1.iter_mut().for_each(|v| *v = 0.0);
            for c2i in 0..self.c2 {
                let dout = &da2[c2i * d.conv2 * d.conv2..(c2i + 1) * d.conv2 * d.conv2];
                let wbase = off[2] + c2i * self.c1 * cache.k * cache.k;
                for oy in 0..d.conv2 {
                    for ox in 0..d.conv2 {
                        let g = dout[oy * d.conv2 + ox];
                        if g == 0.0 {
                            continue;
                        }
                        grad[off[3] + c2i] += g;
                        for c1i in 0..self.c1 {
                            let img =
                                &cache.p1[c1i * d.pool1 * d.pool1..(c1i + 1) * d.pool1 * d.pool1];
                            let kbase = wbase + c1i * cache.k * cache.k;
                            for ky in 0..cache.k {
                                for kx in 0..cache.k {
                                    let ii = (oy + ky) * d.pool1 + ox + kx;
                                    grad[kbase + ky * cache.k + kx] += g * img[ii];
                                    dp1[c1i * d.pool1 * d.pool1 + ii] +=
                                        g * params[kbase + ky * cache.k + kx];
                                }
                            }
                        }
                    }
                }
            }
            // Unpool 1 + ReLU 1 mask.
            da1.resize(self.c1 * d.conv1 * d.conv1, 0.0);
            da1.iter_mut().for_each(|v| *v = 0.0);
            for (o, &src) in cache.m1.iter().enumerate() {
                da1[src] += dp1[o];
            }
            for (g, &a) in da1.iter_mut().zip(&cache.a1) {
                if a <= 0.0 {
                    *g = 0.0;
                }
            }
            // Conv1 gradients (input has one channel).
            for c1i in 0..self.c1 {
                let dout = &da1[c1i * d.conv1 * d.conv1..(c1i + 1) * d.conv1 * d.conv1];
                let wbase = off[0] + c1i * cache.k * cache.k;
                for oy in 0..d.conv1 {
                    for ox in 0..d.conv1 {
                        let g = dout[oy * d.conv1 + ox];
                        if g == 0.0 {
                            continue;
                        }
                        grad[off[1] + c1i] += g;
                        for ky in 0..cache.k {
                            for kx in 0..cache.k {
                                let ii = (oy + ky) * self.side + ox + kx;
                                grad[wbase + ky * cache.k + kx] += g * input[ii];
                            }
                        }
                    }
                }
            }
        }
        loss
    }

    fn predict(&self, params: &[f32], x: &Matrix) -> Vec<usize> {
        let logits = self.forward_batch(params, x);
        ops::argmax_rows(&logits)
    }
}

impl SimpleCnn {
    /// Batched forward to logits (one conv cache reused across samples).
    fn forward_batch(&self, params: &[f32], x: &Matrix) -> Matrix {
        assert_eq!(params.len(), self.num_params(), "bad parameter length");
        assert_eq!(x.cols(), self.side * self.side, "input dim mismatch");
        let d = self.dims();
        let off = self.offsets();
        let n = x.rows();
        let mut cache = ConvCache::default();
        self.ensure_cache(&mut cache);
        let mut feats = Matrix::zeros(n, d.flat);
        for i in 0..n {
            self.run_conv_stack(params, x.row(i), &mut cache);
            feats.row_mut(i).copy_from_slice(&cache.p2);
        }
        let fcw = MatrixView::new(self.hidden, d.flat, &params[off[4]..off[5]]);
        let mut hid = Matrix::zeros(0, 0);
        ops::matmul_transb_into(feats.view(), fcw, &mut hid);
        ops::add_row_inplace(&mut hid, &params[off[5]..off[6]]);
        ops::relu_inplace(&mut hid);
        let hw = MatrixView::new(self.classes, self.hidden, &params[off[6]..off[7]]);
        let mut logits = Matrix::zeros(0, 0);
        ops::matmul_transb_into(hid.view(), hw, &mut logits);
        ops::add_row_inplace(&mut logits, &params[off[7]..off[8]]);
        logits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradient;
    use hm_data::rng::Purpose;

    fn toy_batch(side: usize, classes: usize, n: usize) -> Dataset {
        let x = Matrix::from_fn(n, side * side, |r, c| {
            ((r * 31 + c * 17) % 13) as f32 / 13.0 - 0.3
        });
        let y = (0..n).map(|i| i % classes).collect();
        Dataset::new(x, y, classes)
    }

    #[test]
    fn param_count_matches_layout() {
        let m = SimpleCnn::new(16, 3, 4, 8, 32, 10);
        // conv1: 4·9+4, conv2: 8·4·9+8, dims: 16→14→7→5→2, flat 8·4=32,
        // fc: 32·32+32, head: 10·32+10.
        let expect = 36 + 4 + 288 + 8 + 1024 + 32 + 320 + 10;
        assert_eq!(m.num_params(), expect);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_input_rejected() {
        let _ = SimpleCnn::new(5, 3, 2, 2, 4, 2);
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let m = SimpleCnn::new(12, 3, 3, 4, 16, 5);
        let mut rng = StreamRng::new(1, Purpose::Init, 0, 0);
        let p = m.init_params(&mut rng);
        let batch = toy_batch(12, 5, 3);
        let a = m.loss(&p, &batch);
        let b = m.loss(&p, &batch);
        assert!(a.is_finite() && a >= 0.0);
        assert_eq!(a, b);
        let preds = m.predict(&p, &batch.x);
        assert_eq!(preds.len(), 3);
        assert!(preds.iter().all(|&c| c < 5));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = SimpleCnn::new(10, 3, 2, 3, 8, 3);
        let mut rng = StreamRng::new(2, Purpose::Init, 0, 0);
        let p = m.init_params(&mut rng);
        let batch = toy_batch(10, 3, 2);
        // ReLU + maxpool kinks: looser gate, many coordinates.
        let err = check_gradient(&m, &p, &batch, 60, 5);
        assert!(err < 3e-2, "gradcheck error {err}");
    }

    #[test]
    fn sgd_fits_toy_problem() {
        let m = SimpleCnn::new(10, 3, 2, 3, 16, 2);
        let batch = toy_batch(10, 2, 6);
        let mut rng = StreamRng::new(3, Purpose::Init, 0, 0);
        let mut p = m.init_params(&mut rng);
        let mut g = vec![0.0_f32; m.num_params()];
        let l0 = m.loss(&p, &batch);
        for _ in 0..300 {
            m.loss_grad(&p, &batch, &mut g);
            hm_tensor::vecops::axpy(-0.1, &g, &mut p);
        }
        let l1 = m.loss(&p, &batch);
        assert!(l1 < l0 * 0.5, "loss {l0} -> {l1}");
        assert!(m.accuracy(&p, &batch) >= 0.8);
    }

    #[test]
    fn trains_inside_the_federated_stack() {
        // End-to-end: a CNN problem through HierMinimax would need hm-core
        // (circular dev-dependency), so exercise the Model surface the
        // algorithms use: init → loss_grad → repeated batched calls.
        let m = SimpleCnn::new(10, 3, 2, 2, 8, 3);
        let mut rng = StreamRng::new(4, Purpose::Init, 0, 0);
        let p = m.init_params(&mut rng);
        let batch = toy_batch(10, 3, 4);
        let mut g1 = vec![0.0_f32; m.num_params()];
        let mut g2 = vec![0.0_f32; m.num_params()];
        m.loss_grad(&p, &batch, &mut g1);
        m.loss_grad(&p, &batch, &mut g2);
        assert_eq!(g1, g2, "gradient must be a pure function");
        assert!(g1.iter().any(|&x| x != 0.0));
    }
}
