//! Microbenchmarks of the numerical kernels that dominate training time:
//! matrix products (the forward/backward pass), softmax, the simplex
//! projection (every eq.-7 update), and the aggregation primitives
//! (every client-edge and edge-cloud sync).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hm_data::rng::{Purpose, StreamRng};
use hm_optim::projection::project_simplex;
use hm_tensor::{ops, vecops, Matrix};
use std::hint::black_box;

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StreamRng::new(seed, Purpose::Misc, 0, 0);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform() as f32 - 0.5)
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_transb");
    // Shapes from the actual models: logistic forward (batch × 256 · 10×256ᵀ)
    // and the MLP's fattest layer (batch × 256 · 300×256ᵀ).
    for &(m, k, n) in &[(8usize, 256usize, 10usize), (8, 256, 300), (64, 256, 300)] {
        let a = rand_matrix(m, k, 1);
        let b = rand_matrix(n, k, 2);
        g.throughput(Throughput::Elements((m * k * n) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(a, b),
            |bench, (a, b)| bench.iter(|| ops::matmul_transb(black_box(a), black_box(b))),
        );
    }
    g.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut g = c.benchmark_group("softmax_rows");
    for &rows in &[8usize, 64, 512] {
        let m = rand_matrix(rows, 10, 3);
        g.throughput(Throughput::Elements((rows * 10) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(rows), &m, |bench, m| {
            bench.iter(|| ops::softmax_rows(black_box(m)))
        });
    }
    g.finish();
}

fn bench_simplex_projection(c: &mut Criterion) {
    let mut g = c.benchmark_group("project_simplex");
    // n = 10 (the paper's N_E), 100 (the Synthetic scenario), 1000.
    for &n in &[10usize, 100, 1000] {
        let mut rng = StreamRng::new(4, Purpose::Misc, 0, 0);
        let x: Vec<f32> = (0..n).map(|_| rng.normal() as f32).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |bench, x| {
            bench.iter(|| {
                let mut y = x.clone();
                project_simplex(black_box(&mut y));
                y
            })
        });
    }
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("average_into");
    // d = 2570 (logistic on 16×16, 10 classes) and 31k (default fig-4 MLP),
    // averaged over N_0 = 3 sources (one client-edge aggregation).
    for &d in &[2570usize, 31_260] {
        let sources: Vec<Vec<f32>> = (0..3)
            .map(|i| rand_matrix(1, d, 10 + i).into_vec())
            .collect();
        let refs: Vec<&[f32]> = sources.iter().map(|v| v.as_slice()).collect();
        g.throughput(Throughput::Elements(d as u64));
        g.bench_with_input(BenchmarkId::from_parameter(d), &refs, |bench, refs| {
            let mut out = vec![0.0_f32; d];
            bench.iter(|| vecops::average_into(black_box(refs), black_box(&mut out)))
        });
    }
    g.finish();
}

criterion_group!(
    kernels,
    bench_matmul,
    bench_softmax,
    bench_simplex_projection,
    bench_aggregation
);
criterion_main!(kernels);
