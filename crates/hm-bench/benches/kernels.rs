//! Microbenchmarks of the numerical kernels that dominate training time:
//! matrix products (the forward/backward pass), softmax, the simplex
//! projection (every eq.-7 update), and the aggregation primitives
//! (every client-edge and edge-cloud sync).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hm_data::rng::{Purpose, StreamRng};
use hm_optim::projection::project_simplex;
use hm_tensor::{ops, vecops, Matrix};
use std::hint::black_box;

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StreamRng::new(seed, Purpose::Misc, 0, 0);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform() as f32 - 0.5)
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_transb");
    // Shapes from the actual models: logistic forward (batch × 256 · 10×256ᵀ)
    // and the MLP's fattest layer (batch × 256 · 300×256ᵀ).
    for &(m, k, n) in &[(8usize, 256usize, 10usize), (8, 256, 300), (64, 256, 300)] {
        let a = rand_matrix(m, k, 1);
        let b = rand_matrix(n, k, 2);
        g.throughput(Throughput::Elements((m * k * n) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(a, b),
            |bench, (a, b)| bench.iter(|| ops::matmul_transb(black_box(a), black_box(b))),
        );
    }
    g.finish();
}

fn bench_workspace_kernels(c: &mut Criterion) {
    // The `_into` variants against the allocating wrappers benchmarked
    // above: same shapes, caller-owned output reused across iterations —
    // the hot-path pattern of the workspace-based forward/backward.
    let mut g = c.benchmark_group("matmul_transb_into");
    for &(m, k, n) in &[(8usize, 256usize, 10usize), (8, 256, 300), (64, 256, 300)] {
        let a = rand_matrix(m, k, 5);
        let b = rand_matrix(n, k, 6);
        g.throughput(Throughput::Elements((m * k * n) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(a, b),
            |bench, (a, b)| {
                let mut out = Matrix::zeros(m, n);
                bench.iter(|| {
                    ops::matmul_transb_into(black_box(a).view(), black_box(b).view(), &mut out)
                })
            },
        );
    }
    g.finish();

    // The sparsity-aware pre-transposed forward against the dot form on a
    // training-like operand: ~40 % exact zeros in `A`, as produced by
    // clamped image pixels or post-ReLU activations. `fwd` includes the
    // per-call weight transpose, matching what a training step pays.
    let mut g = c.benchmark_group("matmul_transb_fwd_sparse");
    for &(m, k, n) in &[(16usize, 256usize, 100usize), (16, 100, 50)] {
        let mut a = rand_matrix(m, k, 8);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 5 < 2 {
                *v = 0.0;
            }
        }
        let b = rand_matrix(n, k, 9);
        g.throughput(Throughput::Elements((m * k * n) as u64));
        g.bench_with_input(
            BenchmarkId::new("dot", format!("{m}x{k}x{n}")),
            &(a.clone(), b.clone()),
            |bench, (a, b)| {
                let mut out = Matrix::zeros(m, n);
                bench.iter(|| {
                    ops::matmul_transb_into(black_box(a).view(), black_box(b).view(), &mut out)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("pret_fwd", format!("{m}x{k}x{n}")),
            &(a.clone(), b.clone()),
            |bench, (a, b)| {
                let mut wt = Matrix::zeros(0, 0);
                let mut lanes = Matrix::zeros(0, 0);
                let mut out = Matrix::zeros(m, n);
                bench.iter(|| {
                    ops::matmul_transb_fwd_into(
                        black_box(a).view(),
                        black_box(b).view(),
                        &mut wt,
                        &mut lanes,
                        &mut out,
                    )
                })
            },
        );
    }
    g.finish();

    // Mini-batch row gather into a reused buffer (one per SGD step).
    let mut g = c.benchmark_group("select_rows_into");
    let data = rand_matrix(1024, 256, 7);
    for &b in &[8usize, 64] {
        let idx: Vec<usize> = (0..b).map(|i| (i * 37) % 1024).collect();
        g.throughput(Throughput::Elements((b * 256) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(b), &idx, |bench, idx| {
            let mut out = Matrix::zeros(0, 0);
            bench.iter(|| data.select_rows_into(black_box(idx), &mut out))
        });
    }
    g.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut g = c.benchmark_group("softmax_rows");
    for &rows in &[8usize, 64, 512] {
        let m = rand_matrix(rows, 10, 3);
        g.throughput(Throughput::Elements((rows * 10) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(rows), &m, |bench, m| {
            bench.iter(|| ops::softmax_rows(black_box(m)))
        });
    }
    g.finish();
}

fn bench_simplex_projection(c: &mut Criterion) {
    let mut g = c.benchmark_group("project_simplex");
    // n = 10 (the paper's N_E), 100 (the Synthetic scenario), 1000.
    for &n in &[10usize, 100, 1000] {
        let mut rng = StreamRng::new(4, Purpose::Misc, 0, 0);
        let x: Vec<f32> = (0..n).map(|_| rng.normal() as f32).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |bench, x| {
            bench.iter(|| {
                let mut y = x.clone();
                project_simplex(black_box(&mut y));
                y
            })
        });
    }
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("average_into");
    // d = 2570 (logistic on 16×16, 10 classes) and 31k (default fig-4 MLP),
    // averaged over N_0 = 3 sources (one client-edge aggregation).
    for &d in &[2570usize, 31_260] {
        let sources: Vec<Vec<f32>> = (0..3)
            .map(|i| rand_matrix(1, d, 10 + i).into_vec())
            .collect();
        let refs: Vec<&[f32]> = sources.iter().map(|v| v.as_slice()).collect();
        g.throughput(Throughput::Elements(d as u64));
        g.bench_with_input(BenchmarkId::from_parameter(d), &refs, |bench, refs| {
            let mut out = vec![0.0_f32; d];
            bench.iter(|| vecops::average_into(black_box(refs), black_box(&mut out)))
        });
    }
    g.finish();
}

criterion_group!(
    kernels,
    bench_matmul,
    bench_workspace_kernels,
    bench_softmax,
    bench_simplex_projection,
    bench_aggregation
);
criterion_main!(kernels);
