//! Benchmarks of the training-loop building blocks and of one full
//! HierMinimax round — including the sequential-vs-rayon comparison that
//! justifies the parallel client executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hm_core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hm_core::localsgd::local_sgd;
use hm_core::problem::FederatedProblem;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::rng::{Purpose, StreamRng};
use hm_data::scenarios::one_class_per_edge;
use hm_nn::{Mlp, Model, MulticlassLogistic, SimpleCnn};
use hm_optim::ProjectionOp;
use hm_simnet::Parallelism;
use std::hint::black_box;

fn problem() -> FederatedProblem {
    let cfg = ImageConfig::emnist_digits_like();
    let sc = one_class_per_edge(cfg, 10, 3, 40, 20, 7);
    FederatedProblem::logistic_from_scenario(&sc)
}

fn bench_local_sgd(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_sgd_2steps");
    let fp = problem();
    let data = fp.client_data(0, 0).clone();

    let logi = MulticlassLogistic::new(256, 10);
    let w0 = vec![0.0_f32; logi.num_params()];
    g.bench_function("logistic_d2570", |bench| {
        bench.iter(|| {
            let mut rng = StreamRng::new(1, Purpose::Batch, 0, 0);
            local_sgd(
                black_box(&logi),
                black_box(&data),
                &w0,
                2,
                0.05,
                4,
                &ProjectionOp::Unconstrained,
                &mut rng,
                None,
            )
        })
    });

    let mlp = Mlp::new(256, &[100, 50], 10);
    let mut irng = StreamRng::new(2, Purpose::Init, 0, 0);
    let w0 = mlp.init_params(&mut irng);
    g.bench_function("mlp_d31260", |bench| {
        bench.iter(|| {
            let mut rng = StreamRng::new(1, Purpose::Batch, 0, 0);
            local_sgd(
                black_box(&mlp),
                black_box(&data),
                &w0,
                2,
                0.05,
                8,
                &ProjectionOp::Unconstrained,
                &mut rng,
                None,
            )
        })
    });

    let cnn = SimpleCnn::new(16, 3, 4, 8, 32, 10);
    let mut irng = StreamRng::new(3, Purpose::Init, 0, 0);
    let w0 = cnn.init_params(&mut irng);
    g.sample_size(10);
    g.bench_function("cnn_16x16", |bench| {
        bench.iter(|| {
            let mut rng = StreamRng::new(1, Purpose::Batch, 0, 0);
            local_sgd(
                black_box(&cnn),
                black_box(&data),
                &w0,
                2,
                0.05,
                4,
                &ProjectionOp::Unconstrained,
                &mut rng,
                None,
            )
        })
    });
    g.finish();
}

fn bench_full_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierminimax_round");
    g.sample_size(20);
    let fp = problem();
    for (label, par) in [
        ("sequential", Parallelism::Sequential),
        ("rayon", Parallelism::Rayon),
    ] {
        let cfg = HierMinimaxConfig {
            rounds: 1,
            tau1: 2,
            tau2: 2,
            m_edges: 5,
            eta_w: 0.05,
            eta_p: 0.01,
            batch_size: 4,
            loss_batch: 16,
            weight_update_model: Default::default(),
            quantizer: Default::default(),
            dropout: 0.0,
            tau2_per_edge: None,
            opts: RunOpts {
                eval_every: 0,
                parallelism: par,
                trace: false,
                ..Default::default()
            },
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |bench, cfg| {
            let alg = HierMinimax::new(cfg.clone());
            bench.iter(|| alg.run(black_box(&fp), 9))
        });
    }
    g.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let fp = problem();
    let w = vec![0.01_f32; fp.num_params()];
    c.bench_function("evaluate_10_edges", |bench| {
        bench.iter(|| hm_core::metrics::evaluate(black_box(&fp), black_box(&w), Parallelism::Rayon))
    });
}

fn bench_quantized_round(c: &mut Criterion) {
    use hm_simnet::Quantizer;
    let mut g = c.benchmark_group("hierminimax_round_quantized");
    g.sample_size(20);
    let fp = problem();
    for (label, q) in [
        ("exact", Quantizer::Exact),
        ("8bit", Quantizer::Stochastic { bits: 8 }),
        ("2bit", Quantizer::Stochastic { bits: 2 }),
    ] {
        let cfg = HierMinimaxConfig {
            rounds: 1,
            tau1: 2,
            tau2: 2,
            m_edges: 5,
            eta_w: 0.05,
            eta_p: 0.01,
            batch_size: 4,
            loss_batch: 16,
            weight_update_model: Default::default(),
            quantizer: q,
            dropout: 0.0,
            tau2_per_edge: None,
            opts: RunOpts {
                eval_every: 0,
                parallelism: Parallelism::Rayon,
                trace: false,
                ..Default::default()
            },
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |bench, cfg| {
            let alg = HierMinimax::new(cfg.clone());
            bench.iter(|| alg.run(black_box(&fp), 9))
        });
    }
    g.finish();
}

fn bench_multilevel_round(c: &mut Criterion) {
    use hm_core::algorithms::{MultiLevelConfig, MultiLevelMinimax, UpperLevel};
    let mut g = c.benchmark_group("multilevel_round");
    g.sample_size(20);
    let fp = problem();
    for (label, upper) in [
        ("3layer", vec![]),
        (
            "4layer",
            vec![UpperLevel {
                group_size: 5,
                tau: 2,
            }],
        ),
    ] {
        let cfg = MultiLevelConfig {
            rounds: 1,
            tau1: 2,
            tau2: 2,
            upper,
            m_groups: 2,
            eta_w: 0.05,
            eta_p: 0.01,
            batch_size: 4,
            loss_batch: 16,
            dropout: 0.0,
            opts: RunOpts {
                eval_every: 0,
                parallelism: Parallelism::Rayon,
                trace: false,
                ..Default::default()
            },
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |bench, cfg| {
            let alg = MultiLevelMinimax::new(cfg.clone());
            bench.iter(|| alg.run(black_box(&fp), 9))
        });
    }
    g.finish();
}

criterion_group!(
    training,
    bench_local_sgd,
    bench_full_round,
    bench_evaluation,
    bench_quantized_round,
    bench_multilevel_round
);
criterion_main!(training);
