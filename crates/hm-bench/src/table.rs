//! Minimal aligned text-table printer for experiment output.

/// A text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width doesn't match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with space-padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                out.push_str(cell);
                if i + 1 < cols {
                    out.push_str(&" ".repeat(w - cell.len() + 2));
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Format an `Option<u64>` count as the paper formats "never reached".
pub fn fmt_rounds(r: Option<u64>) -> String {
    match r {
        Some(n) => n.to_string(),
        None => "not reached".to_string(),
    }
}

/// Percentage with one decimal, e.g. `0.8035 → "80.4%"`.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["method", "worst"]);
        t.row(vec!["HierMinimax", "0.83"]);
        t.row(vec!["X", "0.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "worst" starts at the same offset in all rows.
        let col = lines[0].find("worst").unwrap();
        assert_eq!(&lines[2][col..col + 4], "0.83");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_row_panics() {
        TextTable::new(vec!["a", "b"]).row(vec!["1"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_rounds(Some(8200)), "8200");
        assert_eq!(fmt_rounds(None), "not reached");
        assert_eq!(fmt_pct(0.8035), "80.3%");
    }
}
