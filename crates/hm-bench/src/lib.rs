//! Experiment harness regenerating every table and figure of the paper.
//!
//! Binaries (run with `--release`; all accept `--quick` for a smoke-scale
//! run and `--full` for the largest configuration):
//!
//! - `fig3` — §6.1 / Fig. 3: convex logistic regression, one class per
//!   edge area; average & worst accuracy vs communication rounds for all
//!   five methods, plus the rounds-to-80%-worst headline numbers.
//! - `fig4` — §6.2 / Fig. 4: non-convex MLP, s%-similarity split; same
//!   comparison with the rounds-to-50%-worst headline numbers.
//! - `table2` — §6.3 / Table 2: HierFAVG vs HierMinimax
//!   average/worst/variance on all five dataset stand-ins.
//! - `tradeoff` — Table 1 / Theorems 1–2: the α-sweep showing the
//!   communication-convergence tradeoff (edge-cloud rounds `Θ(T^{1−α})` vs
//!   duality gap), plus the τ1/τ2 split ablation.
//!
//! Each binary prints aligned text tables and writes CSV series under
//! `results/` for external plotting.

pub mod harness;
pub mod plot;
pub mod results;
pub mod table;
