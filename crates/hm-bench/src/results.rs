//! CSV result files under `results/` for external plotting.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory that experiment binaries write their CSV series into.
pub const RESULTS_DIR: &str = "results";

/// Write `contents` to `results/<name>`, creating the directory if needed.
/// Returns the written path.
///
/// # Panics
/// Panics on I/O failure (experiment binaries want loud failures).
pub fn write_result(name: &str, contents: &str) -> PathBuf {
    let dir = Path::new(RESULTS_DIR);
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    fs::write(&path, contents).expect("write result file");
    path
}

/// Parse simple CLI flags shared by the experiment binaries: returns
/// `(quick, full)` from `--quick` / `--full` argv flags.
pub fn parse_scale_flags() -> (bool, bool) {
    let args: Vec<String> = std::env::args().collect();
    (
        args.iter().any(|a| a == "--quick"),
        args.iter().any(|a| a == "--full"),
    )
}

/// Parse `--seed <n>` (default when absent).
pub fn parse_seed(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_result_roundtrips() {
        let dir = std::env::temp_dir().join(format!("hm-results-{}", std::process::id()));
        let old = std::env::current_dir().unwrap();
        fs::create_dir_all(&dir).unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let p = write_result("test.csv", "a,b\n1,2\n");
        let back = fs::read_to_string(&p).unwrap();
        std::env::set_current_dir(old).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(back, "a,b\n1,2\n");
    }
}
