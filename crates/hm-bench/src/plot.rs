//! Terminal line charts for the figure binaries: a braille-free,
//! plain-ASCII renderer that draws multiple named series on a shared
//! grid, so `fig3`/`fig4` print an actual figure next to their tables.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, in increasing x.
    pub points: Vec<(f64, f64)>,
}

/// Render the series into `width × height` characters plus axes and a
/// legend. Each series uses its own glyph; collisions show the later
/// series. Returns an empty string when no series has points.
pub fn render(
    series: &[Series],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let (width, height) = (width.max(16), height.max(4));
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() {
        return String::new();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_label}\n"));
    for (i, row) in grid.iter().enumerate() {
        let y_tick = y1 - (y1 - y0) * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_tick:>7.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>8}+{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>8} {:<w$.0}{:>r$.0}   ({x_label})\n",
        "",
        x0,
        x1,
        w = width / 2,
        r = width - width / 2 - 1,
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(label: &str, n: usize, slope: f64) -> Series {
        Series {
            label: label.into(),
            points: (0..n).map(|i| (i as f64, slope * i as f64)).collect(),
        }
    }

    #[test]
    fn renders_nonempty_with_legend() {
        let s = [ramp("up", 20, 1.0), ramp("flat", 20, 0.0)];
        let out = render(&s, 40, 10, "rounds", "worst acc");
        assert!(out.contains("* up"));
        assert!(out.contains("o flat"));
        assert!(out.contains("worst acc"));
        assert!(out.contains("(rounds)"));
        // 10 grid rows plus axes and legend.
        assert!(out.lines().count() >= 14, "{out}");
    }

    #[test]
    fn empty_series_render_empty() {
        assert_eq!(render(&[], 40, 10, "x", "y"), "");
        let empty = [Series {
            label: "e".into(),
            points: vec![],
        }];
        assert_eq!(render(&empty, 40, 10, "x", "y"), "");
    }

    #[test]
    fn increasing_series_puts_glyphs_higher_later() {
        let s = [ramp("up", 30, 1.0)];
        let out = render(&s, 30, 8, "x", "y");
        let rows: Vec<&str> = out.lines().skip(1).take(8).collect();
        // Top row's glyph must be to the right of the bottom row's.
        let top_col = rows[0].find('*').expect("top glyph");
        let bottom_col = rows[7].find('*').expect("bottom glyph");
        assert!(top_col > bottom_col, "{out}");
    }

    #[test]
    fn constant_series_does_not_panic() {
        let s = [Series {
            label: "c".into(),
            points: vec![(1.0, 5.0), (2.0, 5.0)],
        }];
        let out = render(&s, 30, 6, "x", "y");
        assert!(out.contains('*'));
    }
}
