//! Method suite runner: runs the five algorithms on a shared problem with a
//! matched time-slot budget, so "communication rounds to reach a target"
//! comparisons are apples-to-apples (the paper gives every method the same
//! per-round local-update count: `τ1 = 2` for two-layer multi-step methods
//! and `τ1 = τ2 = 2` for hierarchical ones).

use hm_core::algorithms::{
    AflConfig, Algorithm, Drfa, DrfaConfig, FedAvg, FedAvgConfig, HierFavg, HierFavgConfig,
    HierMinimax, HierMinimaxConfig, RunOpts, StochasticAfl,
};
use hm_core::problem::FederatedProblem;
use hm_core::RunResult;
use hm_simnet::{ExecEngine, FaultPlan, Parallelism};
use hm_telemetry::Telemetry;

/// The five methods of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// FedAvg — two-layer minimization (multi-step).
    FedAvg,
    /// Stochastic-AFL — two-layer minimax (single-step).
    StochasticAfl,
    /// DRFA — two-layer minimax (multi-step).
    Drfa,
    /// HierFAVG — three-layer minimization.
    HierFavg,
    /// HierMinimax — three-layer minimax (the paper's algorithm).
    HierMinimax,
}

impl Method {
    /// All methods in the paper's presentation order.
    pub fn all() -> [Method; 5] {
        [
            Method::FedAvg,
            Method::StochasticAfl,
            Method::Drfa,
            Method::HierFavg,
            Method::HierMinimax,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Method::FedAvg => "FedAvg",
            Method::StochasticAfl => "Stochastic-AFL",
            Method::Drfa => "DRFA",
            Method::HierFavg => "HierFAVG",
            Method::HierMinimax => "HierMinimax",
        }
    }

    /// Time slots consumed per training round under the suite parameters.
    pub fn slots_per_round(&self, sp: &SuiteParams) -> usize {
        match self {
            Method::FedAvg | Method::Drfa => sp.tau1,
            Method::StochasticAfl => 1,
            Method::HierFavg | Method::HierMinimax => sp.tau1 * sp.tau2,
        }
    }
}

/// Shared parameters for a method suite.
#[derive(Debug, Clone)]
pub struct SuiteParams {
    /// Total time slots `T` given to every method.
    pub total_slots: usize,
    /// Local steps per client-edge aggregation (`τ1`, also the local steps
    /// of the two-layer multi-step methods).
    pub tau1: usize,
    /// Client-edge aggregations per round (`τ2`, hierarchical methods).
    pub tau2: usize,
    /// Participating edges per round (`m_E`); two-layer methods use
    /// `m_E · N_0` clients so device participation matches.
    pub m_edges: usize,
    /// Model learning rate.
    pub eta_w: f32,
    /// Weight learning rate.
    pub eta_p: f32,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// Mini-batch size for loss estimation in the minimax methods.
    pub loss_batch: usize,
    /// Evaluate roughly every this many time slots.
    pub eval_every_slots: usize,
    /// Execution mode.
    pub parallelism: Parallelism,
    /// When set, each method writes structured run telemetry to
    /// `<dir>/telemetry_<method>.jsonl` (see DESIGN.md §10).
    pub telemetry_dir: Option<std::path::PathBuf>,
    /// Deterministic fault plan applied to the hierarchical methods (the
    /// flat baselines ignore it; see `hm_simnet::fault`).
    pub fault: FaultPlan,
    /// Round scheduling engine for the hierarchical methods (chained by
    /// default; `Barrier` is the pre-chain reference the round-throughput
    /// benchmark compares against).
    pub engine: ExecEngine,
}

impl SuiteParams {
    fn opts(&self, slots_per_round: usize, method: Method) -> RunOpts {
        let telemetry = match &self.telemetry_dir {
            None => Telemetry::disabled(),
            Some(dir) => {
                let slug = method.name().to_lowercase().replace('-', "_");
                let path = dir.join(format!("telemetry_{slug}.jsonl"));
                Telemetry::jsonl(&path).unwrap_or_else(|e| {
                    eprintln!("warning: cannot open {}: {e}", path.display());
                    Telemetry::disabled()
                })
            }
        };
        RunOpts {
            eval_every: (self.eval_every_slots / slots_per_round).max(1),
            parallelism: self.parallelism,
            trace: false,
            telemetry,
            fault: self.fault.clone(),
            checkpoint: Default::default(),
            engine: self.engine,
            profile: Default::default(),
            aggregator: Default::default(),
            quarantine_z: 0.0,
            quarantine_window: 0,
            churn: Default::default(),
            max_stale_rounds: 0,
        }
    }

    fn rounds(&self, slots_per_round: usize) -> usize {
        (self.total_slots / slots_per_round).max(1)
    }
}

/// Run one method with the matched budget.
pub fn run_method(
    method: Method,
    problem: &FederatedProblem,
    sp: &SuiteParams,
    seed: u64,
) -> RunResult {
    let n0 = problem.clients_per_edge();
    let m_clients = (sp.m_edges * n0).min(problem.topology().total_clients());
    let spr = method.slots_per_round(sp);
    let rounds = sp.rounds(spr);
    let opts = sp.opts(spr, method);
    match method {
        Method::FedAvg => FedAvg::new(FedAvgConfig {
            rounds,
            tau1: sp.tau1,
            m_clients,
            eta_w: sp.eta_w,
            batch_size: sp.batch_size,
            opts,
        })
        .run(problem, seed),
        Method::StochasticAfl => StochasticAfl::new(AflConfig {
            rounds,
            m_clients,
            eta_w: sp.eta_w,
            eta_q: sp.eta_p,
            batch_size: sp.batch_size,
            loss_batch: sp.loss_batch,
            opts,
        })
        .run(problem, seed),
        Method::Drfa => Drfa::new(DrfaConfig {
            rounds,
            tau1: sp.tau1,
            m_clients,
            eta_w: sp.eta_w,
            eta_q: sp.eta_p,
            batch_size: sp.batch_size,
            loss_batch: sp.loss_batch,
            opts,
        })
        .run(problem, seed),
        Method::HierFavg => HierFavg::new(HierFavgConfig {
            rounds,
            tau1: sp.tau1,
            tau2: sp.tau2,
            m_edges: sp.m_edges,
            eta_w: sp.eta_w,
            batch_size: sp.batch_size,
            quantizer: Default::default(),
            dropout: 0.0,
            opts,
        })
        .run(problem, seed),
        Method::HierMinimax => HierMinimax::new(HierMinimaxConfig {
            rounds,
            tau1: sp.tau1,
            tau2: sp.tau2,
            m_edges: sp.m_edges,
            eta_w: sp.eta_w,
            eta_p: sp.eta_p,
            batch_size: sp.batch_size,
            loss_batch: sp.loss_batch,
            weight_update_model: Default::default(),
            quantizer: Default::default(),
            dropout: 0.0,
            tau2_per_edge: None,
            opts,
        })
        .run(problem, seed),
    }
}

/// Run every method and return `(method, result)` pairs in paper order.
pub fn run_suite(
    problem: &FederatedProblem,
    sp: &SuiteParams,
    seed: u64,
) -> Vec<(Method, RunResult)> {
    Method::all()
        .into_iter()
        .map(|m| {
            let r = run_method(m, problem, sp, seed);
            (m, r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;

    fn sp() -> SuiteParams {
        SuiteParams {
            total_slots: 16,
            tau1: 2,
            tau2: 2,
            m_edges: 2,
            eta_w: 0.1,
            eta_p: 0.1,
            batch_size: 2,
            loss_batch: 4,
            eval_every_slots: 4,
            parallelism: Parallelism::Sequential,
            telemetry_dir: None,
            fault: FaultPlan::default(),
            engine: Default::default(),
        }
    }

    #[test]
    fn budgets_match_across_methods() {
        let sp = sp();
        assert_eq!(Method::FedAvg.slots_per_round(&sp), 2);
        assert_eq!(Method::StochasticAfl.slots_per_round(&sp), 1);
        assert_eq!(Method::Drfa.slots_per_round(&sp), 2);
        assert_eq!(Method::HierMinimax.slots_per_round(&sp), 4);
        // Rounds × slots/round == total_slots for divisible budgets.
        for m in Method::all() {
            let spr = m.slots_per_round(&sp);
            assert_eq!(sp.rounds(spr) * spr, 16, "{m:?}");
        }
    }

    #[test]
    fn suite_runs_all_methods() {
        let sc = tiny_problem(3, 2, 1);
        let fp = hm_core::FederatedProblem::logistic_from_scenario(&sc);
        let out = run_suite(&fp, &sp(), 42);
        assert_eq!(out.len(), 5);
        for (m, r) in &out {
            let slots = r.history.rounds.last().unwrap().slots_done;
            assert_eq!(slots, 16, "{} consumed {} slots", m.name(), slots);
            assert!(
                r.history.final_eval().is_some(),
                "{} never evaluated",
                m.name()
            );
        }
        // One cloud round per training round for every method, so per slot
        // budget: {HierFAVG, HierMinimax} < {FedAvg, DRFA} < AFL under
        // τ1 = τ2 = 2.
        let rounds: Vec<u64> = out.iter().map(|(_, r)| r.comm.cloud_rounds()).collect();
        let (fedavg, afl, drfa, hierfavg, hm) =
            (rounds[0], rounds[1], rounds[2], rounds[3], rounds[4]);
        assert_eq!(hierfavg, 4);
        assert_eq!(hm, 4);
        assert_eq!(fedavg, 8);
        assert_eq!(drfa, 8);
        assert_eq!(afl, 16);
    }

    #[test]
    fn telemetry_dir_writes_one_valid_stream_per_method() {
        let dir = std::env::temp_dir().join(format!("hm-bench-tel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sc = tiny_problem(3, 2, 9);
        let fp = hm_core::FederatedProblem::logistic_from_scenario(&sc);
        let mut params = sp();
        params.telemetry_dir = Some(dir.clone());
        let out = run_suite(&fp, &params, 42);
        for (m, r) in &out {
            let slug = m.name().to_lowercase().replace('-', "_");
            let path = dir.join(format!("telemetry_{slug}.jsonl"));
            let body = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            let summary = hm_telemetry::validate_stream(&body)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert_eq!(summary.runs, 1, "{}", m.name());
            assert_eq!(
                summary.events_by_kind.get("round_end"),
                Some(&r.history.rounds.len()),
                "{}",
                m.name()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
