//! Empirical verification of Lemma 1 (Bounded Squared Model Divergence).
//!
//! Measures the lemma's left side with a lockstep instrumented run and
//! compares it with the right side computed from estimated problem
//! constants, sweeping (τ1, τ2, η). Expected: measured ≤ bound everywhere
//! (with a large slack factor — the lemma is a worst-case bound) and
//! measured divergence growing with τ1, τ2, and η as the bound's structure
//! predicts.

use hm_bench::results::{parse_scale_flags, write_result};
use hm_bench::table::TextTable;
use hm_core::diagnostics::{measure_divergence, DivergenceConfig};
use hm_core::FederatedProblem;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::scenarios::one_class_per_edge;

fn main() {
    let (quick, _full) = parse_scale_flags();
    let rounds = if quick { 8 } else { 40 };

    let mut cfg = ImageConfig::emnist_digits_like();
    cfg.side = 8;
    let scenario = one_class_per_edge(cfg, 10, 3, 40, 40, 77);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);

    println!("Lemma 1 verification: measured divergence vs analytical bound\n");
    let mut t = TextTable::new(vec![
        "tau1", "tau2", "eta", "measured", "bound", "ratio", "cond.",
    ]);
    let mut csv = String::from("tau1,tau2,eta,measured,bound\n");
    for &(tau1, tau2) in &[(1usize, 1usize), (2, 1), (2, 2), (4, 2), (2, 4)] {
        for &eta in &[0.01_f32, 0.03] {
            let r = measure_divergence(
                &problem,
                &DivergenceConfig {
                    rounds,
                    tau1,
                    tau2,
                    m_edges: 5,
                    eta_w: eta,
                    batch_size: 2,
                    smoothness: 1.0,
                },
                7,
            );
            t.row(vec![
                tau1.to_string(),
                tau2.to_string(),
                format!("{eta}"),
                format!("{:.3e}", r.measured),
                format!("{:.3e}", r.bound),
                format!("{:.4}", r.measured / r.bound),
                if r.step_condition_ok {
                    "ok"
                } else {
                    "violated"
                }
                .to_string(),
            ]);
            csv.push_str(&format!(
                "{tau1},{tau2},{eta},{:.6e},{:.6e}\n",
                r.measured, r.bound
            ));
            assert!(
                r.measured <= r.bound,
                "LEMMA 1 VIOLATED at tau1={tau1} tau2={tau2} eta={eta}: {} > {}",
                r.measured,
                r.bound
            );
        }
    }
    println!("{}", t.render());
    println!("measured ≤ bound in every cell; divergence grows with tau1, tau2, eta");
    println!("as the two terms of the bound predict. (tau1 = tau2 = 1 has zero");
    println!("divergence only within a slot; aggregation happens every slot.)");
    let path = write_result("lemma1.csv", &csv);
    println!("\nseries written to {}", path.display());
}
