//! Robustness sweep: HierMinimax under the deterministic fault presets
//! (client crashes, edge outages, lossy WAN with bounded retries,
//! compute stragglers, all at once), reporting accuracy degradation,
//! fault bookkeeping, and the WAN retry overhead relative to the
//! failure-free run. Expected shape: graceful degradation — accuracy
//! bends rather than collapses, the dual weights stay a distribution,
//! and communication grows only by the metered retransmissions.

use hm_bench::results::{parse_scale_flags, parse_seed, write_result};
use hm_bench::table::{fmt_pct, TextTable};
use hm_core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hm_core::metrics::evaluate;
use hm_core::FederatedProblem;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::scenarios::{linear_sizes, one_class_per_edge_sized};
use hm_simnet::{FaultPlan, Link, Parallelism, FAULT_PRESETS};

fn main() {
    let (quick, full) = parse_scale_flags();
    let rounds = if quick {
        150
    } else if full {
        4000
    } else {
        1500
    };
    let seeds: u64 = 3;
    let base_seed = parse_seed(7);

    let cfg = ImageConfig::emnist_digits_like();
    let sizes = linear_sizes(60, 0.15, 10);
    let scenario = one_class_per_edge_sized(cfg, 10, 3, &sizes, 400, 2024);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);

    println!(
        "HierMinimax under fault injection, {rounds} rounds, mean of {seeds} seeds\n\
         (presets: see `hierminimax run --fault-plan`)\n"
    );
    let mut t = TextTable::new(vec![
        "fault plan",
        "avg acc",
        "worst acc",
        "crashes",
        "outages",
        "gave up",
        "WAN floats",
        "vs none",
    ]);
    let mut csv = String::from("plan,avg,worst,crashes,outages,gave_up,wan_floats\n");
    let mut clean_floats = 0u64;
    for name in FAULT_PRESETS {
        let plan = FaultPlan::preset(name).expect("preset table is exhaustive");
        let base = HierMinimaxConfig {
            rounds,
            tau1: 2,
            tau2: 2,
            m_edges: 5,
            eta_w: 0.02,
            eta_p: 0.005,
            batch_size: 1,
            loss_batch: 16,
            weight_update_model: Default::default(),
            quantizer: Default::default(),
            dropout: 0.0,
            tau2_per_edge: None,
            opts: RunOpts {
                eval_every: 0,
                parallelism: Parallelism::Rayon,
                trace: false,
                fault: plan,
                ..Default::default()
            },
        };
        let (mut avg, mut worst) = (0.0, 0.0);
        let (mut crashes, mut outages, mut gave_up, mut floats) = (0u64, 0u64, 0u64, 0u64);
        for s in 0..seeds {
            let r = HierMinimax::new(base.clone()).run(&problem, base_seed + s);
            let e = evaluate(&problem, &r.final_w, Parallelism::Rayon);
            avg += e.average / seeds as f64;
            worst += e.worst / seeds as f64;
            crashes += r.faults.crashes / seeds;
            outages += r.faults.outages / seeds;
            gave_up += r.faults.gave_up / seeds;
            floats += (r.comm.downlink_floats(Link::EdgeCloud)
                + r.comm.uplink_floats(Link::EdgeCloud))
                / seeds;
        }
        if name == "none" {
            clean_floats = floats;
        }
        t.row(vec![
            name.to_string(),
            fmt_pct(avg),
            fmt_pct(worst),
            crashes.to_string(),
            outages.to_string(),
            gave_up.to_string(),
            floats.to_string(),
            format!(
                "{:+.1}%",
                100.0 * (floats as f64 / clean_floats as f64 - 1.0)
            ),
        ]);
        csv.push_str(&format!(
            "{name},{avg:.6},{worst:.6},{crashes},{outages},{gave_up},{floats}\n"
        ));
    }
    println!("{}", t.render());
    println!(
        "\nWAN floats compare the edge-cloud link only: that is where lost\n\
         messages are retransmitted (bounded retries, exponential backoff)."
    );
    let path = write_result("robustness.csv", &csv);
    println!("series written to {}", path.display());
}
