//! Attack-resilience sweep: final-model drift of every Byzantine attack ×
//! aggregator cell against the honest mean-aggregated reference run,
//! written as machine-readable `results/BENCH_byzantine.json`.
//!
//! Every cell runs the same HierMinimax training job on the same seed with
//! a 20% Byzantine client population mounting one attack model (at an
//! aggressive κ = 10 payload scale), defended by one robust aggregator.
//! The drift metric is the l2 distance between the cell's final global
//! model and the *same aggregator's* honest (adversary-off) run, so each
//! cell measures exactly the bias the attack pushed through that defence —
//! not the aggregator's own honest offset from plain averaging. The
//! horizon is deliberately short: past a few dozen rounds the p-weighted
//! edge sampling amplifies any per-round divergence chaotically and every
//! cell saturates at the model scale, which would drown the signal.
//!
//! The headline scalar is the `sign-flip` drift ratio
//! `mean / trimmed-mean` — how many times worse plain averaging fares than
//! the paper-standard robust aggregator under the canonical direction-
//! reversal attack. The sweep takes no timings and draws every decision
//! from keyed streams, so results are exactly reproducible: `--check`
//! re-measures and compares against the committed JSON with no tolerance
//! for noise, only a floor for the resilience claim itself.
//!
//! Flags:
//! - `--quick`: accepted for interface symmetry with the other benches;
//!   the sweep is already CI-scale (20 short deterministic runs).
//! - `--check`: measure, then require the headline ratio to clear the
//!   resilience floor (≥ 10×) and stay within 2× of the committed
//!   `results/BENCH_byzantine.json` headline, exiting non-zero otherwise
//!   (the file is left untouched).

use hm_bench::results::{parse_scale_flags, write_result, RESULTS_DIR};
use hm_core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hm_core::problem::FederatedProblem;
use hm_data::scenarios::tiny_problem;
use hm_simnet::{AttackModel, FaultPlan};
use hm_telemetry::Telemetry;
use hm_tensor::Aggregator;

const SEED: u64 = 23;
const CORRUPT_RATE: f32 = 0.2;
/// Payload scale κ: sign-flip uploads `base − 10·(w − base)`.
const ATTACK_SCALE: f64 = 10.0;
/// Rounds per cell — short enough that chaotic trajectory divergence does
/// not saturate the drift metric (see module docs).
const ROUNDS: usize = 10;
/// Minimum acceptable sign-flip drift ratio (mean / trimmed-mean); the
/// pinned oracle in `tests/byzantine.rs` enforces the same floor.
const RESILIENCE_FLOOR: f64 = 10.0;

fn config(rounds: usize, plan: FaultPlan, agg: Aggregator) -> HierMinimaxConfig {
    HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 4,
        m_edges: 4,
        eta_w: 0.05,
        eta_p: 0.01,
        batch_size: 4,
        loss_batch: 4,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts: RunOpts {
            eval_every: 0,
            parallelism: Default::default(),
            trace: false,
            telemetry: Telemetry::disabled(),
            fault: plan,
            checkpoint: Default::default(),
            engine: Default::default(),
            profile: Default::default(),
            aggregator: agg,
            quarantine_z: 0.0,
            quarantine_window: 0,
            churn: Default::default(),
            max_stale_rounds: 0,
        },
    }
}

fn attack_plan(attack: AttackModel) -> FaultPlan {
    FaultPlan {
        corrupt_rate: CORRUPT_RATE,
        attack,
        attack_scale: ATTACK_SCALE,
        ..FaultPlan::default()
    }
}

fn l2(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

fn main() {
    let (quick, _full) = parse_scale_flags();
    let check = std::env::args().any(|a| a == "--check");

    let problem = FederatedProblem::logistic_from_scenario(&tiny_problem(4, 4, 7));
    let aggregators = [
        Aggregator::Mean,
        Aggregator::TrimmedMean { beta: 0.25 },
        Aggregator::CoordinateMedian,
        Aggregator::NormClip { tau: 1.0 },
    ];
    let attacks = [
        AttackModel::SignFlip,
        AttackModel::Scale,
        AttackModel::Noise,
        AttackModel::Zero,
        AttackModel::Collude,
    ];

    let mut entries = Vec::new();
    let mut drift = std::collections::BTreeMap::new();
    for agg in &aggregators {
        // Per-aggregator honest baseline: the same defence, adversary off.
        let honest =
            HierMinimax::new(config(ROUNDS, FaultPlan::default(), *agg)).run(&problem, SEED);
        for attack in attacks {
            let r = HierMinimax::new(config(ROUNDS, attack_plan(attack), *agg)).run(&problem, SEED);
            let d = l2(&r.final_w, &honest.final_w);
            let cell = format!("{}/{}", attack.as_str(), agg.as_str());
            println!(
                "{cell:<32} drift {d:>10.4}   corrupted uploads {}",
                r.quarantine.corrupted_updates
            );
            entries.push(format!(
                "    \"{cell}\": {{ \"drift\": {d:.6}, \"corrupted\": {} }}",
                r.quarantine.corrupted_updates
            ));
            drift.insert(cell, d);
        }
    }

    let mean_d = drift["sign-flip/mean"];
    let trimmed_d = drift["sign-flip/trimmed-mean"].max(1e-12);
    let ratio = mean_d / trimmed_d;
    println!("sign-flip drift ratio mean/trimmed-mean: {ratio:.1}x");

    if check {
        let path = std::path::Path::new(RESULTS_DIR).join("BENCH_byzantine.json");
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check needs committed {}: {e}", path.display()));
        let base = committed_ratio(&committed)
            .unwrap_or_else(|| panic!("no signflip_mean_over_trimmed in {}", path.display()));
        if ratio < RESILIENCE_FLOOR {
            eprintln!("REGRESSION: ratio {ratio:.1}x below the {RESILIENCE_FLOOR}x floor");
            std::process::exit(1);
        }
        if ratio < 0.5 * base {
            eprintln!("REGRESSION: ratio {ratio:.1}x < 50% of committed {base:.1}x");
            std::process::exit(1);
        }
        println!("byzantine resilience check passed ({ratio:.1}x vs committed {base:.1}x)");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"byzantine\",\n  \"quick\": {},\n  \"corrupt_rate\": {},\n  \"signflip_mean_over_trimmed\": {:.1},\n  \"cells\": {{\n{}\n  }}\n}}\n",
        quick,
        CORRUPT_RATE,
        ratio,
        entries.join(",\n")
    );
    let path = write_result("BENCH_byzantine.json", &json);
    println!("wrote {}", path.display());
}

/// Pull `"signflip_mean_over_trimmed": <x>` out of the committed JSON (the
/// format this binary writes, so a flat substring scan suffices).
fn committed_ratio(json: &str) -> Option<f64> {
    let key = "\"signflip_mean_over_trimmed\":";
    let at = json.find(key)?;
    let num = json[at + key.len()..].trim_start();
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}
