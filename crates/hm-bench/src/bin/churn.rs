//! Membership-churn availability sweep: delivered client uploads of every
//! churn preset against the churn-free baseline, plus the re-homing vs
//! stale-fallback comparison under permanent edge failures, written as
//! machine-readable `results/BENCH_churn.json`.
//!
//! Every cell runs the same HierMinimax training job on the same seed
//! with one churn preset. The availability metric is the delivered
//! client→edge upload count (`ClientEdge` uplink messages) relative to
//! the preset-`none` run: leaves and edge failures suppress uploads,
//! joins and re-homing restore them. The headline scalar is the
//! `edge-failover` upload ratio *re-homing / stale-fallback* — the same
//! preset run twice, once with the failed edges' clients re-homed onto
//! survivors (`rehome: true`, the default) and once with them stranded
//! (`rehome: false`) — pinned to a ≥ 1.5× floor by `tests/churn.rs` and
//! re-enforced here.
//!
//! The sweep takes no timings and draws every membership transition from
//! keyed streams, so results are exactly reproducible: `--check`
//! re-measures and compares against the committed JSON with no tolerance
//! for noise, only the floor for the availability claim itself.
//!
//! Flags:
//! - `--quick`: accepted for interface symmetry with the other benches;
//!   the sweep is already CI-scale (7 short deterministic runs).
//! - `--check`: measure, then require the headline ratio to clear the
//!   availability floor (≥ 1.5×) and stay within 2× of the committed
//!   `results/BENCH_churn.json` headline, exiting non-zero otherwise
//!   (the file is left untouched).

use hm_bench::results::{parse_scale_flags, write_result, RESULTS_DIR};
use hm_core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hm_core::problem::FederatedProblem;
use hm_data::scenarios::tiny_problem;
use hm_simnet::{ChurnPlan, Link, CHURN_PRESETS};
use hm_telemetry::Telemetry;

const SEED: u64 = 23;
/// Long enough for the slow presets (15% edge-failure, 2% leave) to fire
/// reliably while staying CI-scale.
const ROUNDS: usize = 16;
/// Minimum acceptable edge-failover upload ratio (re-homing over
/// stale-fallback); the pinned oracle in `tests/churn.rs` enforces the
/// same floor.
const AVAILABILITY_FLOOR: f64 = 1.5;

fn config(plan: ChurnPlan) -> HierMinimaxConfig {
    HierMinimaxConfig {
        rounds: ROUNDS,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        eta_w: 0.05,
        eta_p: 0.01,
        batch_size: 4,
        loss_batch: 4,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts: RunOpts {
            eval_every: 0,
            parallelism: Default::default(),
            trace: false,
            telemetry: Telemetry::disabled(),
            fault: Default::default(),
            checkpoint: Default::default(),
            engine: Default::default(),
            profile: Default::default(),
            aggregator: Default::default(),
            quarantine_z: 0.0,
            quarantine_window: 0,
            churn: plan,
            max_stale_rounds: 0,
        },
    }
}

fn main() {
    let (quick, _full) = parse_scale_flags();
    let check = std::env::args().any(|a| a == "--check");

    let problem = FederatedProblem::logistic_from_scenario(&tiny_problem(4, 4, 7));

    // One cell per preset plus the stranded edge-failover baseline the
    // headline compares against.
    let mut cells: Vec<(String, ChurnPlan)> = CHURN_PRESETS
        .iter()
        .map(|&name| (name.to_string(), ChurnPlan::preset(name).unwrap()))
        .collect();
    let failover = ChurnPlan::preset("edge-failover").unwrap();
    cells.push((
        "edge-failover-stranded".to_string(),
        ChurnPlan {
            rehome: false,
            ..failover
        },
    ));

    let mut entries = Vec::new();
    let mut uploads = std::collections::BTreeMap::new();
    for (name, plan) in &cells {
        let r = HierMinimax::new(config(*plan)).run(&problem, SEED);
        let up = r.comm.uplink_msgs(Link::ClientEdge);
        let c = &r.churn;
        println!(
            "{name:<24} uploads {up:>5}   joined {:>3}  left {:>3}  edge-fail {:>2}  \
             rehomed {:>3}  stranded {:>3}",
            c.joined, c.left, c.edge_failures, c.rehomed, c.stranded
        );
        entries.push(format!(
            "    \"{name}\": {{ \"uploads\": {up}, \"joined\": {}, \"left\": {}, \
             \"edge_failures\": {}, \"rehomed\": {}, \"stranded\": {} }}",
            c.joined, c.left, c.edge_failures, c.rehomed, c.stranded
        ));
        uploads.insert(name.clone(), up);
    }

    let rehomed = uploads["edge-failover"] as f64;
    let stranded = (uploads["edge-failover-stranded"] as f64).max(1.0);
    let ratio = rehomed / stranded;
    println!("edge-failover upload ratio rehome/stranded: {ratio:.2}x");

    if check {
        let path = std::path::Path::new(RESULTS_DIR).join("BENCH_churn.json");
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check needs committed {}: {e}", path.display()));
        let base = committed_ratio(&committed)
            .unwrap_or_else(|| panic!("no rehome_over_stranded in {}", path.display()));
        if ratio < AVAILABILITY_FLOOR {
            eprintln!("REGRESSION: ratio {ratio:.2}x below the {AVAILABILITY_FLOOR}x floor");
            std::process::exit(1);
        }
        if ratio < 0.5 * base {
            eprintln!("REGRESSION: ratio {ratio:.2}x < 50% of committed {base:.2}x");
            std::process::exit(1);
        }
        println!("churn availability check passed ({ratio:.2}x vs committed {base:.2}x)");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"churn\",\n  \"quick\": {},\n  \"rounds\": {},\n  \
         \"rehome_over_stranded\": {:.2},\n  \"cells\": {{\n{}\n  }}\n}}\n",
        quick,
        ROUNDS,
        ratio,
        entries.join(",\n")
    );
    let path = write_result("BENCH_churn.json", &json);
    println!("wrote {}", path.display());
}

/// Pull `"rehome_over_stranded": <x>` out of the committed JSON (the
/// format this binary writes, so a flat substring scan suffices).
fn committed_ratio(json: &str) -> Option<f64> {
    let key = "\"rehome_over_stranded\":";
    let at = json.find(key)?;
    let num = json[at + key.len()..].trim_start();
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}
