//! Table 1 / Theorems 1–2: the communication–convergence tradeoff.
//!
//! For a fixed time-slot budget `T`, sweeping the tradeoff exponent
//! `α ∈ {0, 1/4, 1/2, 3/4}` with `τ1 τ2 = ⌈T^α⌉` must show edge-cloud
//! communication shrinking like `Θ(T^{1−α})` (exactly: the number of
//! training rounds) while the duality gap of the averaged iterate degrades
//! gently — the paper's `O(1/T^{(1−α)/2})` convex rate. `α = 0` recovers
//! Stochastic-AFL's `O(T)`-communication point; `τ2 = 1` recovers the DRFA
//! regime (Section 5 discussion).
//!
//! `--split-sweep` additionally runs the τ1/τ2-split ablation: the same
//! τ1·τ2 budget factored different ways, exposing the separate client-edge
//! and edge-cloud divergence terms of Theorem 1.

use hm_bench::results::{parse_scale_flags, write_result};
use hm_bench::table::TextTable;
use hm_core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hm_core::duality::{duality_gap, GapConfig};
use hm_core::stationarity::{moreau_grad_norm, MoreauConfig};
use hm_core::FederatedProblem;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::scenarios::one_class_per_edge;
use hm_optim::schedules::{schedule, split_tau, LossClass};
use hm_simnet::Parallelism;

fn main() {
    let (quick, _full) = parse_scale_flags();
    let split_sweep = std::env::args().any(|a| a == "--split-sweep");
    let nonconvex = std::env::args().any(|a| a == "--nonconvex");
    let total_slots: usize = if quick { 512 } else { 4096 };

    // Small convex problem so the duality gap is cheap to estimate.
    let mut cfg = ImageConfig::emnist_digits_like();
    cfg.side = 8; // d = 650 parameters
    let scenario = one_class_per_edge(cfg, 10, 3, 40, 60, 77);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);
    let gap_cfg = GapConfig {
        gd_iters: if quick { 100 } else { 250 },
        ..Default::default()
    };

    println!("Table 1 / Theorem 1 reproduction: alpha sweep at T = {total_slots} slots\n");
    let mut t = TextTable::new(vec![
        "alpha",
        "tau1 x tau2",
        "rounds K",
        "edge-cloud rounds",
        "theory comm  T^(1-a)",
        "duality gap",
        "theory rate  T^-(1-a)/2",
    ]);
    let mut csv = String::from("alpha,tau1,tau2,rounds,cloud_rounds,gap,theory_comm,theory_rate\n");

    for &alpha in &[0.0, 0.25, 0.5, 0.75] {
        let s = schedule(LossClass::Convex, total_slots, alpha, 2.0, 1.0);
        let (tau1, tau2) = split_tau(s.tau_product);
        let hm = HierMinimax::new(HierMinimaxConfig {
            rounds: s.rounds,
            tau1,
            tau2,
            m_edges: 5,
            eta_w: (s.eta_w as f32).min(0.1),
            eta_p: (s.eta_p as f32).min(0.1),
            batch_size: 2,
            loss_batch: 16,
            weight_update_model: Default::default(),
            quantizer: Default::default(),
            dropout: 0.0,
            tau2_per_edge: None,
            opts: RunOpts {
                eval_every: 0,
                parallelism: Parallelism::Rayon,
                trace: false,
                ..Default::default()
            },
        });
        let r = hm.run(&problem, 3);
        let gap = duality_gap(&problem, &r.avg_w, &r.avg_p, &gap_cfg);
        t.row(vec![
            format!("{alpha:.2}"),
            format!("{tau1} x {tau2}"),
            s.rounds.to_string(),
            r.comm.rounds(hm_simnet::Link::EdgeCloud).to_string(),
            format!("{:.0}", s.predicted_comm),
            format!("{:.4}", gap.gap),
            format!("{:.4}", s.predicted_rate),
        ]);
        csv.push_str(&format!(
            "{alpha},{tau1},{tau2},{},{},{:.6},{:.2},{:.6}\n",
            s.rounds,
            r.comm.rounds(hm_simnet::Link::EdgeCloud),
            gap.gap,
            s.predicted_comm,
            s.predicted_rate
        ));
    }
    println!("{}", t.render());
    println!(
        "expected shape: edge-cloud rounds fall ~T^(1-alpha); the gap grows slowly with alpha.\n"
    );

    if split_sweep {
        println!("tau1/tau2 split ablation at fixed tau1*tau2 = 8:\n");
        let mut st = TextTable::new(vec![
            "tau1 x tau2",
            "client-edge rounds",
            "edge-cloud rounds",
            "duality gap",
        ]);
        for (tau1, tau2) in [(8usize, 1usize), (4, 2), (2, 4), (1, 8)] {
            let rounds = total_slots / (tau1 * tau2);
            let hm = HierMinimax::new(HierMinimaxConfig {
                rounds,
                tau1,
                tau2,
                m_edges: 5,
                eta_w: 0.02,
                eta_p: 0.01,
                batch_size: 2,
                loss_batch: 16,
                weight_update_model: Default::default(),
                quantizer: Default::default(),
                dropout: 0.0,
                tau2_per_edge: None,
                opts: RunOpts {
                    eval_every: 0,
                    parallelism: Parallelism::Rayon,
                    trace: false,
                    ..Default::default()
                },
            });
            let r = hm.run(&problem, 3);
            let gap = duality_gap(&problem, &r.avg_w, &r.avg_p, &gap_cfg);
            st.row(vec![
                format!("{tau1} x {tau2}"),
                r.comm.rounds(hm_simnet::Link::ClientEdge).to_string(),
                r.comm.rounds(hm_simnet::Link::EdgeCloud).to_string(),
                format!("{:.4}", gap.gap),
            ]);
        }
        println!("{}", st.render());
        println!("Theorem 1 charges client-edge divergence ~tau1^2 and edge-cloud");
        println!("divergence ~tau1^2 tau2^2, so at fixed tau1*tau2 the bound prefers");
        println!("large tau1 / small tau2; at this scale the measured effect is small");
        println!("compared to sampling noise (all splits share the same cloud-round");
        println!("count and slot budget).\n");
    }

    if nonconvex {
        // Theorem 2: the same α-sweep with an MLP, measured by the
        // Moreau-envelope gradient norm of the averaged iterate.
        println!("Theorem 2 (non-convex) alpha sweep: Moreau-envelope gradient norm\n");
        let mlp_problem = FederatedProblem::mlp_from_scenario(&problem.scenario, &[16]);
        let m_cfg = MoreauConfig {
            lambda: 0.1,
            prox_iters: if quick { 60 } else { 150 },
            prox_lr: 0.02,
        };
        let mut nt = TextTable::new(vec![
            "alpha",
            "tau1 x tau2",
            "edge-cloud rounds",
            "moreau grad norm",
            "theory rate  T^-(1-a)/4",
        ]);
        for &alpha in &[0.0, 0.25, 0.5, 0.75] {
            let s = schedule(LossClass::NonConvex, total_slots, alpha, 20.0, 10.0);
            let (tau1, tau2) = split_tau(s.tau_product);
            let hm = HierMinimax::new(HierMinimaxConfig {
                rounds: s.rounds,
                tau1,
                tau2,
                m_edges: 5,
                eta_w: (s.eta_w as f32).min(0.1),
                eta_p: (s.eta_p as f32).min(0.05),
                batch_size: 2,
                loss_batch: 16,
                weight_update_model: Default::default(),
                quantizer: Default::default(),
                dropout: 0.0,
                tau2_per_edge: None,
                opts: RunOpts {
                    eval_every: 0,
                    parallelism: Parallelism::Rayon,
                    trace: false,
                    ..Default::default()
                },
            });
            let r = hm.run(&mlp_problem, 3);
            let norm = moreau_grad_norm(&mlp_problem, &r.avg_w, &m_cfg);
            nt.row(vec![
                format!("{alpha:.2}"),
                format!("{tau1} x {tau2}"),
                r.comm.rounds(hm_simnet::Link::EdgeCloud).to_string(),
                format!("{norm:.4}"),
                format!("{:.4}", s.predicted_rate),
            ]);
        }
        println!("{}", nt.render());
        println!("expected shape: communication falls with alpha while the envelope");
        println!("norm degrades gently (Theorem 2's O(T^(-(1-a)/4)) regime).\n");
    }

    let path = write_result("tradeoff.csv", &csv);
    println!("series written to {}", path.display());
}
