//! Round-level training throughput: full HierMinimax rounds/sec under the
//! chained execution engine vs the pre-chain barrier engine, written as
//! machine-readable `results/BENCH_roundtime.json`.
//!
//! Both engines are bit-identical (tests/determinism.rs), so this measures
//! pure scheduling overhead: the barrier engine forks and joins the thread
//! pool once per `τ2` aggregation block and allocates fresh training
//! scratch per client-block, while the chained engine runs each edge's
//! blocks as one task with pooled scratch — one fork/join per round.
//!
//! Shapes cover three regimes: `balanced` (few edges, several clients
//! each, chunky per-block work), `wide` (many edges, one client each,
//! high `τ2` — every join gates on the pool for a sliver of work), and
//! `deep` (high `τ2`, single local step, tiny model — per-round overhead
//! is almost entirely scheduling and scratch allocation).
//!
//! Flags:
//! - `--quick`: CI-scale round counts.
//! - `--check`: measure, then compare the geometric-mean engine speedup
//!   across all cases against the committed
//!   `results/BENCH_roundtime.json` and exit non-zero on a >10%
//!   regression (the file is left untouched). The aggregate is the gate —
//!   per-case numbers on a shared CI box are too noisy to gate on — but
//!   per-case results are still printed for diagnosis.

use hm_bench::results::{parse_scale_flags, write_result, RESULTS_DIR};
use hm_core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hm_core::problem::FederatedProblem;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::scenarios::{dirichlet_split, tiny_problem, HierScenario};
use hm_nn::SimpleCnn;
use hm_optim::ProjectionOp;
use hm_simnet::ExecEngine;
use hm_telemetry::{Profiler, Telemetry};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn cnn_problem(sc: &HierScenario) -> FederatedProblem {
    let side = (sc.dim as f64).sqrt() as usize;
    assert_eq!(side * side, sc.dim, "CNN needs square inputs");
    let model = SimpleCnn::new(side, 3, 2, 4, 16, sc.num_classes);
    FederatedProblem::new(
        sc.clone(),
        Arc::new(model),
        ProjectionOp::Unconstrained,
        ProjectionOp::Simplex,
    )
}

struct Case {
    name: &'static str,
    problem: FederatedProblem,
    tau1: usize,
    tau2: usize,
    m_edges: usize,
    batch: usize,
    rounds: usize,
}

fn config(case: &Case, rounds: usize, engine: ExecEngine) -> HierMinimaxConfig {
    HierMinimaxConfig {
        rounds,
        tau1: case.tau1,
        tau2: case.tau2,
        m_edges: case.m_edges,
        eta_w: 0.05,
        eta_p: 0.01,
        batch_size: case.batch,
        loss_batch: 4,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts: RunOpts {
            eval_every: 0, // only the final round is evaluated
            parallelism: Default::default(),
            trace: false,
            telemetry: Telemetry::disabled(),
            fault: Default::default(),
            checkpoint: Default::default(),
            engine,
            profile: Default::default(),
            aggregator: Default::default(),
            quarantine_z: 0.0,
            quarantine_window: 0,
            churn: Default::default(),
            max_stale_rounds: 0,
        },
    }
}

fn rounds_per_sec(case: &Case, engine: ExecEngine, reps: usize) -> f64 {
    // Warm-up run: page in data, spin up the pool, size lazy buffers.
    black_box(HierMinimax::new(config(case, 1, engine)).run(&case.problem, 11));
    let alg = HierMinimax::new(config(case, case.rounds, engine));
    // Best of `reps`: the minimum elapsed time is the least-interference
    // estimate of the engine's cost (runs are deterministic, so the work
    // is identical across repetitions).
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(alg.run(&case.problem, 11));
        best = best.min(start.elapsed().as_secs_f64());
    }
    case.rounds as f64 / best
}

/// Per-phase share of round wall-clock from one short profiled run on the
/// chained engine. Profiling is provably inert (`tests/profile.rs`) and
/// runs *outside* the timed repetitions, so the breakdown column cannot
/// disturb the geomean gate. Returns `(phase, percent-of-round)` pairs in
/// descending share order plus a final `other` remainder (scheduling,
/// bookkeeping, and measurement skew).
fn phase_breakdown(case: &Case) -> Vec<(String, f64)> {
    let rounds = case.rounds.clamp(10, 60);
    let mut cfg = config(case, rounds, ExecEngine::Chained);
    cfg.opts.profile = Profiler::enabled();
    let prof = cfg.opts.profile.clone();
    black_box(HierMinimax::new(cfg).run(&case.problem, 11));
    let summary = prof.summary();
    let round_total = summary
        .iter()
        .find(|p| p.phase == "round")
        .map_or(0.0, |p| p.total_s);
    if round_total <= 0.0 {
        return Vec::new();
    }
    let mut shares: Vec<(String, f64)> = summary
        .iter()
        .filter(|p| p.phase != "round")
        .map(|p| (p.phase.clone(), 100.0 * p.total_s / round_total))
        .collect();
    let covered: f64 = shares.iter().map(|(_, pct)| pct).sum();
    shares.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    shares.push(("other".to_string(), (100.0 - covered).max(0.0)));
    shares
}

/// Pull `"geomean_speedup": <x>` out of the committed JSON (the format
/// this binary writes, so a flat substring scan suffices).
fn committed_geomean(json: &str) -> Option<f64> {
    let key = "\"geomean_speedup\":";
    let at = json.find(key)?;
    let num = json[at + key.len()..].trim_start();
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

fn main() {
    let (quick, _full) = parse_scale_flags();
    let check = std::env::args().any(|a| a == "--check");
    // Per-rep times must be long enough to dominate timer and scheduler
    // noise, so even quick mode keeps rounds high and instead takes the
    // best of more repetitions (the gate has a 10% tolerance on top).
    let scale = if quick { 1 } else { 6 };
    let reps = if quick { 5 } else { 3 };

    let img = ImageConfig::emnist_digits_like();
    let cases = [
        Case {
            name: "logistic/balanced",
            problem: FederatedProblem::logistic_from_scenario(&tiny_problem(4, 4, 7)),
            tau1: 2,
            tau2: 4,
            m_edges: 4,
            batch: 4,
            rounds: 600 * scale,
        },
        Case {
            name: "logistic/deep",
            problem: FederatedProblem::logistic_from_scenario(&tiny_problem(4, 4, 7)),
            tau1: 1,
            tau2: 16,
            m_edges: 4,
            batch: 1,
            rounds: 200 * scale,
        },
        Case {
            name: "logistic/wide",
            problem: FederatedProblem::logistic_from_scenario(&tiny_problem(24, 1, 7)),
            tau1: 2,
            tau2: 8,
            m_edges: 24,
            batch: 4,
            rounds: 150 * scale,
        },
        Case {
            name: "mlp/balanced",
            problem: FederatedProblem::mlp_from_scenario(&tiny_problem(4, 4, 8), &[32, 16]),
            tau1: 2,
            tau2: 4,
            m_edges: 4,
            batch: 4,
            rounds: 150 * scale,
        },
        Case {
            name: "mlp/wide",
            problem: FederatedProblem::mlp_from_scenario(&tiny_problem(24, 1, 8), &[32, 16]),
            tau1: 2,
            tau2: 8,
            m_edges: 24,
            batch: 4,
            rounds: 60 * scale,
        },
        Case {
            name: "cnn/balanced",
            problem: cnn_problem(&dirichlet_split(img.clone(), 4, 4, 32, 0.5, 0.25, 9)),
            tau1: 1,
            tau2: 4,
            m_edges: 4,
            batch: 4,
            rounds: 24 * scale,
        },
        Case {
            name: "cnn/wide",
            problem: cnn_problem(&dirichlet_split(img, 16, 1, 16, 0.5, 0.25, 9)),
            tau1: 1,
            tau2: 8,
            m_edges: 16,
            batch: 4,
            rounds: 15 * scale,
        },
    ];

    let mut entries = Vec::new();
    let mut rows = Vec::new();
    for case in &cases {
        let barrier = rounds_per_sec(case, ExecEngine::Barrier, reps);
        let chained = rounds_per_sec(case, ExecEngine::Chained, reps);
        let speedup = chained / barrier;
        let phases = phase_breakdown(case);
        let phase_col = phases
            .iter()
            .map(|(tag, pct)| format!("{tag} {pct:.1}%"))
            .collect::<Vec<_>>()
            .join("  ");
        println!(
            "{:<20} chained {:>9.2} rounds/sec   barrier {:>9.2} rounds/sec   speedup {:.2}x",
            case.name, chained, barrier, speedup
        );
        println!("{:<20} phases: {phase_col}", "");
        let phase_json = phases
            .iter()
            .map(|(tag, pct)| format!("\"{tag}\": {pct:.1}"))
            .collect::<Vec<_>>()
            .join(", ");
        entries.push(format!(
            "    \"{}\": {{\n      \"rounds_per_sec_chained\": {:.2},\n      \"rounds_per_sec_barrier\": {:.2},\n      \"speedup\": {:.3},\n      \"phase_pct\": {{ {} }}\n    }}",
            case.name, chained, barrier, speedup, phase_json
        ));
        rows.push((case.name, speedup));
    }

    let geomean = (rows.iter().map(|(_, s)| s.ln()).sum::<f64>() / rows.len() as f64).exp();
    println!("geomean speedup over {} cases: {geomean:.3}x", rows.len());

    if check {
        let path = std::path::Path::new(RESULTS_DIR).join("BENCH_roundtime.json");
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check needs committed {}: {e}", path.display()));
        let base = committed_geomean(&committed)
            .unwrap_or_else(|| panic!("no geomean_speedup in {}", path.display()));
        if geomean < 0.9 * base {
            eprintln!("REGRESSION: geomean speedup {geomean:.3}x < 90% of committed {base:.3}x");
            std::process::exit(1);
        }
        println!("round-throughput check passed ({geomean:.3}x vs committed {base:.3}x)");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"roundtime\",\n  \"quick\": {},\n  \"geomean_speedup\": {:.3},\n  \"cases\": {{\n{}\n  }}\n}}\n",
        quick,
        geomean,
        entries.join(",\n")
    );
    let path = write_result("BENCH_roundtime.json", &json);
    println!("wrote {}", path.display());
}
