//! Figure 4 (§6.2): non-convex MLP training, s%-similarity split.
//!
//! Reproduces the paper's non-convex comparison: a two-hidden-layer ReLU
//! network (300/100 neurons, the paper's architecture) on the
//! Fashion-MNIST-like generator with the s = 50% similarity split, average
//! and worst test accuracy vs communication rounds for all five methods,
//! and the rounds-to-target-worst headline numbers (the paper reports
//! 21576 / 45201 / 28087 / 36445 rounds to 50% worst accuracy and FedAvg
//! never reaching it).
//!
//! Paper setting: `N_E = 10`, `N_0 = 3`, `m_E = 2`, `τ1 = τ2 = 2`, batch
//! size 8, `η_w = 0.001`, `η_p = 0.0001`. Input images are 16×16 here, so
//! `d = 108,310` instead of the paper's 266,610 (see EXPERIMENTS.md).

use hm_bench::harness::{run_suite, SuiteParams};
use hm_bench::plot::{render, Series};
use hm_bench::results::{parse_scale_flags, parse_seed, write_result};
use hm_bench::table::{fmt_pct, fmt_rounds, TextTable};
use hm_core::FederatedProblem;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::scenarios::{similarity_scenario, SimilarityOptions};
use hm_simnet::Parallelism;

fn main() {
    let (quick, full) = parse_scale_flags();
    let (total_slots, samples_per_edge, hidden, target): (usize, usize, Vec<usize>, f64) = if quick
    {
        (240, 200, vec![32, 16], 0.45)
    } else if full {
        (24_000, 800, vec![300, 100], 0.50)
    } else {
        (9_600, 400, vec![100, 50], 0.45)
    };

    let cfg = ImageConfig::fashion_mnist_like();
    // Plain s = 50% similarity split with equal edge sizes, exactly the
    // paper's §6.2 setup. (Variants with per-edge data shares, class
    // imbalance, fresh test sets, and s = 30% were tried and made the
    // non-convex differentiation weaker, not stronger — see the caveat in
    // EXPERIMENTS.md.) The outcome is sensitive to the partition
    // realization, so the suite runs over three *data* seeds and reports
    // aggregates.
    let options = SimilarityOptions::default();
    let problems: Vec<FederatedProblem> = (0..3)
        .map(|i| {
            let scenario = similarity_scenario(
                cfg.clone(),
                10,
                3,
                samples_per_edge,
                0.5,
                0.25,
                &options,
                2024 + i,
            );
            FederatedProblem::mlp_from_scenario(&scenario, &hidden)
        })
        .collect();
    let problem = &problems[0];
    let sp = SuiteParams {
        total_slots,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        eta_w: 0.05,
        eta_p: 0.003,
        batch_size: 8,
        loss_batch: 16,
        eval_every_slots: (total_slots / 60).max(4),
        parallelism: Parallelism::Rayon,
        telemetry_dir: None,
        fault: Default::default(),
        engine: Default::default(),
    };

    println!("Fig. 4 reproduction: non-convex MLP, 50% similarity split");
    println!(
        "N_E=10 N_0=3 m_E={} tau1={} tau2={} hidden={:?} d={} T={} slots, target worst acc {}\n",
        sp.m_edges,
        sp.tau1,
        sp.tau2,
        hidden,
        problem.num_params(),
        sp.total_slots,
        target
    );

    let base_seed = parse_seed(11);
    // Three independent data realizations × algorithm seeds; headline
    // numbers are medians over the three runs.
    let suites: Vec<_> = problems
        .iter()
        .enumerate()
        .map(|(i, fp)| run_suite(fp, &sp, base_seed + i as u64))
        .collect();
    let suite = &suites[0];

    let mut t = TextTable::new(vec![
        "method",
        "avg acc",
        "worst acc",
        "var (pp^2)",
        &format!("rounds to {}% worst", (target * 100.0) as u32),
    ]);
    let mut csv = String::from("method,cloud_rounds,worst,avg\n");
    let median = |mut v: Vec<Option<u64>>| -> Option<u64> {
        // Median over seeds; None (never reached) sorts last, so a method
        // that misses the target in most seeds reports "not reached".
        v.sort_by_key(|x| x.unwrap_or(u64::MAX));
        v[v.len() / 2]
    };
    for (mi, (m, r)) in suite.iter().enumerate() {
        let avg_of = |f: &dyn Fn(&hm_core::EvalReport) -> f64| -> f64 {
            suites
                .iter()
                .map(|su| f(su[mi].1.history.final_eval().expect("suite evaluates")))
                .sum::<f64>()
                / suites.len() as f64
        };
        let crossing = median(
            suites
                .iter()
                .map(|su| su[mi].1.history.cloud_rounds_to_worst_sustained(target, 3))
                .collect(),
        );
        t.row(vec![
            m.name().to_string(),
            fmt_pct(avg_of(&|e| e.average)),
            fmt_pct(avg_of(&|e| e.worst)),
            format!("{:.2}", avg_of(&|e| e.variance_pp)),
            fmt_rounds(crossing),
        ]);
        for (rounds, worst, avg) in r.history.accuracy_series() {
            csv.push_str(&format!(
                "{},{},{:.6},{:.6}\n",
                m.name(),
                rounds,
                worst,
                avg
            ));
        }
    }
    println!("{}", t.render());

    let med_crossing = |mi: usize| -> Option<u64> {
        let mut v: Vec<Option<u64>> = suites
            .iter()
            .map(|su| su[mi].1.history.cloud_rounds_to_worst_sustained(target, 3))
            .collect();
        v.sort_by_key(|x| x.unwrap_or(u64::MAX));
        v[v.len() / 2]
    };
    let hm_idx = suite
        .iter()
        .position(|(m, _)| m.name() == "HierMinimax")
        .expect("suite order");
    let hm_rounds = med_crossing(hm_idx);
    if let Some(hm) = hm_rounds {
        println!(
            "communication-overhead reduction of HierMinimax at the target (median of 3 seeds):"
        );
        for (mi, (m, _)) in suite.iter().enumerate() {
            if m.name() == "HierMinimax" {
                continue;
            }
            match med_crossing(mi) {
                Some(other) if other > 0 => println!(
                    "  vs {:<15} {:>6} rounds -> {:.0}% reduction",
                    m.name(),
                    other,
                    100.0 * (1.0 - hm as f64 / other as f64)
                ),
                _ => println!("  vs {:<15} target not reached within budget", m.name()),
            }
        }
    } else {
        println!("HierMinimax did not reach the target within the slot budget; rerun with --full.");
    }

    // ASCII figure: worst-accuracy curves of the first run.
    let chart: Vec<Series> = suite
        .iter()
        .map(|(m, r)| Series {
            label: m.name().to_string(),
            points: r
                .history
                .accuracy_series()
                .into_iter()
                .map(|(rounds, worst, _)| (rounds as f64, worst))
                .collect(),
        })
        .collect();
    println!("\nworst test accuracy vs communication rounds (first seed):\n");
    println!("{}", render(&chart, 72, 18, "cloud rounds", "worst acc"));

    let path = write_result("fig4.csv", &csv);
    println!("\nseries written to {}", path.display());
}
