//! Design-choice ablations called out in DESIGN.md §5:
//!
//! 1. **Checkpoint mechanism** — Phase 2 on the paper's uniformly random
//!    checkpoint vs two biased variants (round-final model, round-start
//!    model). The random checkpoint is what makes the weight gradient an
//!    unbiased sample of the round's trajectory (Appendix A).
//! 2. **Participation m_E** — worst-accuracy sensitivity to how many edges
//!    participate per round at a fixed slot budget.

use hm_bench::results::parse_scale_flags;
use hm_bench::table::TextTable;
use hm_core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts, WeightUpdateModel};
use hm_core::metrics::evaluate;
use hm_core::FederatedProblem;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::scenarios::{linear_sizes, one_class_per_edge_sized};
use hm_simnet::Parallelism;

fn main() {
    let (quick, _full) = parse_scale_flags();
    let rounds = if quick { 300 } else { 2000 };

    let cfg = ImageConfig::emnist_digits_like();
    let sizes = linear_sizes(60, 0.15, 10);
    let scenario = one_class_per_edge_sized(cfg, 10, 3, &sizes, 400, 2024);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);

    let base = HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 5,
        eta_w: 0.02,
        eta_p: 0.005,
        batch_size: 1,
        loss_batch: 16,
        weight_update_model: WeightUpdateModel::RandomCheckpoint,
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts: RunOpts {
            eval_every: 0,
            parallelism: Parallelism::Rayon,
            trace: false,
            ..Default::default()
        },
    };

    // The checkpoint's bias matters in proportion to how much the model
    // moves within a round, so this ablation uses long rounds (τ1 = τ2 = 4,
    // 16 slots between weight updates) and a fast weight learning rate.
    println!(
        "Ablation 1: Phase-2 model choice (tau1=tau2=4, {} rounds, mean of 3 seeds)\n",
        rounds / 2
    );
    let mut t = TextTable::new(vec!["phase-2 model", "avg acc", "worst acc", "var (pp^2)"]);
    for (label, wum) in [
        (
            "random checkpoint (paper)",
            WeightUpdateModel::RandomCheckpoint,
        ),
        ("round-final model", WeightUpdateModel::FinalModel),
        ("round-start model", WeightUpdateModel::RoundStart),
    ] {
        let mut cfg = base.clone();
        cfg.weight_update_model = wum;
        cfg.tau1 = 4;
        cfg.tau2 = 4;
        cfg.rounds = rounds / 2;
        cfg.eta_p = 0.02;
        let (mut avg, mut worst, mut var) = (0.0, 0.0, 0.0);
        for seed in 0..3u64 {
            let r = HierMinimax::new(cfg.clone()).run(&problem, 31 + seed);
            let e = evaluate(&problem, &r.final_w, Parallelism::Rayon);
            avg += e.average / 3.0;
            worst += e.worst / 3.0;
            var += e.variance_pp / 3.0;
        }
        t.row(vec![
            label.to_string(),
            format!("{avg:.4}"),
            format!("{worst:.4}"),
            format!("{var:.2}"),
        ]);
    }
    println!("{}", t.render());

    println!("Ablation 2: participation m_E at a fixed slot budget\n");
    let mut t = TextTable::new(vec!["m_E", "avg acc", "worst acc", "var (pp^2)"]);
    for m_edges in [2usize, 5, 8, 10] {
        let mut cfg = base.clone();
        cfg.m_edges = m_edges;
        let (mut avg, mut worst, mut var) = (0.0, 0.0, 0.0);
        for seed in 0..3u64 {
            let r = HierMinimax::new(cfg.clone()).run(&problem, 41 + seed);
            let e = evaluate(&problem, &r.final_w, Parallelism::Rayon);
            avg += e.average / 3.0;
            worst += e.worst / 3.0;
            var += e.variance_pp / 3.0;
        }
        t.row(vec![
            m_edges.to_string(),
            format!("{avg:.4}"),
            format!("{worst:.4}"),
            format!("{var:.2}"),
        ]);
    }
    println!("{}", t.render());
}
