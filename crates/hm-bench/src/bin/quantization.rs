//! Hier-Local-QSGD extension experiment (the paper's reference \[22\]):
//! HierMinimax with stochastic uplink quantization at 32/8/4/2 bits per
//! coordinate, reporting accuracy and total uplink floats. Expected shape
//! (matching \[22\]): moderate quantization costs little accuracy while
//! cutting uplink volume close to the bit ratio.

use hm_bench::results::{parse_scale_flags, write_result};
use hm_bench::table::TextTable;
use hm_core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hm_core::metrics::evaluate;
use hm_core::FederatedProblem;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::scenarios::{linear_sizes, one_class_per_edge_sized};
use hm_simnet::{Link, Parallelism, Quantizer};

fn main() {
    let (quick, _full) = parse_scale_flags();
    let rounds = if quick { 300 } else { 2500 };

    let cfg = ImageConfig::emnist_digits_like();
    let sizes = linear_sizes(60, 0.15, 10);
    let scenario = one_class_per_edge_sized(cfg, 10, 3, &sizes, 400, 2024);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);

    println!(
        "Quantized HierMinimax (Hier-Local-QSGD extension), {rounds} rounds, mean of 3 seeds\n"
    );
    let mut t = TextTable::new(vec![
        "uplink codec",
        "avg acc",
        "worst acc",
        "uplink floats",
        "vs exact",
    ]);
    let mut csv = String::from("bits,avg,worst,uplink_floats\n");
    let mut exact_floats = 0u64;
    for (label, q, bits) in [
        ("exact (32-bit)", Quantizer::Exact, 32u8),
        ("8-bit", Quantizer::Stochastic { bits: 8 }, 8),
        ("4-bit", Quantizer::Stochastic { bits: 4 }, 4),
        ("2-bit", Quantizer::Stochastic { bits: 2 }, 2),
    ] {
        let base = HierMinimaxConfig {
            rounds,
            tau1: 2,
            tau2: 2,
            m_edges: 5,
            eta_w: 0.02,
            eta_p: 0.005,
            batch_size: 1,
            loss_batch: 16,
            weight_update_model: Default::default(),
            quantizer: q,
            dropout: 0.0,
            tau2_per_edge: None,
            opts: RunOpts {
                eval_every: 0,
                parallelism: Parallelism::Rayon,
                trace: false,
                ..Default::default()
            },
        };
        let (mut avg, mut worst, mut floats) = (0.0, 0.0, 0u64);
        for seed in 0..3u64 {
            let r = HierMinimax::new(base.clone()).run(&problem, 51 + seed);
            let e = evaluate(&problem, &r.final_w, Parallelism::Rayon);
            avg += e.average / 3.0;
            worst += e.worst / 3.0;
            floats = r.comm.uplink_floats(Link::ClientEdge) + r.comm.uplink_floats(Link::EdgeCloud);
        }
        if q == Quantizer::Exact {
            exact_floats = floats;
        }
        t.row(vec![
            label.to_string(),
            format!("{avg:.4}"),
            format!("{worst:.4}"),
            floats.to_string(),
            format!("{:.1}x less", exact_floats as f64 / floats as f64),
        ]);
        csv.push_str(&format!("{bits},{avg:.6},{worst:.6},{floats}\n"));
    }
    println!("{}", t.render());
    let path = write_result("quantization.csv", &csv);
    println!("series written to {}", path.display());
}
