//! Table 2 (§6.3): minimax fairness and variance — HierFAVG vs HierMinimax
//! on all five datasets.
//!
//! The paper's table compares average accuracy, worst accuracy, and the
//! variance of per-edge accuracies (in percentage points squared) for
//! logistic-regression models on EMNIST-Digits, Fashion-MNIST, MNIST,
//! Adult (2 edge areas: Doctorate / non-Doctorate) and the Li et al.
//! Synthetic dataset (100 edge areas, worst-10% metric). Expected shape:
//! HierMinimax trades a little average accuracy for a much better worst
//! accuracy and an order-of-magnitude smaller variance on the harder
//! datasets.

use hm_bench::harness::{run_method, Method, SuiteParams};
use hm_bench::results::{parse_scale_flags, write_result};
use hm_bench::table::TextTable;
use hm_core::FederatedProblem;
use hm_data::generators::adult_like::AdultLikeConfig;
use hm_data::generators::li_synthetic::LiSyntheticConfig;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::scenarios::{
    adult_two_edges, li_synthetic_scenario, linear_sizes, one_class_per_edge_sized,
    similarity_scenario, SimilarityOptions,
};
use hm_simnet::Parallelism;

struct Row {
    dataset: &'static str,
    method: &'static str,
    average: f64,
    worst: f64,
    variance: f64,
}

fn suite_params(total_slots: usize, m_edges: usize, eta_w: f32, eta_p: f32) -> SuiteParams {
    SuiteParams {
        total_slots,
        tau1: 2,
        tau2: 2,
        m_edges,
        eta_w,
        eta_p,
        batch_size: 4,
        loss_batch: 16,
        eval_every_slots: usize::MAX, // final evaluation only
        parallelism: Parallelism::Rayon,
        telemetry_dir: None,
        fault: Default::default(),
        engine: Default::default(),
    }
}

fn run_pair(
    dataset: &'static str,
    problem: &FederatedProblem,
    sp: &SuiteParams,
    worst_frac: Option<f64>,
    out: &mut Vec<Row>,
) {
    for method in [Method::HierFavg, Method::HierMinimax] {
        let r = run_method(method, problem, sp, 17);
        let e = r.history.final_eval().expect("final eval");
        let worst = match worst_frac {
            Some(f) => e.worst_fraction(f),
            None => e.worst,
        };
        out.push(Row {
            dataset,
            method: method.name(),
            average: e.average,
            worst,
            variance: e.variance_pp,
        });
    }
}

fn main() {
    let (quick, full) = parse_scale_flags();
    let (slots, img_train, img_test, li_edges) = if quick {
        (400, 30, 60, 20)
    } else if full {
        (16_000, 120, 250, 100)
    } else {
        (6_000, 60, 150, 100)
    };

    let mut rows: Vec<Row> = Vec::new();

    // --- Image datasets: logistic regression, one class per edge --------
    // The Fashion/MNIST presets are tuned for the MLP experiment; for the
    // logistic Table-2 rows we keep their difficulty *ordering* but scale
    // it so the worst class stays linearly learnable (the paper's logistic
    // models reach 0.48–0.80 worst accuracy, not zero).
    let mnist_cfg = ImageConfig {
        noise: 0.4,
        prototype_overlap: 0.05,
        pair_similarity: 0.5,
        noise_spread: 0.25,
        separation_spread: 0.45,
        ..ImageConfig::emnist_digits_like()
    };
    let fashion_cfg = ImageConfig {
        noise: 0.45,
        prototype_overlap: 0.1,
        pair_similarity: 0.55,
        noise_spread: 0.3,
        separation_spread: 0.55,
        ..ImageConfig::emnist_digits_like()
    };
    let image_sets: [(&'static str, ImageConfig); 3] = [
        ("EMNIST-Digits (like)", ImageConfig::emnist_digits_like()),
        ("Fashion-MNIST (like)", fashion_cfg),
        ("MNIST (like)", mnist_cfg),
    ];
    for (name, cfg) in image_sets {
        // Same data-ratio mismatch profile as Fig. 3 (later classes are
        // harder and data-poorer).
        let sizes = linear_sizes(img_train, 0.15, 10);
        let sc = one_class_per_edge_sized(cfg, 10, 3, &sizes, img_test, 2024);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let sp = suite_params(slots, 5, 0.02, 0.005);
        println!("running {name} ...");
        run_pair(name, &fp, &sp, None, &mut rows);
    }

    // Fashion-MNIST row of Table 2 uses the harder similarity split too;
    // the paper's Table-2 image rows are one-class-per-edge logistic runs,
    // so the extra similarity row is reported separately for completeness.
    {
        let shares: Vec<f64> = (0..10).map(|e| 1.0 - 0.8 * e as f64 / 9.0).collect();
        let options = SimilarityOptions {
            class_weights: None,
            edge_shares: Some(shares),
            fresh_test_per_edge: Some(400),
        };
        let sc = similarity_scenario(
            ImageConfig::fashion_mnist_like(),
            10,
            3,
            img_train * 4,
            0.5,
            0.25,
            &options,
            2024,
        );
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let sp = suite_params(slots, 5, 0.02, 0.005);
        println!("running Fashion-MNIST s=50% (extra) ...");
        run_pair("Fashion s=50% (extra)", &fp, &sp, None, &mut rows);
    }

    // --- Adult: 2 edge areas, very different sizes ----------------------
    {
        // Full concept shift: the two groups' label models disagree on the
        // shared feature levels, so a single linear model must trade one
        // group off against the other — the conflict minimax arbitrates.
        let adult_cfg = AdultLikeConfig {
            distribution_shift: 0.3,
            concept_shift: 1.0,
            ..Default::default()
        };
        let sc = adult_two_edges(adult_cfg, 3, 900, 90, 300, 2024);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let sp = suite_params(slots, 2, 0.05, 0.005);
        println!("running Adult (like) ...");
        run_pair("Adult (like)", &fp, &sp, None, &mut rows);
    }

    // --- Synthetic (Li et al.): 100 edge areas, worst-10% ---------------
    {
        let sc = li_synthetic_scenario(LiSyntheticConfig::default(), li_edges, 2, 40, 40, 2024);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let sp = suite_params(slots, (li_edges / 10).max(2), 0.02, 0.002);
        println!("running Synthetic (Li et al.) ...");
        run_pair("Synthetic (Li)", &fp, &sp, Some(0.1), &mut rows);
    }

    println!("\nTable 2 reproduction: HierFAVG vs HierMinimax");
    println!("(Synthetic row reports worst-10% accuracy, as in the paper)\n");
    let mut t = TextTable::new(vec![
        "dataset",
        "method",
        "average",
        "worst",
        "variance (pp^2)",
    ]);
    let mut csv = String::from("dataset,method,average,worst,variance_pp\n");
    for r in &rows {
        t.row(vec![
            r.dataset.to_string(),
            r.method.to_string(),
            format!("{:.4}", r.average),
            format!("{:.4}", r.worst),
            format!("{:.4}", r.variance),
        ]);
        csv.push_str(&format!(
            "{},{},{:.6},{:.6},{:.6}\n",
            r.dataset, r.method, r.average, r.worst, r.variance
        ));
    }
    println!("{}", t.render());

    // Shape check mirroring the paper's claims.
    println!("shape checks (paper: minimax lifts worst accuracy & cuts variance):");
    for pair in rows.chunks(2) {
        let (favg, hm) = (&pair[0], &pair[1]);
        let worst_up = hm.worst >= favg.worst;
        let var_down = hm.variance <= favg.variance;
        println!(
            "  {:<22} worst {} ({:.3} vs {:.3}), variance {} ({:.2} vs {:.2})",
            favg.dataset,
            if worst_up { "improved" } else { "NOT improved" },
            hm.worst,
            favg.worst,
            if var_down { "reduced" } else { "NOT reduced" },
            hm.variance,
            favg.variance,
        );
    }

    let path = write_result("table2.csv", &csv);
    println!("\nseries written to {}", path.display());
}
