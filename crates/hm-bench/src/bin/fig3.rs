//! Figure 3 (§6.1): convex logistic regression, one class per edge area.
//!
//! Reproduces the paper's comparison of average and worst test accuracy vs
//! communication rounds for FedAvg, Stochastic-AFL, DRFA, HierFAVG and
//! HierMinimax, and prints the headline "communication rounds to reach the
//! target worst accuracy" numbers (the paper reports 8200 / 16652 / 11727 /
//! 18228 rounds and FedAvg never reaching 80%).
//!
//! Paper setting: EMNIST-Digits, `N_E = 10`, `N_0 = 3`, `m_E = 5`,
//! `τ1 = τ2 = 2`, `η_w = η_p = 0.001`, batch size 1. Here the dataset is
//! the EMNIST-like synthetic generator (16×16 images) and learning rates
//! are retuned for it; the architecture, partitioning, participation and τ
//! values match the paper (see EXPERIMENTS.md).

use hm_bench::harness::{run_suite, SuiteParams};
use hm_bench::plot::{render, Series};
use hm_bench::results::{parse_scale_flags, parse_seed, write_result};
use hm_bench::table::{fmt_pct, fmt_rounds, TextTable};
use hm_core::FederatedProblem;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::scenarios::{linear_sizes, one_class_per_edge_sized};
use hm_simnet::Parallelism;

fn main() {
    let (quick, full) = parse_scale_flags();
    // Scale: total time slots and data volume.
    let (total_slots, train_per_client, test_per_edge, target) = if quick {
        (400, 30, 60, 0.30)
    } else if full {
        (32_000, 120, 800, 0.57)
    } else {
        (12_000, 60, 500, 0.66)
    };

    let cfg = ImageConfig::emnist_digits_like();
    // Later classes are both harder (separation/noise spread) and
    // data-poorer (down to 20% of the first edge's data): the paper's
    // motivating data-ratio mismatch.
    let sizes = linear_sizes(train_per_client, 0.15, 10);
    let scenario = one_class_per_edge_sized(cfg, 10, 3, &sizes, test_per_edge, 2024);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);
    let sp = SuiteParams {
        total_slots,
        tau1: 2,
        tau2: 2,
        m_edges: 5,
        eta_w: 0.02,
        eta_p: 0.005,
        batch_size: 1,
        loss_batch: 16,
        eval_every_slots: (total_slots / 100).max(4),
        parallelism: Parallelism::Rayon,
        // --telemetry: write per-method JSONL event streams next to the
        // CSV results (results/telemetry_<method>.jsonl).
        telemetry_dir: if std::env::args().any(|a| a == "--telemetry") {
            let dir = std::path::PathBuf::from(hm_bench::results::RESULTS_DIR);
            std::fs::create_dir_all(&dir).expect("create results dir");
            Some(dir)
        } else {
            None
        },
        fault: Default::default(),
        engine: Default::default(),
    };

    println!("Fig. 3 reproduction: convex logistic regression, one class per edge");
    println!(
        "N_E=10 N_0=3 m_E={} tau1={} tau2={} T={} slots, target worst acc {}\n",
        sp.m_edges, sp.tau1, sp.tau2, sp.total_slots, target
    );

    let base_seed = parse_seed(7);
    // Three independent runs; headline numbers are medians over seeds.
    let suites: Vec<_> = (0..3)
        .map(|i| run_suite(&problem, &sp, base_seed + i))
        .collect();
    let suite = &suites[0];

    let mut t = TextTable::new(vec![
        "method",
        "avg acc",
        "worst acc",
        "var (pp^2)",
        &format!("rounds to {}% worst", (target * 100.0) as u32),
    ]);
    let mut csv = String::from("method,cloud_rounds,worst,avg\n");
    let median = |mut v: Vec<Option<u64>>| -> Option<u64> {
        // Median over seeds; None (never reached) sorts last, so a method
        // that misses the target in most seeds reports "not reached".
        v.sort_by_key(|x| x.unwrap_or(u64::MAX));
        v[v.len() / 2]
    };
    for (mi, (m, r)) in suite.iter().enumerate() {
        let avg_of = |f: &dyn Fn(&hm_core::EvalReport) -> f64| -> f64 {
            suites
                .iter()
                .map(|su| f(su[mi].1.history.final_eval().expect("suite evaluates")))
                .sum::<f64>()
                / suites.len() as f64
        };
        let crossing = median(
            suites
                .iter()
                .map(|su| su[mi].1.history.cloud_rounds_to_worst_sustained(target, 3))
                .collect(),
        );
        t.row(vec![
            m.name().to_string(),
            fmt_pct(avg_of(&|e| e.average)),
            fmt_pct(avg_of(&|e| e.worst)),
            format!("{:.2}", avg_of(&|e| e.variance_pp)),
            fmt_rounds(crossing),
        ]);
        for (rounds, worst, avg) in r.history.accuracy_series() {
            csv.push_str(&format!(
                "{},{},{:.6},{:.6}\n",
                m.name(),
                rounds,
                worst,
                avg
            ));
        }
    }
    println!("{}", t.render());

    // Headline reductions vs HierMinimax (the paper's §6.1 percentages).
    let med_crossing = |mi: usize| -> Option<u64> {
        let mut v: Vec<Option<u64>> = suites
            .iter()
            .map(|su| su[mi].1.history.cloud_rounds_to_worst_sustained(target, 3))
            .collect();
        v.sort_by_key(|x| x.unwrap_or(u64::MAX));
        v[v.len() / 2]
    };
    let hm_idx = suite
        .iter()
        .position(|(m, _)| m.name() == "HierMinimax")
        .expect("suite order");
    let hm_rounds = med_crossing(hm_idx);
    if let Some(hm) = hm_rounds {
        println!(
            "communication-overhead reduction of HierMinimax at the target (median of 3 seeds):"
        );
        for (mi, (m, _)) in suite.iter().enumerate() {
            if m.name() == "HierMinimax" {
                continue;
            }
            match med_crossing(mi) {
                Some(other) if other > 0 => println!(
                    "  vs {:<15} {:>6} rounds -> {:.0}% reduction",
                    m.name(),
                    other,
                    100.0 * (1.0 - hm as f64 / other as f64)
                ),
                _ => println!("  vs {:<15} target not reached within budget", m.name()),
            }
        }
    } else {
        println!("HierMinimax did not reach the target within the slot budget; rerun with --full.");
    }

    // ASCII figure: worst-accuracy curves of the first run.
    let chart: Vec<Series> = suite
        .iter()
        .map(|(m, r)| Series {
            label: m.name().to_string(),
            points: r
                .history
                .accuracy_series()
                .into_iter()
                .map(|(rounds, worst, _)| (rounds as f64, worst))
                .collect(),
        })
        .collect();
    println!("\nworst test accuracy vs communication rounds (first seed):\n");
    println!("{}", render(&chart, 72, 18, "cloud rounds", "worst acc"));

    let path = write_result("fig3.csv", &csv);
    println!("\nseries written to {}", path.display());
}
