//! Parameter-tuning scratch harness (not part of the reproduction output;
//! used to pick the learning-rate constants recorded in EXPERIMENTS.md).
//! Sweeps η_w × η_p for HierMinimax against the HierFAVG reference on the
//! Fig.-3 scenario and prints final average/worst accuracy and p.

use hm_bench::harness::{run_method, Method, SuiteParams};
use hm_bench::table::TextTable;
use hm_core::metrics::EvalReport;
use hm_core::FederatedProblem;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::scenarios::one_class_per_edge;
use hm_simnet::Parallelism;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let slots: usize = args
        .iter()
        .position(|a| a == "--slots")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(8000);

    let cfg = ImageConfig::emnist_digits_like();
    let scenario = one_class_per_edge(cfg, 10, 3, 60, 150, 2024);
    let problem = FederatedProblem::logistic_from_scenario(&scenario);

    let mut t = TextTable::new(vec![
        "method",
        "eta_w",
        "eta_p",
        "avg",
        "worst(mean3)",
        "worst(min3)",
        "var",
    ]);
    for &eta_w in &[0.02_f32, 0.05] {
        for &eta_p in &[0.001_f32, 0.005] {
            let sp = SuiteParams {
                total_slots: slots,
                tau1: 2,
                tau2: 2,
                m_edges: 5,
                eta_w,
                eta_p,
                batch_size: 1,
                loss_batch: 16,
                eval_every_slots: usize::MAX,
                parallelism: Parallelism::Rayon,
                telemetry_dir: None,
                fault: Default::default(),
                engine: Default::default(),
            };
            for m in Method::all() {
                let evals: Vec<EvalReport> = (0..3)
                    .map(|s| {
                        run_method(m, &problem, &sp, 7 + s)
                            .history
                            .final_eval()
                            .unwrap()
                            .clone()
                    })
                    .collect();
                let avg = evals.iter().map(|e| e.average).sum::<f64>() / 3.0;
                let worst_mean = evals.iter().map(|e| e.worst).sum::<f64>() / 3.0;
                let worst_min = evals.iter().map(|e| e.worst).fold(f64::MAX, f64::min);
                let var = evals.iter().map(|e| e.variance_pp).sum::<f64>() / 3.0;
                t.row(vec![
                    m.name().to_string(),
                    format!("{eta_w}"),
                    format!("{eta_p}"),
                    format!("{:.3}", avg),
                    format!("{:.3}", worst_mean),
                    format!("{:.3}", worst_min),
                    format!("{:.1}", var),
                ]);
            }
        }
    }
    println!("{}", t.render());
}
