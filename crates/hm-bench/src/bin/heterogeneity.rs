//! Heterogeneity sweep: how the minimax advantage scales with data skew.
//!
//! The paper fixes one heterogeneity level per experiment (one class per
//! edge in §6.1, s = 50% in §6.2). This sweep varies the level — the
//! similarity s from i.i.d. (s = 1) to fully sorted (s = 0), and the
//! Dirichlet concentration α — and reports the HierFAVG → HierMinimax
//! worst-accuracy lift and variance cut at each level. Expected shape: at
//! i.i.d. the two methods coincide (nothing to reweight); the gap opens as
//! skew grows.

use hm_bench::harness::{run_method, Method, SuiteParams};
use hm_bench::results::{parse_scale_flags, write_result};
use hm_bench::table::TextTable;
use hm_core::metrics::EvalReport;
use hm_core::FederatedProblem;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::scenarios::{dirichlet_split, similarity_split};
use hm_simnet::Parallelism;

fn pair(problem: &FederatedProblem, slots: usize) -> (EvalReport, EvalReport) {
    let sp = SuiteParams {
        total_slots: slots,
        tau1: 2,
        tau2: 2,
        m_edges: 5,
        eta_w: 0.02,
        eta_p: 0.005,
        batch_size: 1,
        loss_batch: 16,
        eval_every_slots: usize::MAX,
        parallelism: Parallelism::Rayon,
        telemetry_dir: None,
        fault: Default::default(),
        engine: Default::default(),
    };
    // Mean over three algorithm seeds: single-seed worst accuracy is noisy
    // at this scale.
    let mean3 = |method: Method| -> EvalReport {
        let evals: Vec<EvalReport> = (0..3)
            .map(|i| {
                run_method(method, problem, &sp, 7 + i)
                    .history
                    .final_eval()
                    .expect("eval")
                    .clone()
            })
            .collect();
        let n = evals[0].per_edge_accuracy.len();
        let per: Vec<f64> = (0..n)
            .map(|e| evals.iter().map(|r| r.per_edge_accuracy[e]).sum::<f64>() / 3.0)
            .collect();
        // Average the summary stats directly (worst-of-mean differs from
        // mean-of-worst; report the latter, matching the fig binaries).
        let mut rep = EvalReport::from_accuracies(per);
        rep.worst = evals.iter().map(|r| r.worst).sum::<f64>() / 3.0;
        rep.variance_pp = evals.iter().map(|r| r.variance_pp).sum::<f64>() / 3.0;
        rep
    };
    (mean3(Method::HierFavg), mean3(Method::HierMinimax))
}

/// A base task hard enough that skew matters: per-class difficulty spread
/// with moderate noise (same family as the Table 2 image rows).
fn base_cfg() -> ImageConfig {
    ImageConfig {
        noise: 0.45,
        prototype_overlap: 0.1,
        pair_similarity: 0.55,
        noise_spread: 0.3,
        separation_spread: 0.55,
        ..ImageConfig::emnist_digits_like()
    }
}

fn main() {
    let (quick, _full) = parse_scale_flags();
    let slots = if quick { 800 } else { 6000 };
    let mut csv = String::from("axis,level,favg_worst,hm_worst,favg_var,hm_var\n");

    println!("Similarity sweep (logistic, 10 edges x 3 clients, {slots} slots):\n");
    let mut t = TextTable::new(vec![
        "s",
        "worst (HierFAVG)",
        "worst (HierMinimax)",
        "var (HierFAVG)",
        "var (HierMinimax)",
    ]);
    for &s in &[1.0_f64, 0.75, 0.5, 0.25, 0.0] {
        let sc = similarity_split(base_cfg(), 10, 3, 150, s, 0.25, 77);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let (favg, hm) = pair(&fp, slots);
        t.row(vec![
            format!("{s:.2}"),
            format!("{:.3}", favg.worst),
            format!("{:.3}", hm.worst),
            format!("{:.1}", favg.variance_pp),
            format!("{:.1}", hm.variance_pp),
        ]);
        csv.push_str(&format!(
            "similarity,{s},{:.4},{:.4},{:.2},{:.2}\n",
            favg.worst, hm.worst, favg.variance_pp, hm.variance_pp
        ));
    }
    println!("{}", t.render());

    println!("Dirichlet sweep (same problem family, label split by Dir(alpha)):\n");
    let mut t = TextTable::new(vec![
        "alpha",
        "worst (HierFAVG)",
        "worst (HierMinimax)",
        "var (HierFAVG)",
        "var (HierMinimax)",
    ]);
    for &alpha in &[100.0_f64, 1.0, 0.3, 0.1] {
        let sc = dirichlet_split(base_cfg(), 10, 3, 150, alpha, 0.25, 78);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let (favg, hm) = pair(&fp, slots);
        t.row(vec![
            format!("{alpha}"),
            format!("{:.3}", favg.worst),
            format!("{:.3}", hm.worst),
            format!("{:.1}", favg.variance_pp),
            format!("{:.1}", hm.variance_pp),
        ]);
        csv.push_str(&format!(
            "dirichlet,{alpha},{:.4},{:.4},{:.2},{:.2}\n",
            favg.worst, hm.worst, favg.variance_pp, hm.variance_pp
        ));
    }
    println!("{}", t.render());
    println!("expected shape: near-identical at iid (s = 1 / large alpha); the");
    println!("minimax worst-accuracy lift and variance cut grow with skew.");

    let path = write_result("heterogeneity.csv", &csv);
    println!("\nseries written to {}", path.display());
}
