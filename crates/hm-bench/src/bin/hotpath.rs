//! Steady-state training throughput: `local_sgd` steps/sec for the three
//! model families, written as machine-readable `results/BENCH_hotpath.json`.
//!
//! Unlike the criterion benches this is a plain binary so CI can run it as
//! a smoke bench (`--quick`) and tooling can diff the JSON across commits.
//! The `baseline` block is the pre-workspace-refactor measurement recorded
//! on the reference machine; `ratio` is current / baseline.

use hm_bench::results::{parse_scale_flags, write_result};
use hm_core::localsgd::local_sgd;
use hm_core::problem::FederatedProblem;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::rng::{Purpose, StreamRng};
use hm_data::scenarios::one_class_per_edge;
use hm_data::Dataset;
use hm_nn::{Mlp, Model, MulticlassLogistic, SimpleCnn};
use hm_optim::ProjectionOp;
use std::hint::black_box;
use std::time::Instant;

/// Pre-change throughput (steps/sec): the seed `local_sgd` path measured on
/// the reference machine, averaged over full runs interleaved back-to-back
/// with the post-change binary so both see the same machine state.
const BASELINE_LOGISTIC: f64 = 57810.0;
const BASELINE_MLP: f64 = 5367.0;
const BASELINE_CNN: f64 = 4158.0;

struct Case<'a> {
    name: &'static str,
    model: &'a dyn Model,
    data: &'a Dataset,
    batch: usize,
    steps: usize,
    reps: usize,
    baseline: f64,
}

fn measure(case: &Case) -> f64 {
    let mut irng = StreamRng::new(2, Purpose::Init, 0, 0);
    let w0 = case.model.init_params(&mut irng);
    // Warm-up rep: page in data, let any lazy buffers size themselves.
    let mut rng = StreamRng::new(1, Purpose::Batch, 0, 0);
    black_box(local_sgd(
        case.model,
        case.data,
        &w0,
        case.steps,
        0.05,
        case.batch,
        &ProjectionOp::Unconstrained,
        &mut rng,
        None,
    ));
    let start = Instant::now();
    for r in 0..case.reps {
        let mut rng = StreamRng::new(1, Purpose::Batch, r as u64, 0);
        black_box(local_sgd(
            case.model,
            case.data,
            &w0,
            case.steps,
            0.05,
            case.batch,
            &ProjectionOp::Unconstrained,
            &mut rng,
            None,
        ));
    }
    let secs = start.elapsed().as_secs_f64();
    (case.steps * case.reps) as f64 / secs
}

fn main() {
    let (quick, _full) = parse_scale_flags();
    let cfg = ImageConfig::emnist_digits_like();
    let sc = one_class_per_edge(cfg, 10, 3, 40, 20, 7);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let data = fp.client_data(0, 0).clone();

    let logistic = MulticlassLogistic::new(256, 10);
    let mlp = Mlp::new(256, &[100, 50], 10);
    let cnn = SimpleCnn::new(16, 3, 4, 8, 32, 10);

    let scale = if quick { 1 } else { 10 };
    let cases = [
        Case {
            name: "logistic",
            model: &logistic,
            data: &data,
            batch: 16,
            steps: 50,
            reps: 20 * scale,
            baseline: BASELINE_LOGISTIC,
        },
        Case {
            name: "mlp",
            model: &mlp,
            data: &data,
            batch: 16,
            steps: 50,
            reps: 4 * scale,
            baseline: BASELINE_MLP,
        },
        Case {
            name: "cnn",
            model: &cnn,
            data: &data,
            batch: 8,
            steps: 10,
            reps: scale,
            baseline: BASELINE_CNN,
        },
    ];

    let mut entries = Vec::new();
    for case in &cases {
        let sps = measure(case);
        let ratio = sps / case.baseline;
        println!(
            "{:<10} {:>12.1} steps/sec   baseline {:>10.1}   ratio {:.2}x",
            case.name, sps, case.baseline, ratio
        );
        entries.push(format!(
            "    \"{}\": {{\n      \"steps_per_sec\": {:.1},\n      \"baseline_steps_per_sec\": {:.1},\n      \"ratio\": {:.3}\n    }}",
            case.name, sps, case.baseline, ratio
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"quick\": {},\n  \"models\": {{\n{}\n  }}\n}}\n",
        quick,
        entries.join(",\n")
    );
    let path = write_result("BENCH_hotpath.json", &json);
    println!("wrote {}", path.display());
}
