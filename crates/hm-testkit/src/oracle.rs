//! Reference (differential-testing) implementations.
//!
//! Deliberately naive, allocation-heavy, obviously-correct transcriptions
//! of one HierMinimax round (Algorithm 1) and of the flat FedAvg/DRFA
//! round shapes, written straight from the paper's pseudocode. They share
//! only the substrate the protocol itself is defined over — the keyed RNG
//! streams, the model's loss/gradient oracle, and the projection operators
//! — and re-derive everything the optimized `hm-core::algorithms` path
//! does cleverly: multiplicity counting, survivor bookkeeping, scratch
//! reuse, fused projected steps, workspace-based gradients.
//!
//! The contract is **bit-identical** per-round iterates: the optimized run
//! emits `GlobalModel`/`WeightUpdate` trace events, and the differential
//! tests (`tests/oracle_diff.rs`) assert `==` on `f32` vectors, not
//! approximate closeness. The floating-point contracts that make this
//! possible are part of the workspace's determinism policy (DESIGN.md §7):
//! aggregation accumulates per-coordinate in `f64` over sources in index
//! order, and each SGD step is an `axpy` followed by a projection.

use hm_core::algorithms::{DrfaConfig, FedAvgConfig, HierMinimaxConfig, WeightUpdateModel};
use hm_core::problem::FederatedProblem;
use hm_data::batch::sample_batch;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_data::Dataset;
use hm_nn::Model;
use hm_optim::{Projection, ProjectionOp};
use hm_simnet::Quantizer;

/// The iterates a reference round produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceRound {
    /// The aggregated global model `w^{(k+1)}` (eq. 5).
    pub w: Vec<f32>,
    /// The updated edge weights `p^{(k+1)}` (eq. 7).
    pub p: Vec<f32>,
    /// The aggregated checkpoint model `w^{(k,c2,c1)}` (eq. 6).
    pub w_checkpoint: Vec<f32>,
}

/// The initial model `w^(0)` every algorithm draws from the `Init` stream.
pub fn reference_init_w(problem: &FederatedProblem, seed: u64) -> Vec<f32> {
    problem
        .model
        .init_params(&mut StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::Init,
            0,
            0,
        )))
}

/// Plain mean of vectors: per-coordinate `f64` accumulation in source
/// order, cast to `f32` — the aggregation contract of eq. (5).
fn naive_mean(sources: &[&[f32]]) -> Vec<f32> {
    assert!(!sources.is_empty());
    let n = sources.len() as f64;
    (0..sources[0].len())
        .map(|i| {
            let mut acc = 0.0_f64;
            for s in sources {
                acc += f64::from(s[i]);
            }
            (acc / n) as f32
        })
        .collect()
}

/// Weighted mean `out_i = Σ_j weight_j · source_j[i]`, same contract.
fn naive_weighted_mean(sources: &[&[f32]], weights: &[f64]) -> Vec<f32> {
    assert_eq!(sources.len(), weights.len());
    assert!(!sources.is_empty());
    (0..sources[0].len())
        .map(|i| {
            let mut acc = 0.0_f64;
            for (s, &wt) in sources.iter().zip(weights) {
                acc += wt * f64::from(s[i]);
            }
            acc as f32
        })
        .collect()
}

/// Multiplicity counting of a with-replacement sample, first-seen order.
fn naive_multiplicities(sampled: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut distinct: Vec<usize> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for &e in sampled {
        if let Some(i) = distinct.iter().position(|&x| x == e) {
            counts[i] += 1;
        } else {
            distinct.push(e);
            counts.push(1);
        }
    }
    (distinct, counts)
}

/// One projected descent step of eq. (4), the unfused two-phase form:
/// `w ← Π_W(w − η g)`.
fn naive_descent_step(w: &mut [f32], grad: &[f32], lr: f32, proj: &ProjectionOp) {
    for (wi, &g) in w.iter_mut().zip(grad) {
        *wi += -lr * g;
    }
    proj.project(w);
}

/// What one client's local run produces: the final model and, if a
/// checkpoint step was requested, the model snapshot taken there.
type ClientIterates = (Vec<f32>, Option<Vec<f32>>);

/// Client-side local SGD: fresh allocations every step, the legacy
/// (workspace-free) gradient path, optional checkpoint after `c` steps.
#[allow(clippy::too_many_arguments)]
fn naive_local_sgd(
    model: &dyn Model,
    data: &Dataset,
    w0: &[f32],
    steps: usize,
    lr: f32,
    batch_size: usize,
    proj: &ProjectionOp,
    rng: &mut StreamRng,
    checkpoint_after: Option<usize>,
) -> ClientIterates {
    let mut w = w0.to_vec();
    let mut checkpoint = if checkpoint_after == Some(0) {
        Some(w.clone())
    } else {
        None
    };
    for step in 0..steps {
        let batch = sample_batch(data, batch_size, rng);
        let mut grad = vec![0.0_f32; model.num_params()];
        model.loss_grad(&w, &batch, &mut grad);
        naive_descent_step(&mut w, &grad, lr, proj);
        if checkpoint_after == Some(step + 1) {
            checkpoint = Some(w.clone());
        }
    }
    (w, checkpoint)
}

/// The upload codec: quantize the delta against `base`, reconstruct.
fn naive_quantize_delta(q: &Quantizer, base: &[f32], v: &mut [f32], rng: &mut StreamRng) {
    for (x, &b) in v.iter_mut().zip(base) {
        *x -= b;
    }
    q.apply(v, rng);
    for (x, &b) in v.iter_mut().zip(base) {
        *x += b;
    }
}

/// A client's mini-batch loss estimate (Phase-2 `LossEstimation`).
fn naive_estimate_loss(
    model: &dyn Model,
    data: &Dataset,
    w: &[f32],
    batch_size: usize,
    rng: &mut StreamRng,
) -> f64 {
    let batch = sample_batch(data, batch_size, rng);
    model.loss(w, &batch)
}

/// Whether a client survives a block, replaying the dedicated dropout
/// stream (`dropout == 0` short-circuits without a draw, as the protocol
/// does).
fn survives(seed: u64, round: usize, tau2: usize, t2: usize, client: usize, dropout: f32) -> bool {
    if dropout == 0.0 {
        return true;
    }
    let mut drng = StreamRng::for_key(StreamKey::new(
        seed,
        Purpose::Dropout,
        (round * tau2 + t2) as u64,
        client as u64,
    ));
    drng.uniform() >= f64::from(dropout)
}

/// One full HierMinimax round (Algorithm 1, Phases 1 and 2), transcribed
/// naively. `w`/`p` are the round-start iterates `w^(k)` / `p^(k)`.
///
/// # Panics
/// Panics on heterogeneous `tau2_per_edge` configs (not modelled here).
pub fn reference_hierminimax_round(
    problem: &FederatedProblem,
    cfg: &HierMinimaxConfig,
    seed: u64,
    k: usize,
    w: &[f32],
    p: &[f32],
) -> ReferenceRound {
    assert!(
        cfg.tau2_per_edge.is_none(),
        "reference round models homogeneous rates only"
    );
    let n_edges = problem.num_edges();
    let n0 = problem.clients_per_edge();
    let topo = problem.topology();
    let model = &*problem.model;

    // Phase 1 (a): sample E^(k) ∝ p^(k) with replacement, and (c1, c2)
    // uniform on [τ1] × [τ2].
    let mut e_rng = StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
    let p64: Vec<f64> = p.iter().map(|&x| f64::from(x).max(0.0)).collect();
    let sampled = e_rng.sample_weighted_with_replacement(&p64, cfg.m_edges);
    let mut c_rng = StreamRng::for_key(StreamKey::new(seed, Purpose::Checkpoint, k as u64, 0));
    let c1 = c_rng.below(cfg.tau1);
    let c2 = c_rng.below(cfg.tau2);
    let (distinct, counts) = naive_multiplicities(&sampled);

    // Phase 1 (b): ModelUpdate at every distinct sampled edge — τ2 blocks
    // of τ1 local steps, averaging survivors per block, checkpoint in
    // block c2.
    let mut edge_models: Vec<Vec<f32>> = distinct.iter().map(|_| w.to_vec()).collect();
    let mut edge_cps: Vec<Option<Vec<f32>>> = vec![None; distinct.len()];
    for t2 in 0..cfg.tau2 {
        let cp_after = (t2 == c2).then_some(c1);
        for (ei, &e) in distinct.iter().enumerate() {
            let base = edge_models[ei].clone();
            let mut outs: Vec<Option<ClientIterates>> = Vec::new();
            for c in 0..n0 {
                let client = topo.client_id(e, c);
                if !survives(seed, k, cfg.tau2, t2, client, cfg.dropout) {
                    outs.push(None);
                    continue;
                }
                let mut rng = StreamRng::for_key(StreamKey::new(
                    seed,
                    Purpose::Batch,
                    (k * cfg.tau2 + t2) as u64,
                    client as u64,
                ));
                let (mut w_out, mut cp_out) = naive_local_sgd(
                    model,
                    problem.client_data(e, c),
                    &base,
                    cfg.tau1,
                    cfg.eta_w,
                    cfg.batch_size,
                    &problem.w_domain,
                    &mut rng,
                    cp_after,
                );
                if cfg.quantizer != Quantizer::Exact {
                    let mut qrng = StreamRng::for_key(StreamKey::new(
                        seed,
                        Purpose::Quantize,
                        (k * cfg.tau2 + t2) as u64,
                        client as u64,
                    ));
                    naive_quantize_delta(&cfg.quantizer, &base, &mut w_out, &mut qrng);
                    if let Some(cp) = cp_out.as_mut() {
                        naive_quantize_delta(&cfg.quantizer, &base, cp, &mut qrng);
                    }
                }
                outs.push(Some((w_out, cp_out)));
            }
            let survivors: Vec<&[f32]> = outs
                .iter()
                .filter_map(|o| o.as_ref().map(|(wc, _)| wc.as_slice()))
                .collect();
            if survivors.is_empty() {
                // Total blackout: the edge keeps its block-start model.
                continue;
            }
            edge_models[ei] = naive_mean(&survivors);
            if t2 == c2 {
                let cps: Vec<&[f32]> = outs
                    .iter()
                    .filter_map(|o| {
                        o.as_ref()
                            .map(|(_, cp)| cp.as_deref().expect("checkpoint block"))
                    })
                    .collect();
                edge_cps[ei] = Some(naive_mean(&cps));
            }
        }
    }
    // An edge that lost every client during block c2 falls back to its
    // final model as the checkpoint.
    let mut edge_cps: Vec<Vec<f32>> = edge_cps
        .into_iter()
        .enumerate()
        .map(|(ei, cp)| cp.unwrap_or_else(|| edge_models[ei].clone()))
        .collect();

    // Edge → cloud codec: deltas against the round's broadcast model.
    if cfg.quantizer != Quantizer::Exact {
        for (ei, &e) in distinct.iter().enumerate() {
            let mut qrng = StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::Quantize,
                k as u64,
                1_000_000 + e as u64,
            ));
            naive_quantize_delta(&cfg.quantizer, w, &mut edge_models[ei], &mut qrng);
            naive_quantize_delta(&cfg.quantizer, w, &mut edge_cps[ei], &mut qrng);
        }
    }

    // Cloud aggregation over the m_E sampled slots (eqs. 5–6).
    let weights: Vec<f64> = counts
        .iter()
        .map(|&c| c as f64 / cfg.m_edges as f64)
        .collect();
    let finals: Vec<&[f32]> = edge_models.iter().map(|v| v.as_slice()).collect();
    let w_next = naive_weighted_mean(&finals, &weights);
    let cps: Vec<&[f32]> = edge_cps.iter().map(|v| v.as_slice()).collect();
    let w_checkpoint = naive_weighted_mean(&cps, &weights);

    // Phase 2: uniform U^(k), per-edge loss estimates on the checkpoint
    // (or an ablation model), importance-weighted ascent (eq. 7).
    let w_phase2: &[f32] = match cfg.weight_update_model {
        WeightUpdateModel::RandomCheckpoint => &w_checkpoint,
        WeightUpdateModel::FinalModel => &w_next,
        WeightUpdateModel::RoundStart => w,
    };
    let mut u_rng = StreamRng::for_key(StreamKey::new(
        seed,
        Purpose::LossEstSampling,
        k as u64,
        u64::MAX,
    ));
    let u_set = u_rng.sample_without_replacement(n_edges, cfg.m_edges);
    let mut v = vec![0.0_f32; n_edges];
    let scale = n_edges as f64 / cfg.m_edges as f64;
    for &e in &u_set {
        let mut total = 0.0_f64;
        for c in 0..n0 {
            let client = topo.client_id(e, c);
            let mut rng = StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::LossEstSampling,
                k as u64,
                client as u64,
            ));
            total += naive_estimate_loss(
                model,
                problem.client_data(e, c),
                w_phase2,
                cfg.loss_batch,
                &mut rng,
            );
        }
        let fe = total / n0 as f64;
        v[e] = (scale * fe) as f32;
    }
    let mut p_next = p.to_vec();
    let lr = cfg.eta_p * (cfg.tau1 * cfg.tau2) as f32;
    for (pi, &vi) in p_next.iter_mut().zip(&v) {
        *pi += lr * vi;
    }
    problem.p_domain.project(&mut p_next);

    ReferenceRound {
        w: w_next,
        p: p_next,
        w_checkpoint,
    }
}

/// A full reference HierMinimax run: per-round iterates starting from the
/// `Init`-stream model and the uniform `p^(0)`.
pub fn reference_hierminimax_run(
    problem: &FederatedProblem,
    cfg: &HierMinimaxConfig,
    seed: u64,
) -> Vec<ReferenceRound> {
    let mut w = reference_init_w(problem, seed);
    let mut p = problem.initial_p();
    (0..cfg.rounds)
        .map(|k| {
            let r = reference_hierminimax_round(problem, cfg, seed, k, &w, &p);
            w = r.w.clone();
            p = r.p.clone();
            r
        })
        .collect()
}

/// One FedAvg round: uniform client sample, `τ1` local steps each, cloud
/// average weighted by local data size. Returns `w^{(k+1)}`.
pub fn reference_fedavg_round(
    problem: &FederatedProblem,
    cfg: &FedAvgConfig,
    seed: u64,
    k: usize,
    w: &[f32],
) -> Vec<f32> {
    let topo = problem.topology();
    let n = topo.total_clients();
    let mut s_rng = StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
    let sampled = s_rng.sample_without_replacement(n, cfg.m_clients);
    let results: Vec<Vec<f32>> = sampled
        .iter()
        .map(|&client| {
            let mut rng = StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::Batch,
                k as u64,
                client as u64,
            ));
            let (edge, idx) = (topo.edge_of(client), client % topo.clients_per_edge());
            naive_local_sgd(
                &*problem.model,
                problem.client_data(edge, idx),
                w,
                cfg.tau1,
                cfg.eta_w,
                cfg.batch_size,
                &problem.w_domain,
                &mut rng,
                None,
            )
            .0
        })
        .collect();
    let sizes: Vec<f64> = sampled
        .iter()
        .map(|&client| {
            let (edge, idx) = (topo.edge_of(client), client % topo.clients_per_edge());
            problem.client_data(edge, idx).len() as f64
        })
        .collect();
    let total: f64 = sizes.iter().sum();
    let weights: Vec<f64> = sizes.iter().map(|s| s / total).collect();
    let models: Vec<&[f32]> = results.iter().map(|m| m.as_slice()).collect();
    naive_weighted_mean(&models, &weights)
}

/// One DRFA round: clients sampled ∝ `q` run `τ1` steps with a checkpoint
/// at the uniform `t' ∈ [τ1]`; a second uniform set evaluates the
/// checkpoint and `q ← Π_Δ(q + η_q τ1 v)`. Returns `(w^{(k+1)},
/// q^{(k+1)}, p_edge)` where `p_edge` is `q` collapsed per edge area (the
/// vector DRFA's `WeightUpdate` trace event carries).
pub fn reference_drfa_round(
    problem: &FederatedProblem,
    cfg: &DrfaConfig,
    seed: u64,
    k: usize,
    w: &[f32],
    q: &[f32],
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let topo = problem.topology();
    let n = topo.total_clients();
    let shard = |client: usize| -> &Dataset {
        problem.client_data(topo.edge_of(client), client % topo.clients_per_edge())
    };

    let mut e_rng = StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
    let q64: Vec<f64> = q.iter().map(|&x| f64::from(x).max(0.0)).collect();
    let sampled = e_rng.sample_weighted_with_replacement(&q64, cfg.m_clients);
    let (distinct, counts) = naive_multiplicities(&sampled);
    let mut c_rng = StreamRng::for_key(StreamKey::new(seed, Purpose::Checkpoint, k as u64, 0));
    let t_prime = c_rng.below(cfg.tau1);

    let results: Vec<ClientIterates> = distinct
        .iter()
        .map(|&client| {
            let mut rng = StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::Batch,
                k as u64,
                client as u64,
            ));
            naive_local_sgd(
                &*problem.model,
                shard(client),
                w,
                cfg.tau1,
                cfg.eta_w,
                cfg.batch_size,
                &problem.w_domain,
                &mut rng,
                Some(t_prime),
            )
        })
        .collect();
    let weights: Vec<f64> = counts
        .iter()
        .map(|&c| c as f64 / cfg.m_clients as f64)
        .collect();
    let models: Vec<&[f32]> = results.iter().map(|(m, _)| m.as_slice()).collect();
    let w_next = naive_weighted_mean(&models, &weights);
    let cps: Vec<&[f32]> = results
        .iter()
        .map(|(_, cp)| cp.as_deref().expect("drfa checkpoint"))
        .collect();
    let w_checkpoint = naive_weighted_mean(&cps, &weights);

    let mut u_rng = StreamRng::for_key(StreamKey::new(
        seed,
        Purpose::LossEstSampling,
        k as u64,
        u64::MAX,
    ));
    let u_set = u_rng.sample_without_replacement(n, cfg.m_clients);
    let mut v = vec![0.0_f32; n];
    let scale = n as f64 / cfg.m_clients as f64;
    for &client in &u_set {
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::LossEstSampling,
            k as u64,
            client as u64,
        ));
        let l = naive_estimate_loss(
            &*problem.model,
            shard(client),
            &w_checkpoint,
            cfg.loss_batch,
            &mut rng,
        );
        v[client] = (scale * l) as f32;
    }
    let mut q_next = q.to_vec();
    let lr = cfg.eta_q * cfg.tau1 as f32;
    for (qi, &vi) in q_next.iter_mut().zip(&v) {
        *qi += lr * vi;
    }
    ProjectionOp::Simplex.project(&mut q_next);

    // Per-edge collapse, f32 accumulation in client order (the recording
    // convention of `flat_common::q_to_edge_p`).
    let mut p_edge = vec![0.0_f32; problem.num_edges()];
    for (client, &qc) in q_next.iter().enumerate() {
        p_edge[topo.edge_of(client)] += qc;
    }
    (w_next, q_next, p_edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;

    #[test]
    fn naive_mean_matches_vecops_contract() {
        let a = vec![0.1_f32, -2.5, 3.125];
        let b = vec![1.0_f32, 0.5, -0.25];
        let got = naive_mean(&[&a, &b]);
        let mut want = vec![0.0_f32; 3];
        hm_tensor::vecops::average_into(&[&a, &b], &mut want);
        assert_eq!(got, want);

        let got = naive_weighted_mean(&[&a, &b], &[0.75, 0.25]);
        let mut want = vec![0.0_f32; 3];
        hm_tensor::vecops::weighted_average_into(&[&a, &b], &[0.75, 0.25], &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn naive_multiplicities_first_seen_order() {
        let (d, c) = naive_multiplicities(&[3, 1, 3, 3, 0]);
        assert_eq!(d, vec![3, 1, 0]);
        assert_eq!(c, vec![3, 1, 1]);
    }

    #[test]
    fn naive_descent_matches_fused_step() {
        let g = vec![1.0_f32, -0.5, 0.25, 3.0];
        for proj in [
            ProjectionOp::Unconstrained,
            ProjectionOp::L2Ball { radius: 0.1 },
            ProjectionOp::Box {
                lo: -0.05,
                hi: 0.05,
            },
        ] {
            let mut a = vec![0.1_f32, 0.2, -0.3, 0.4];
            let mut b = a.clone();
            naive_descent_step(&mut a, &g, 0.37, &proj);
            hm_optim::sgd::projected_sgd_step(&mut b, &g, 0.37, &proj);
            assert_eq!(a, b, "{proj:?}");
        }
    }

    #[test]
    fn reference_round_is_deterministic() {
        let sc = tiny_problem(3, 2, 11);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let cfg = HierMinimaxConfig {
            rounds: 2,
            ..Default::default()
        };
        let a = reference_hierminimax_run(&fp, &cfg, 7);
        let b = reference_hierminimax_run(&fp, &cfg, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        // p stays a distribution.
        let sum: f32 = a[1].p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }
}
