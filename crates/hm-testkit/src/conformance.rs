//! Trace conformance checking: an executable model of Algorithm 1.
//!
//! A checker replays the protocol alongside a recorded
//! [`hm_simnet::trace::Event`] log and validates, round by round:
//!
//! - **Phase ordering** — events appear in exactly the order the paper's
//!   pseudocode prescribes (Phase-1 sampling → checkpoint draw → broadcast
//!   → `τ2` blocks of local steps and aggregations → cloud aggregation →
//!   Phase-2 sampling → weight update → comm accounting).
//! - **Sampling replay** — the Phase-1 multiset is re-drawn from the keyed
//!   `EdgeSampling` stream proportionally to the *traced* `p^(k)`, the
//!   checkpoint from the `Checkpoint` stream, and the Phase-2 set from the
//!   `LossEstSampling` stream; the log must match the replay exactly.
//! - **Checkpoint bounds** — `(c1, c2) ∈ [τ1] × [τ2]`, checked before the
//!   equality so an off-by-one surfaces as
//!   [`ConformanceError::CheckpointOutOfRange`].
//! - **Participation structure** — which clients perform local steps in
//!   each block is re-derived from the keyed `Dropout` stream (replicating
//!   the `dropout == 0` no-draw fast path), and per-edge aggregation /
//!   checkpoint-capture events must match the survivor sets.
//! - **Fault replay** — the run's [`hm_simnet::FaultPlan`] streams
//!   (edge outages, per-channel message loss with bounded retries, client
//!   crashes and straggler deadlines) are re-drawn alongside the log:
//!   every injected fault must appear as an [`Event::EdgeFault`] in
//!   protocol order with the replayed kind and attempt count, broadcast
//!   recipients must equal the post-outage active set, and survivor-only
//!   participation must match the delivery replay. A fully-failed round
//!   must still emit its aggregation events (the stale-round path).
//! - **Adversary replay** — when the plan has a Byzantine adversary
//!   (`corrupt_rate > 0`), the per-round corrupted-upload count is
//!   re-drawn from the keyed `Adversary` stream over the surviving slots
//!   of every block, and the round's [`Event::AdversaryRound`] must carry
//!   exactly that count and the plan's attack tag. Honest traces must not
//!   contain the event at all, so a forged adversary record is rejected
//!   just like a forged fault.
//! - **Churn replay** — when the run has an active
//!   [`hm_simnet::ChurnPlan`], the checker maintains its own
//!   [`ActiveTopology`] mirror and re-derives every round's membership
//!   transitions (leaves, joins, edge failures and the deterministic
//!   re-homing moves) from the keyed `Churn` stream; the round's
//!   [`Event::ChurnRound`] must match the replay exactly, so a forged
//!   leave, join or re-homing move is rejected. The mirror's member
//!   lists drive the participation, fault and comm models below, and
//!   the tracked `p` is re-projected onto the surviving simplex exactly
//!   like the run whenever an edge fails.
//! - **Communication accounting** — every [`Event::RoundComm`] delta is
//!   compared counter-by-counter against a closed-form model of the
//!   round's float/message/round costs on all three links, including the
//!   per-attempt retransmission costs of retried and given-up deliveries.
//! - **Feasibility** — every [`Event::WeightUpdate`] iterate must lie in
//!   the constrained set `P` (via
//!   [`ProjectionOp::feasibility_violation`]), and every
//!   [`Event::GlobalModel`] must be finite and of dimension `d`.
//!
//! The multi-level checker validates the cloud-level protocol (sampling,
//! checkpoint, aggregation order, exact comm accounting including the
//! recursive intermediate-level costs); client-level events of inner
//! subtrees are keyed by position tags rather than the round index and are
//! deliberately skipped.

use hm_core::algorithms::{HierFavgConfig, HierMinimaxConfig, MultiLevelConfig};
use hm_core::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_simnet::sampling::{sample_checkpoint, sample_edges_uniform, sample_edges_weighted};
use hm_simnet::trace::Event;
use hm_simnet::{
    ActiveTopology, ChurnPlan, CommStats, FaultKind, FaultPlan, Link, MsgChannel, RoundChurn,
    StragglerFate,
};
use std::fmt;

/// Feasibility slack for traced weight iterates: the projections are exact
/// up to f32 rounding, so anything beyond this is a protocol violation,
/// not noise.
const FEASIBILITY_TOL: f64 = 1e-4;

/// A violation found while replaying a trace against the protocol model.
#[derive(Debug, Clone, PartialEq)]
pub enum ConformanceError {
    /// The log ended while the model still expected an event.
    TraceEnded {
        /// Round being checked.
        round: usize,
        /// The event kind the model expected next.
        expected: &'static str,
    },
    /// The next event was not the one the protocol prescribes here.
    UnexpectedEvent {
        /// Round being checked.
        round: usize,
        /// The event kind the model expected.
        expected: &'static str,
        /// Debug rendering of the event actually found.
        actual: String,
    },
    /// A sampled id set differs from the keyed-stream replay.
    SamplingMismatch {
        /// Round being checked.
        round: usize,
        /// Which draw: `"phase1"` or `"phase2"`.
        phase: &'static str,
        /// The replayed (correct) sample.
        expected: Vec<usize>,
        /// The traced sample.
        actual: Vec<usize>,
    },
    /// A checkpoint index left `[τ1] × [τ2]`.
    CheckpointOutOfRange {
        /// Round being checked.
        round: usize,
        /// Traced local-step index.
        c1: usize,
        /// Traced block index.
        c2: usize,
        /// Local steps per block.
        tau1: usize,
        /// Blocks per round.
        tau2: usize,
    },
    /// A checkpoint index differs from the keyed-stream replay.
    CheckpointMismatch {
        /// Round being checked.
        round: usize,
        /// The replayed (correct) index.
        expected: (usize, usize),
        /// The traced index.
        actual: (usize, usize),
    },
    /// Broadcast recipients differ from the distinct sampled ids.
    BroadcastMismatch {
        /// Round being checked.
        round: usize,
        /// Expected recipients (first-seen order).
        expected: Vec<usize>,
        /// Traced recipients.
        actual: Vec<usize>,
    },
    /// A local-step event contradicts the survivor replay.
    LocalStepsMismatch {
        /// Round being checked.
        round: usize,
        /// Block index within the round.
        t2: usize,
        /// What went wrong.
        detail: String,
    },
    /// An aggregation / checkpoint-capture event is out of order or
    /// attributed to the wrong edge.
    AggregationMismatch {
        /// Round being checked.
        round: usize,
        /// What went wrong.
        detail: String,
    },
    /// A global model iterate has the wrong dimension or non-finite
    /// entries.
    BadModel {
        /// Round being checked.
        round: usize,
        /// What went wrong.
        detail: String,
    },
    /// A weight iterate lies outside the constrained set `P`.
    InfeasibleWeights {
        /// Round being checked.
        round: usize,
        /// Largest constraint violation.
        violation: f64,
    },
    /// An injected-fault event contradicts the keyed fault-stream replay
    /// (wrong kind, wrong entity, wrong attempt count, or missing).
    FaultMismatch {
        /// Round being checked.
        round: usize,
        /// What went wrong.
        detail: String,
    },
    /// A per-round communication counter differs from the closed form.
    CommMismatch {
        /// Round being checked.
        round: usize,
        /// Link the counter lives on.
        link: &'static str,
        /// Counter name.
        counter: &'static str,
        /// Closed-form value.
        expected: u64,
        /// Traced value.
        actual: u64,
    },
    /// A membership-churn event contradicts the keyed churn-stream replay
    /// (forged leave/join/failure/re-homing move, or missing event).
    ChurnMismatch {
        /// Round being checked.
        round: usize,
        /// What went wrong.
        detail: String,
    },
    /// Events remained after the final round's accounting.
    TrailingEvents {
        /// Number of leftover events.
        count: usize,
    },
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TraceEnded { round, expected } => {
                write!(f, "round {round}: trace ended, expected {expected}")
            }
            Self::UnexpectedEvent {
                round,
                expected,
                actual,
            } => write!(f, "round {round}: expected {expected}, found {actual}"),
            Self::SamplingMismatch {
                round,
                phase,
                expected,
                actual,
            } => write!(
                f,
                "round {round}: {phase} sample {actual:?} != replay {expected:?}"
            ),
            Self::CheckpointOutOfRange {
                round,
                c1,
                c2,
                tau1,
                tau2,
            } => write!(
                f,
                "round {round}: checkpoint ({c1}, {c2}) outside [{tau1}]x[{tau2}]"
            ),
            Self::CheckpointMismatch {
                round,
                expected,
                actual,
            } => write!(
                f,
                "round {round}: checkpoint {actual:?} != replay {expected:?}"
            ),
            Self::BroadcastMismatch {
                round,
                expected,
                actual,
            } => write!(
                f,
                "round {round}: broadcast to {actual:?}, expected {expected:?}"
            ),
            Self::LocalStepsMismatch { round, t2, detail } => {
                write!(f, "round {round} block {t2}: {detail}")
            }
            Self::AggregationMismatch { round, detail } => {
                write!(f, "round {round}: {detail}")
            }
            Self::BadModel { round, detail } => write!(f, "round {round}: {detail}"),
            Self::InfeasibleWeights { round, violation } => {
                write!(f, "round {round}: weights violate P by {violation}")
            }
            Self::FaultMismatch { round, detail } => {
                write!(f, "round {round}: {detail}")
            }
            Self::CommMismatch {
                round,
                link,
                counter,
                expected,
                actual,
            } => write!(
                f,
                "round {round}: {link} {counter} = {actual}, expected {expected}"
            ),
            Self::ChurnMismatch { round, detail } => {
                write!(f, "round {round}: {detail}")
            }
            Self::TrailingEvents { count } => {
                write!(f, "{count} trailing events after the final round")
            }
        }
    }
}

impl std::error::Error for ConformanceError {}

/// Summary of a successful conformance check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConformanceReport {
    /// Training rounds validated.
    pub rounds: usize,
    /// Events consumed by the automaton.
    pub events: usize,
    /// Client local-step executions validated against the dropout replay.
    pub local_steps: usize,
    /// Checkpoint captures observed.
    pub checkpoints: usize,
    /// Injected-fault events validated against the fault-stream replay.
    pub faults: usize,
}

/// Strict event cursor: the automaton consumes the log front to back.
struct Cursor<'a> {
    events: &'a [Event],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(events: &'a [Event]) -> Self {
        Self { events, pos: 0 }
    }

    fn next(
        &mut self,
        round: usize,
        expected: &'static str,
    ) -> Result<&'a Event, ConformanceError> {
        match self.events.get(self.pos) {
            Some(e) => {
                self.pos += 1;
                Ok(e)
            }
            None => Err(ConformanceError::TraceEnded { round, expected }),
        }
    }

    fn finish(&self) -> Result<usize, ConformanceError> {
        if self.pos < self.events.len() {
            Err(ConformanceError::TrailingEvents {
                count: self.events.len() - self.pos,
            })
        } else {
            Ok(self.pos)
        }
    }
}

fn unexpected(round: usize, expected: &'static str, actual: &Event) -> ConformanceError {
    ConformanceError::UnexpectedEvent {
        round,
        expected,
        actual: format!("{actual:?}"),
    }
}

/// First-seen-order multiplicity counting (mirrors the production helper,
/// which is crate-private by design).
fn multiplicities(sampled: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut distinct: Vec<usize> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for &e in sampled {
        match distinct.iter().position(|&x| x == e) {
            Some(i) => counts[i] += 1,
            None => {
                distinct.push(e);
                counts.push(1);
            }
        }
    }
    (distinct, counts)
}

/// Replay the keyed client-fault streams for one block over the given
/// per-edge member lists: `alive[ei][ci]`. A client is cut by a crash
/// (the legacy dropout stream) or by straggling past the deadline;
/// zero-rate plans make no draws, replicating the production fast path.
fn replay_alive(
    members: &[Vec<usize>],
    round: usize,
    tau2: usize,
    t2: usize,
    seed: u64,
    plan: &FaultPlan,
) -> Vec<Vec<bool>> {
    let block_tag = (round * tau2 + t2) as u64;
    members
        .iter()
        .map(|gids| {
            gids.iter()
                .map(|&client| {
                    !plan.client_crashed(seed, block_tag, 0, client)
                        && !matches!(
                            plan.straggler(seed, block_tag, 0, client),
                            StragglerFate::Missed
                        )
                })
                .collect()
        })
        .collect()
}

/// Per-edge member lists the run enumerates for the given edges: the
/// churn mirror's rosters when a plan is active, otherwise the static
/// `client_id` layout.
fn edge_members(
    problem: &FederatedProblem,
    mirror: &ActiveTopology,
    churn_on: bool,
    edges: &[usize],
) -> Vec<Vec<usize>> {
    let n0 = problem.clients_per_edge();
    let topo = problem.topology();
    edges
        .iter()
        .map(|&e| {
            if churn_on {
                mirror.members_of(e).to_vec()
            } else {
                (0..n0).map(|c| topo.client_id(e, c)).collect()
            }
        })
        .collect()
}

/// Advance the churn mirror by one round and match the traced
/// [`Event::ChurnRound`] against the replayed transitions. Any forged or
/// missing leave, join, edge failure or re-homing move is rejected.
fn expect_churn_round(
    cur: &mut Cursor<'_>,
    k: usize,
    mirror: &mut ActiveTopology,
    plan: &ChurnPlan,
    seed: u64,
) -> Result<RoundChurn, ConformanceError> {
    let rc = mirror.apply_round(plan, seed, k);
    match cur.next(k, "ChurnRound")? {
        Event::ChurnRound {
            round,
            left,
            failed_edges,
            rehomed,
            joined,
        } if *round == k
            && *left == rc.left
            && *failed_edges == rc.failed_edges
            && *rehomed == rc.rehomed
            && *joined == rc.joined =>
        {
            Ok(rc)
        }
        other => Err(ConformanceError::ChurnMismatch {
            round: k,
            detail: format!(
                "expected churn transitions left={:?} failed={:?} rehomed={:?} joined={:?}, \
                 found {other:?}",
                rc.left, rc.failed_edges, rc.rehomed, rc.joined
            ),
        }),
    }
}

/// Consume one [`Event::EdgeFault`] and match it against the replayed
/// fault occurrence.
fn expect_edge_fault(
    cur: &mut Cursor<'_>,
    round: usize,
    edge: usize,
    kind: FaultKind,
    attempts: usize,
    report: &mut ConformanceReport,
) -> Result<(), ConformanceError> {
    match cur.next(round, "EdgeFault")? {
        Event::EdgeFault {
            round: er,
            level,
            edge: ee,
            kind: ek,
            attempts: ea,
        } if *er == round && *level == 0 && *ee == edge && *ek == kind && *ea == attempts => {
            report.faults += 1;
            Ok(())
        }
        other => Err(ConformanceError::FaultMismatch {
            round,
            detail: format!(
                "expected {} fault at edge {edge} ({attempts} attempts), found {other:?}",
                kind.as_str()
            ),
        }),
    }
}

/// Replay the per-round outage stream over sampled ids (paired with their
/// sample multiplicities), consuming one fault event per outed id, and
/// return the surviving `(ids, counts)`.
fn replay_outages(
    cur: &mut Cursor<'_>,
    plan: &FaultPlan,
    seed: u64,
    round: usize,
    ids: &[usize],
    counts: &[usize],
    report: &mut ConformanceReport,
) -> Result<(Vec<usize>, Vec<usize>), ConformanceError> {
    let mut ok_ids = Vec::with_capacity(ids.len());
    let mut ok_counts = Vec::with_capacity(ids.len());
    for (&e, &c) in ids.iter().zip(counts) {
        if plan.edge_out(seed, round as u64, 0, e) {
            expect_edge_fault(cur, round, e, FaultKind::EdgeOutage, 0, report)?;
        } else {
            ok_ids.push(e);
            ok_counts.push(c);
        }
    }
    Ok((ok_ids, ok_counts))
}

/// Replay of one batch of per-edge cloud-link deliveries.
struct DeliveryReplay {
    /// Positions (into the input id list) whose message got through.
    delivered: Vec<usize>,
    /// `Σ (attempts − 1)` across all messages, delivered or not — each
    /// retransmission is metered at the full payload.
    extra_attempts: u64,
}

/// Replay the delivery stream of one channel over the given ids, consuming
/// one fault event per retried or given-up message.
fn replay_deliveries(
    cur: &mut Cursor<'_>,
    plan: &FaultPlan,
    seed: u64,
    round: usize,
    channel: MsgChannel,
    ids: &[usize],
    report: &mut ConformanceReport,
) -> Result<DeliveryReplay, ConformanceError> {
    let mut delivered = Vec::with_capacity(ids.len());
    let mut extra_attempts = 0_u64;
    for (i, &e) in ids.iter().enumerate() {
        let dv = plan.delivery(seed, round as u64, 0, channel, e);
        extra_attempts += u64::from(dv.attempts - 1);
        let kind = if !dv.delivered {
            Some(FaultKind::MsgGaveUp)
        } else if dv.attempts > 1 {
            Some(FaultKind::MsgRetried)
        } else {
            None
        };
        if let Some(kind) = kind {
            expect_edge_fault(cur, round, e, kind, dv.attempts as usize, report)?;
        }
        if dv.delivered {
            delivered.push(i);
        }
    }
    Ok(DeliveryReplay {
        delivered,
        extra_attempts,
    })
}

fn check_finite_model(round: usize, w: &[f32], d: usize) -> Result<(), ConformanceError> {
    if w.len() != d {
        return Err(ConformanceError::BadModel {
            round,
            detail: format!("global model has dim {}, expected {d}", w.len()),
        });
    }
    if let Some(i) = w.iter().position(|x| !x.is_finite()) {
        return Err(ConformanceError::BadModel {
            round,
            detail: format!("global model non-finite at coordinate {i}"),
        });
    }
    Ok(())
}

/// Closed-form expectation for one round's communication counters.
#[derive(Debug, Clone, Copy, Default)]
struct LinkCost {
    down_floats: u64,
    down_msgs: u64,
    up_floats: u64,
    up_msgs: u64,
    rounds: u64,
}

fn check_link(
    round: usize,
    delta: &CommStats,
    link: Link,
    name: &'static str,
    want: LinkCost,
) -> Result<(), ConformanceError> {
    let checks: [(&'static str, u64, u64); 5] = [
        (
            "downlink floats",
            want.down_floats,
            delta.downlink_floats(link),
        ),
        ("downlink msgs", want.down_msgs, delta.downlink_msgs(link)),
        ("uplink floats", want.up_floats, delta.uplink_floats(link)),
        ("uplink msgs", want.up_msgs, delta.uplink_msgs(link)),
        ("rounds", want.rounds, delta.rounds(link)),
    ];
    for (counter, expected, actual) in checks {
        if expected != actual {
            return Err(ConformanceError::CommMismatch {
                round,
                link: name,
                counter,
                expected,
                actual,
            });
        }
    }
    Ok(())
}

/// Validate the `run_edge_blocks` section of a round: `LocalSteps` events
/// in edge-major survivor order, then per-edge checkpoint captures and
/// aggregations. `members` holds the client ids each edge enumerates
/// (roster lists under churn, the static layout otherwise). Returns
/// per-block survivor counts.
#[allow(clippy::too_many_arguments)]
fn check_edge_blocks(
    cur: &mut Cursor<'_>,
    edges: &[usize],
    members: &[Vec<usize>],
    k: usize,
    tau1: usize,
    tau2: usize,
    c2: Option<usize>,
    seed: u64,
    plan: &FaultPlan,
    report: &mut ConformanceReport,
) -> Result<(Vec<u64>, u64), ConformanceError> {
    let mut survivors_per_block = Vec::with_capacity(tau2);
    let mut corrupted = 0u64;
    for t2 in 0..tau2 {
        let block_tag = (k * tau2 + t2) as u64;
        let alive = replay_alive(members, k, tau2, t2, seed, plan);
        survivors_per_block.push(alive.iter().flatten().filter(|&&a| a).count() as u64);
        for (ei, &edge) in edges.iter().enumerate() {
            for (ci, &client) in members[ei].iter().enumerate() {
                if !alive[ei][ci] {
                    continue;
                }
                // Surviving uploads draw their Byzantine bit from the
                // dedicated adversary stream, exactly as the run does.
                if plan.has_adversary() && plan.client_corrupt(seed, block_tag, 0, client) {
                    corrupted += 1;
                }
                match cur.next(k, "LocalSteps")? {
                    Event::LocalSteps {
                        round,
                        t2: et2,
                        edge: ee,
                        client: ec,
                        steps,
                    } if *round == k
                        && *et2 == t2
                        && *ee == edge
                        && *ec == client
                        && *steps == tau1 =>
                    {
                        report.local_steps += 1;
                    }
                    other => {
                        return Err(ConformanceError::LocalStepsMismatch {
                            round: k,
                            t2,
                            detail: format!(
                                "expected LocalSteps for client {client} of edge {edge} \
                                 ({tau1} steps), found {other:?}"
                            ),
                        })
                    }
                }
            }
        }
        // Per-edge aggregation over survivors; a fully-dropped edge emits
        // nothing and keeps its block-start model.
        for (ei, &edge) in edges.iter().enumerate() {
            let any_alive = alive[ei].iter().any(|&a| a);
            if !any_alive {
                continue;
            }
            if c2 == Some(t2) {
                match cur.next(k, "CheckpointCaptured")? {
                    Event::CheckpointCaptured {
                        round,
                        edge: ee,
                        t2: et2,
                    } if *round == k && *ee == edge && *et2 == t2 => {
                        report.checkpoints += 1;
                    }
                    other => {
                        return Err(ConformanceError::AggregationMismatch {
                            round: k,
                            detail: format!(
                                "expected CheckpointCaptured at edge {edge} block {t2}, \
                                 found {other:?}"
                            ),
                        })
                    }
                }
            }
            match cur.next(k, "ClientEdgeAggregation")? {
                Event::ClientEdgeAggregation {
                    round,
                    edge: ee,
                    t2: et2,
                } if *round == k && *ee == edge && *et2 == t2 => {}
                other => {
                    return Err(ConformanceError::AggregationMismatch {
                        round: k,
                        detail: format!(
                            "expected ClientEdgeAggregation at edge {edge} block {t2}, \
                             found {other:?}"
                        ),
                    })
                }
            }
        }
    }
    Ok((survivors_per_block, corrupted))
}

/// Consume one [`Event::AdversaryRound`] and match its corrupted-upload
/// count and attack tag against the independent replay of the keyed
/// adversary decision stream. Only called when the plan has an adversary;
/// honest traces must not contain the event at all.
fn expect_adversary_round(
    cur: &mut Cursor<'_>,
    round: usize,
    plan: &FaultPlan,
    corrupted: Option<u64>,
    report: &mut ConformanceReport,
) -> Result<(), ConformanceError> {
    match cur.next(round, "AdversaryRound")? {
        Event::AdversaryRound {
            round: er,
            corrupted: ec,
            attack,
        } if *er == round
            && *attack == plan.attack.as_str()
            && corrupted.is_none_or(|c| *ec == c) =>
        {
            report.faults += 1;
            Ok(())
        }
        other => Err(ConformanceError::FaultMismatch {
            round,
            detail: match corrupted {
                Some(c) => format!(
                    "expected AdversaryRound with {c} corrupted uploads ({}), found {other:?}",
                    plan.attack.as_str()
                ),
                None => format!(
                    "expected AdversaryRound ({}), found {other:?}",
                    plan.attack.as_str()
                ),
            },
        }),
    }
}

/// Check a full HierMinimax trace against the Algorithm-1 model.
///
/// `events` must be the complete log of a traced run of
/// `HierMinimax::new(cfg.clone()).run(problem, seed)` with
/// `cfg.opts.trace = true`.
///
/// # Panics
/// Panics on heterogeneous `tau2_per_edge` configs (not modelled).
pub fn check_hierminimax_trace(
    problem: &FederatedProblem,
    cfg: &HierMinimaxConfig,
    seed: u64,
    events: &[Event],
) -> Result<ConformanceReport, ConformanceError> {
    assert!(
        cfg.tau2_per_edge.is_none(),
        "conformance model covers homogeneous rates only"
    );
    assert!(
        cfg.opts.quarantine_z <= 0.0,
        "conformance replay does not model quarantine exclusion windows"
    );
    let n_edges = problem.num_edges();
    let n0 = problem.clients_per_edge() as u64;
    let d = problem.num_params();
    let wire = cfg.quantizer.wire_floats(d);
    // The effective fault plan: the run folds the legacy `dropout` knob
    // into `client_crash` exactly like this (plan wins when nonzero).
    let plan = cfg.opts.fault.clone().with_dropout(cfg.dropout);
    let churn_plan = &cfg.opts.churn;
    let churn_on = !churn_plan.is_none();
    let mut mirror = ActiveTopology::new(&problem.topology());
    let mut cur = Cursor::new(events);
    let mut p = problem.initial_p();
    let mut report = ConformanceReport::default();

    for k in 0..cfg.rounds {
        // Membership churn applies at the round boundary, before any
        // sampling draw; a failed edge re-projects the tracked p exactly
        // like the run does.
        if churn_on {
            let rc = expect_churn_round(&mut cur, k, &mut mirror, churn_plan, seed)?;
            if !rc.failed_edges.is_empty() {
                mirror.reproject_weights(&mut p);
            }
        }

        // Phase 1 (a): weighted edge sample from the traced p^(k).
        let sampled = match cur.next(k, "Phase1EdgesSampled")? {
            Event::Phase1EdgesSampled { round, edges } if *round == k => edges.clone(),
            other => return Err(unexpected(k, "Phase1EdgesSampled", other)),
        };
        let mut e_rng =
            StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
        let p64: Vec<f64> = p.iter().map(|&x| f64::from(x).max(0.0)).collect();
        let expect = sample_edges_weighted(&p64, cfg.m_edges, &mut e_rng);
        if sampled != expect {
            return Err(ConformanceError::SamplingMismatch {
                round: k,
                phase: "phase1",
                expected: expect,
                actual: sampled,
            });
        }

        // Checkpoint draw: range first, then stream equality.
        let (c1, c2) = match cur.next(k, "CheckpointSampled")? {
            Event::CheckpointSampled { round, c1, c2 } if *round == k => (*c1, *c2),
            other => return Err(unexpected(k, "CheckpointSampled", other)),
        };
        if c1 >= cfg.tau1 || c2 >= cfg.tau2 {
            return Err(ConformanceError::CheckpointOutOfRange {
                round: k,
                c1,
                c2,
                tau1: cfg.tau1,
                tau2: cfg.tau2,
            });
        }
        let mut c_rng = StreamRng::for_key(StreamKey::new(seed, Purpose::Checkpoint, k as u64, 0));
        let expect_cp = sample_checkpoint(cfg.tau1, cfg.tau2, &mut c_rng);
        if (c1, c2) != expect_cp {
            return Err(ConformanceError::CheckpointMismatch {
                round: k,
                expected: expect_cp,
                actual: (c1, c2),
            });
        }

        // Outage filter over the distinct sampled edges (one fault event
        // per outed edge), then the broadcast to the survivors.
        let (distinct, counts) = multiplicities(&sampled);
        let (active, _active_counts) =
            replay_outages(&mut cur, &plan, seed, k, &distinct, &counts, &mut report)?;
        match cur.next(k, "CloudBroadcast")? {
            Event::CloudBroadcast { round, recipients } if *round == k => {
                if *recipients != active {
                    return Err(ConformanceError::BroadcastMismatch {
                        round: k,
                        expected: active.clone(),
                        actual: recipients.clone(),
                    });
                }
            }
            other => return Err(unexpected(k, "CloudBroadcast", other)),
        }

        // Phase-1 downlink deliveries decide which active edges take part.
        let p1_down = replay_deliveries(
            &mut cur,
            &plan,
            seed,
            k,
            MsgChannel::Phase1Down,
            &active,
            &mut report,
        )?;
        let participants: Vec<usize> = p1_down.delivered.iter().map(|&i| active[i]).collect();

        // τ2 blocks of local steps + aggregations over each edge's
        // current member list.
        let prt_members = edge_members(problem, &mirror, churn_on, &participants);
        let (survivors, corrupted) = check_edge_blocks(
            &mut cur,
            &participants,
            &prt_members,
            k,
            cfg.tau1,
            cfg.tau2,
            Some(c2),
            seed,
            &plan,
            &mut report,
        )?;

        // Phase-1 uplink deliveries decide which reports the cloud
        // aggregates (an empty report set is the stale-round path — the
        // aggregation events must still appear).
        let p1_up = replay_deliveries(
            &mut cur,
            &plan,
            seed,
            k,
            MsgChannel::Phase1Up,
            &participants,
            &mut report,
        )?;

        // Cloud aggregation.
        match cur.next(k, "GlobalAggregation")? {
            Event::GlobalAggregation { round } if *round == k => {}
            other => return Err(unexpected(k, "GlobalAggregation", other)),
        }
        match cur.next(k, "GlobalModel")? {
            Event::GlobalModel { round, w } if *round == k => check_finite_model(k, w, d)?,
            other => return Err(unexpected(k, "GlobalModel", other)),
        }

        // Phase 2: uniform sample.
        let u_set = match cur.next(k, "Phase2EdgesSampled")? {
            Event::Phase2EdgesSampled { round, edges } if *round == k => edges.clone(),
            other => return Err(unexpected(k, "Phase2EdgesSampled", other)),
        };
        let mut u_rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::LossEstSampling,
            k as u64,
            u64::MAX,
        ));
        // Under churn the run samples indices into the up-edge list (with
        // m clamped to its size) and maps them back to edge ids.
        let expect_u = if churn_on {
            let up = mirror.up_edges();
            let m = cfg.m_edges.min(up.len());
            sample_edges_uniform(up.len(), m, &mut u_rng)
                .into_iter()
                .map(|i| up[i])
                .collect()
        } else {
            sample_edges_uniform(n_edges, cfg.m_edges, &mut u_rng)
        };
        if u_set != expect_u {
            return Err(ConformanceError::SamplingMismatch {
                round: k,
                phase: "phase2",
                expected: expect_u,
                actual: u_set,
            });
        }

        // Phase-2 fault pipeline: outed edges, then lost estimate-request
        // downlinks; a failed edge contributes v_e = 0.
        let ones = vec![1_usize; u_set.len()];
        let (live, _) = replay_outages(&mut cur, &plan, seed, k, &u_set, &ones, &mut report)?;
        let p2_down = replay_deliveries(
            &mut cur,
            &plan,
            seed,
            k,
            MsgChannel::Phase2Down,
            &live,
            &mut report,
        )?;
        let est = p2_down.delivered.len() as u64;
        // Loss-estimation fan-out: each delivered estimate edge touches
        // its current member count (`n0` each in the static layout).
        let est_clients: u64 = if churn_on {
            p2_down
                .delivered
                .iter()
                .map(|&i| mirror.members_of(live[i]).len() as u64)
                .sum()
        } else {
            est * n0
        };

        // Weight update: dimension, finiteness, feasibility; the traced p
        // becomes the next round's sampling distribution.
        let p_new = match cur.next(k, "WeightUpdate")? {
            Event::WeightUpdate { round, p } if *round == k => p.clone(),
            other => return Err(unexpected(k, "WeightUpdate", other)),
        };
        if p_new.len() != n_edges || p_new.iter().any(|x| !x.is_finite()) {
            return Err(ConformanceError::BadModel {
                round: k,
                detail: format!("weight vector malformed: {p_new:?}"),
            });
        }
        if churn_on && mirror.num_up() < n_edges {
            // After an edge failure the run re-projects p onto the
            // surviving simplex, which can leave the original domain `P`;
            // check the surviving-simplex constraints instead: entries
            // non-negative, zero on dead edges, summing to one.
            let mut sum = 0.0_f64;
            let mut violation = 0.0_f64;
            for (e, &x) in p_new.iter().enumerate() {
                let x = f64::from(x);
                if !mirror.is_up(e) {
                    violation = violation.max(x.abs());
                }
                violation = violation.max(-x);
                sum += x;
            }
            violation = violation.max((sum - 1.0).abs());
            if violation > FEASIBILITY_TOL {
                return Err(ConformanceError::InfeasibleWeights {
                    round: k,
                    violation,
                });
            }
        } else {
            let violation = problem.p_domain.feasibility_violation(&p_new);
            if violation > FEASIBILITY_TOL {
                return Err(ConformanceError::InfeasibleWeights {
                    round: k,
                    violation,
                });
            }
        }

        // Adversarial rounds account their corrupted uploads immediately
        // before the communication record; the count must equal the
        // independent replay of the keyed corruption stream over the
        // surviving slots of every block.
        if plan.has_adversary() {
            expect_adversary_round(&mut cur, k, &plan, Some(corrupted), &mut report)?;
        }

        // Closed-form communication accounting for this round: base costs
        // over the surviving sets, plus one full payload per replayed
        // retransmission (retried and given-up deliveries alike).
        let delta = match cur.next(k, "RoundComm")? {
            Event::RoundComm { round, delta } if *round == k => *delta,
            other => return Err(unexpected(k, "RoundComm", other)),
        };
        let act = active.len() as u64;
        let prt = participants.len() as u64;
        let liv = live.len() as u64;
        let du = d as u64;
        let t2u = cfg.tau2 as u64;
        check_link(
            k,
            &delta,
            Link::EdgeCloud,
            "EdgeCloud",
            LinkCost {
                down_floats: (du + 2) * (act + p1_down.extra_attempts)
                    + du * (liv + p2_down.extra_attempts),
                down_msgs: act + p1_down.extra_attempts + liv + p2_down.extra_attempts,
                up_floats: 2 * wire * (prt + p1_up.extra_attempts) + est,
                up_msgs: prt + p1_up.extra_attempts + est,
                rounds: 1,
            },
        )?;
        let prt_clients: u64 = prt_members.iter().map(|m| m.len() as u64).sum();
        let mut ce_up_f = est_clients;
        let mut ce_up_m = est_clients;
        for (t2, &s) in survivors.iter().enumerate() {
            ce_up_f += if t2 == c2 { 2 * wire } else { wire } * s;
            ce_up_m += s;
        }
        check_link(
            k,
            &delta,
            Link::ClientEdge,
            "ClientEdge",
            LinkCost {
                down_floats: t2u * prt_clients * du + du * est_clients,
                down_msgs: t2u * prt_clients + est_clients,
                up_floats: ce_up_f,
                up_msgs: ce_up_m,
                rounds: t2u + 1,
            },
        )?;
        check_link(
            k,
            &delta,
            Link::ClientCloud,
            "ClientCloud",
            LinkCost::default(),
        )?;

        p = p_new;
        report.rounds += 1;
    }
    report.events = cur.finish()?;
    Ok(report)
}

/// Check a full HierFAVG trace: Phase 1 only, uniform edge sampling,
/// no checkpoint machinery and no weight update.
pub fn check_hierfavg_trace(
    problem: &FederatedProblem,
    cfg: &HierFavgConfig,
    seed: u64,
    events: &[Event],
) -> Result<ConformanceReport, ConformanceError> {
    let n_edges = problem.num_edges();
    let d = problem.num_params();
    let wire = cfg.quantizer.wire_floats(d);
    assert!(
        cfg.opts.quarantine_z <= 0.0,
        "conformance replay does not model quarantine exclusion windows"
    );
    let plan = cfg.opts.fault.clone().with_dropout(cfg.dropout);
    let churn_plan = &cfg.opts.churn;
    let churn_on = !churn_plan.is_none();
    let mut mirror = ActiveTopology::new(&problem.topology());
    let mut cur = Cursor::new(events);
    let mut report = ConformanceReport::default();

    for k in 0..cfg.rounds {
        // Membership churn applies at the round boundary, before the
        // Phase-1 draw (HierFAVG has no fairness weights to re-project).
        if churn_on {
            expect_churn_round(&mut cur, k, &mut mirror, churn_plan, seed)?;
        }
        let sampled = match cur.next(k, "Phase1EdgesSampled")? {
            Event::Phase1EdgesSampled { round, edges } if *round == k => edges.clone(),
            other => return Err(unexpected(k, "Phase1EdgesSampled", other)),
        };
        let mut e_rng =
            StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
        // Under churn the run samples uniformly over the up-edge list
        // (with m clamped to its size) and maps indices back to edge ids.
        let expect = if churn_on {
            let up = mirror.up_edges();
            let m = cfg.m_edges.min(up.len());
            sample_edges_uniform(up.len(), m, &mut e_rng)
                .into_iter()
                .map(|i| up[i])
                .collect()
        } else {
            sample_edges_uniform(n_edges, cfg.m_edges, &mut e_rng)
        };
        if sampled != expect {
            return Err(ConformanceError::SamplingMismatch {
                round: k,
                phase: "phase1",
                expected: expect,
                actual: sampled,
            });
        }
        // Uniform sampling is without replacement, so `sampled` is already
        // the distinct set (multiplicity one each).
        let ones = vec![1_usize; sampled.len()];
        let (active, _) = replay_outages(&mut cur, &plan, seed, k, &sampled, &ones, &mut report)?;
        match cur.next(k, "CloudBroadcast")? {
            Event::CloudBroadcast { round, recipients } if *round == k => {
                if *recipients != active {
                    return Err(ConformanceError::BroadcastMismatch {
                        round: k,
                        expected: active.clone(),
                        actual: recipients.clone(),
                    });
                }
            }
            other => return Err(unexpected(k, "CloudBroadcast", other)),
        }
        let p1_down = replay_deliveries(
            &mut cur,
            &plan,
            seed,
            k,
            MsgChannel::Phase1Down,
            &active,
            &mut report,
        )?;
        let participants: Vec<usize> = p1_down.delivered.iter().map(|&i| active[i]).collect();
        let prt_members = edge_members(problem, &mirror, churn_on, &participants);
        let (survivors, corrupted) = check_edge_blocks(
            &mut cur,
            &participants,
            &prt_members,
            k,
            cfg.tau1,
            cfg.tau2,
            None,
            seed,
            &plan,
            &mut report,
        )?;
        let p1_up = replay_deliveries(
            &mut cur,
            &plan,
            seed,
            k,
            MsgChannel::Phase1Up,
            &participants,
            &mut report,
        )?;
        match cur.next(k, "GlobalAggregation")? {
            Event::GlobalAggregation { round } if *round == k => {}
            other => return Err(unexpected(k, "GlobalAggregation", other)),
        }
        match cur.next(k, "GlobalModel")? {
            Event::GlobalModel { round, w } if *round == k => check_finite_model(k, w, d)?,
            other => return Err(unexpected(k, "GlobalModel", other)),
        }
        if plan.has_adversary() {
            expect_adversary_round(&mut cur, k, &plan, Some(corrupted), &mut report)?;
        }
        let delta = match cur.next(k, "RoundComm")? {
            Event::RoundComm { round, delta } if *round == k => *delta,
            other => return Err(unexpected(k, "RoundComm", other)),
        };
        let act = active.len() as u64;
        let prt = participants.len() as u64;
        let du = d as u64;
        let t2u = cfg.tau2 as u64;
        check_link(
            k,
            &delta,
            Link::EdgeCloud,
            "EdgeCloud",
            LinkCost {
                down_floats: du * (act + p1_down.extra_attempts),
                down_msgs: act + p1_down.extra_attempts,
                up_floats: wire * (prt + p1_up.extra_attempts),
                up_msgs: prt + p1_up.extra_attempts,
                rounds: 1,
            },
        )?;
        let prt_clients: u64 = prt_members.iter().map(|m| m.len() as u64).sum();
        let ce_up_f: u64 = survivors.iter().map(|&s| wire * s).sum();
        let ce_up_m: u64 = survivors.iter().sum();
        check_link(
            k,
            &delta,
            Link::ClientEdge,
            "ClientEdge",
            LinkCost {
                down_floats: t2u * prt_clients * du,
                down_msgs: t2u * prt_clients,
                up_floats: ce_up_f,
                up_msgs: ce_up_m,
                rounds: t2u,
            },
        )?;
        check_link(
            k,
            &delta,
            Link::ClientCloud,
            "ClientCloud",
            LinkCost::default(),
        )?;
        report.rounds += 1;
    }
    report.events = cur.finish()?;
    Ok(report)
}

/// Is this event one the multi-level cloud loop emits (as opposed to
/// client/edge-level events of inner subtrees, whose `round` fields carry
/// position tags that can collide with real round indices)?
fn is_cloud_level(e: &Event) -> bool {
    matches!(
        e,
        Event::Phase1EdgesSampled { .. }
            | Event::CheckpointSampled { .. }
            | Event::CloudBroadcast { .. }
            | Event::GlobalAggregation { .. }
            | Event::GlobalModel { .. }
            | Event::Phase2EdgesSampled { .. }
            | Event::WeightUpdate { .. }
            | Event::AdversaryRound { .. }
            | Event::RoundComm { .. }
            // Cloud-link fault events; the multi-level loop models
            // intermediate links as reliable, so every `EdgeFault` in the
            // trace is the cloud loop's (level 0, real round index).
            | Event::EdgeFault { .. }
    )
}

/// Recursive closed-form `ClientEdge` cost of one group's subtree update
/// (mirrors `MultiLevelMinimax::subtree_update`; base levels run with
/// `Quantizer::Exact` and zero dropout).
fn subtree_cost(cfg: &MultiLevelConfig, d: u64, n0: u64, li: usize, edges: u64) -> LinkCost {
    if li == cfg.upper.len() {
        // run_edge_blocks over `edges` edges, τ2 blocks, exactly one of
        // which carries the doubled checkpoint payload.
        let t2 = cfg.tau2 as u64;
        return LinkCost {
            down_floats: t2 * edges * n0 * d,
            down_msgs: t2 * edges * n0,
            up_floats: (t2 + 1) * d * edges * n0,
            up_msgs: t2 * edges * n0,
            rounds: t2,
        };
    }
    let child_edges: u64 = cfg.upper[li + 1..]
        .iter()
        .map(|u| u.group_size as u64)
        .product::<u64>()
        .max(1);
    let children = edges / child_edges;
    let tau = cfg.upper[li].tau as u64;
    let child = subtree_cost(cfg, d, n0, li + 1, child_edges);
    LinkCost {
        down_floats: tau * (d * children + children * child.down_floats),
        down_msgs: tau * (children + children * child.down_msgs),
        up_floats: tau * (2 * d * children + children * child.up_floats),
        up_msgs: tau * (children + children * child.up_msgs),
        rounds: tau * (1 + children * child.rounds),
    }
}

/// Check the cloud-level protocol of a multi-level HierMinimax trace:
/// sampling replay over top-level groups, the checkpoint draw (upper-level
/// coordinates first, then `c1`, `c2`), aggregation order, weight
/// feasibility, and the full closed-form communication accounting
/// (including recursive intermediate-level costs). Inner subtree events
/// are skipped (their round fields are position tags).
pub fn check_multilevel_trace(
    problem: &FederatedProblem,
    cfg: &MultiLevelConfig,
    seed: u64,
    events: &[Event],
) -> Result<ConformanceReport, ConformanceError> {
    let per_group: usize = cfg.edges_per_group().max(1);
    let n_edges = problem.num_edges();
    assert!(
        n_edges.is_multiple_of(per_group),
        "{n_edges} edges do not divide into groups of {per_group}"
    );
    let num_groups = n_edges / per_group;
    let n0 = problem.clients_per_edge() as u64;
    let d = problem.num_params();
    let plan = cfg.opts.fault.clone().with_dropout(cfg.dropout);
    // The checker replays cloud-link fault classes only: client crashes and
    // stragglers inside subtrees key their streams on position tags the
    // closed-form subtree cost does not model.
    assert!(
        plan.client_crash == 0.0 && plan.straggler_rate == 0.0,
        "check_multilevel_trace replays cloud-link faults only \
         (client_crash and straggler_rate must be zero)"
    );
    assert!(
        cfg.opts.churn.is_none(),
        "membership churn is a two-level feature (the multi-level run rejects it)"
    );
    let cloud: Vec<&Event> = events.iter().filter(|e| is_cloud_level(e)).collect();
    let mut cur = Cursor {
        events: &[],
        pos: 0,
    };
    // A cursor over references: rebuild a contiguous buffer instead.
    let cloud_events: Vec<Event> = cloud.into_iter().cloned().collect();
    cur.events = &cloud_events;

    let mut p = vec![1.0_f32 / num_groups as f32; num_groups];
    let mut report = ConformanceReport::default();

    for k in 0..cfg.rounds {
        let sampled = match cur.next(k, "Phase1EdgesSampled")? {
            Event::Phase1EdgesSampled { round, edges } if *round == k => edges.clone(),
            other => return Err(unexpected(k, "Phase1EdgesSampled", other)),
        };
        let mut e_rng =
            StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
        let p64: Vec<f64> = p.iter().map(|&x| f64::from(x).max(0.0)).collect();
        let expect = sample_edges_weighted(&p64, cfg.m_groups, &mut e_rng);
        if sampled != expect {
            return Err(ConformanceError::SamplingMismatch {
                round: k,
                phase: "phase1",
                expected: expect,
                actual: sampled,
            });
        }
        let (distinct, counts) = multiplicities(&sampled);

        let (c1, c2) = match cur.next(k, "CheckpointSampled")? {
            Event::CheckpointSampled { round, c1, c2 } if *round == k => (*c1, *c2),
            other => return Err(unexpected(k, "CheckpointSampled", other)),
        };
        if c1 >= cfg.tau1 || c2 >= cfg.tau2 {
            return Err(ConformanceError::CheckpointOutOfRange {
                round: k,
                c1,
                c2,
                tau1: cfg.tau1,
                tau2: cfg.tau2,
            });
        }
        // Replay: upper-level coordinates are drawn before (c1, c2).
        let mut c_rng = StreamRng::for_key(StreamKey::new(seed, Purpose::Checkpoint, k as u64, 0));
        for u in &cfg.upper {
            let _ = c_rng.below(u.tau);
        }
        let expect_cp = (c_rng.below(cfg.tau1), c_rng.below(cfg.tau2));
        if (c1, c2) != expect_cp {
            return Err(ConformanceError::CheckpointMismatch {
                round: k,
                expected: expect_cp,
                actual: (c1, c2),
            });
        }

        let (active, _active_counts) =
            replay_outages(&mut cur, &plan, seed, k, &distinct, &counts, &mut report)?;
        match cur.next(k, "CloudBroadcast")? {
            Event::CloudBroadcast { round, recipients } if *round == k => {
                if *recipients != active {
                    return Err(ConformanceError::BroadcastMismatch {
                        round: k,
                        expected: active.clone(),
                        actual: recipients.clone(),
                    });
                }
            }
            other => return Err(unexpected(k, "CloudBroadcast", other)),
        }
        let p1_down = replay_deliveries(
            &mut cur,
            &plan,
            seed,
            k,
            MsgChannel::Phase1Down,
            &active,
            &mut report,
        )?;
        let participants: Vec<usize> = p1_down.delivered.iter().map(|&i| active[i]).collect();
        let p1_up = replay_deliveries(
            &mut cur,
            &plan,
            seed,
            k,
            MsgChannel::Phase1Up,
            &participants,
            &mut report,
        )?;
        match cur.next(k, "GlobalAggregation")? {
            Event::GlobalAggregation { round } if *round == k => {}
            other => return Err(unexpected(k, "GlobalAggregation", other)),
        }
        match cur.next(k, "GlobalModel")? {
            Event::GlobalModel { round, w } if *round == k => check_finite_model(k, w, d)?,
            other => return Err(unexpected(k, "GlobalModel", other)),
        }
        let u_set = match cur.next(k, "Phase2EdgesSampled")? {
            Event::Phase2EdgesSampled { round, edges } if *round == k => edges.clone(),
            other => return Err(unexpected(k, "Phase2EdgesSampled", other)),
        };
        let mut u_rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::LossEstSampling,
            k as u64,
            u64::MAX,
        ));
        let expect_u = sample_edges_uniform(num_groups, cfg.m_groups, &mut u_rng);
        if u_set != expect_u {
            return Err(ConformanceError::SamplingMismatch {
                round: k,
                phase: "phase2",
                expected: expect_u,
                actual: u_set,
            });
        }
        let ones = vec![1_usize; u_set.len()];
        let (live, _) = replay_outages(&mut cur, &plan, seed, k, &u_set, &ones, &mut report)?;
        let p2_down = replay_deliveries(
            &mut cur,
            &plan,
            seed,
            k,
            MsgChannel::Phase2Down,
            &live,
            &mut report,
        )?;
        let est = p2_down.delivered.len() as u64;
        let p_new = match cur.next(k, "WeightUpdate")? {
            Event::WeightUpdate { round, p } if *round == k => p.clone(),
            other => return Err(unexpected(k, "WeightUpdate", other)),
        };
        if p_new.len() != num_groups || p_new.iter().any(|x| !x.is_finite()) {
            return Err(ConformanceError::BadModel {
                round: k,
                detail: format!("weight vector malformed: {p_new:?}"),
            });
        }
        let violation = problem.p_domain.feasibility_violation(&p_new);
        if violation > FEASIBILITY_TOL {
            return Err(ConformanceError::InfeasibleWeights {
                round: k,
                violation,
            });
        }

        // The per-round corrupted count aggregates over inner subtrees
        // whose corruption streams key on position tags this closed-form
        // checker does not model, so only the event's presence, round, and
        // attack tag are validated here.
        if plan.has_adversary() {
            expect_adversary_round(&mut cur, k, &plan, None, &mut report)?;
        }

        let delta = match cur.next(k, "RoundComm")? {
            Event::RoundComm { round, delta } if *round == k => *delta,
            other => return Err(unexpected(k, "RoundComm", other)),
        };
        let act = active.len() as u64;
        let prt = participants.len() as u64;
        let liv = live.len() as u64;
        let du = d as u64;
        let cp_len = cfg.upper.len() as u64 + 2;
        check_link(
            k,
            &delta,
            Link::EdgeCloud,
            "EdgeCloud",
            LinkCost {
                down_floats: (du + cp_len) * (act + p1_down.extra_attempts)
                    + du * (liv + p2_down.extra_attempts),
                down_msgs: act + p1_down.extra_attempts + liv + p2_down.extra_attempts,
                up_floats: 2 * du * (prt + p1_up.extra_attempts) + est,
                up_msgs: prt + p1_up.extra_attempts + est,
                rounds: 1,
            },
        )?;
        let sub = subtree_cost(cfg, du, n0, 0, per_group as u64);
        let phase2 = est * per_group as u64 * n0;
        check_link(
            k,
            &delta,
            Link::ClientEdge,
            "ClientEdge",
            LinkCost {
                down_floats: prt * sub.down_floats + du * phase2,
                down_msgs: prt * sub.down_msgs + phase2,
                up_floats: prt * sub.up_floats + phase2,
                up_msgs: prt * sub.up_msgs + phase2,
                rounds: prt * sub.rounds + 1,
            },
        )?;
        check_link(
            k,
            &delta,
            Link::ClientCloud,
            "ClientCloud",
            LinkCost::default(),
        )?;

        p = p_new;
        report.rounds += 1;
    }
    report.events = cur.finish()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::traced_opts;
    use hm_core::algorithms::{
        Algorithm, HierFavg, HierMinimax, MultiLevelMinimax, RunOpts, UpperLevel,
    };
    use hm_data::scenarios::tiny_problem;

    fn problem(n_edges: usize, n0: usize, seed: u64) -> FederatedProblem {
        FederatedProblem::logistic_from_scenario(&tiny_problem(n_edges, n0, seed))
    }

    #[test]
    fn valid_hierminimax_trace_passes() {
        let fp = problem(3, 2, 1);
        let cfg = HierMinimaxConfig {
            rounds: 3,
            opts: traced_opts(),
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 42);
        let report = check_hierminimax_trace(&fp, &cfg, 42, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 3);
        // 3 rounds × τ2 blocks × 2 distinct-at-most edges × 2 clients…
        assert!(report.local_steps > 0);
        assert!(report.checkpoints > 0);
    }

    #[test]
    fn valid_hierfavg_trace_passes() {
        let fp = problem(3, 2, 2);
        let cfg = HierFavgConfig {
            rounds: 3,
            opts: traced_opts(),
            ..Default::default()
        };
        let r = HierFavg::new(cfg.clone()).run(&fp, 7);
        let report = check_hierfavg_trace(&fp, &cfg, 7, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 3);
        assert_eq!(report.checkpoints, 0);
    }

    #[test]
    fn valid_multilevel_trace_passes() {
        let fp = problem(4, 2, 3);
        let cfg = MultiLevelConfig {
            rounds: 3,
            upper: vec![UpperLevel {
                group_size: 2,
                tau: 2,
            }],
            m_groups: 2,
            opts: traced_opts(),
            ..Default::default()
        };
        let r = MultiLevelMinimax::new(cfg.clone()).run(&fp, 11);
        let report = check_multilevel_trace(&fp, &cfg, 11, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 3);
    }

    /// A fault plan hitting every class replays cleanly: the checker
    /// consumes the interleaved `EdgeFault` events, recomputes survivor
    /// sets, and the retry-aware comm closed form matches the meter.
    #[test]
    fn faulty_hierminimax_trace_passes_and_counts_faults() {
        let fp = problem(3, 2, 4);
        let cfg = HierMinimaxConfig {
            rounds: 6,
            opts: RunOpts {
                fault: FaultPlan {
                    client_crash: 0.3,
                    edge_outage: 0.4,
                    msg_loss: 0.35,
                    max_retries: 1,
                    straggler_rate: 0.3,
                    straggler_slowdown: 3.0,
                    deadline_factor: 1.5,
                    ..FaultPlan::default()
                },
                ..traced_opts()
            },
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 42);
        let report = check_hierminimax_trace(&fp, &cfg, 42, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 6);
        assert!(report.faults > 0, "plan rates high enough to always fire");
        // Every EdgeFault event in the trace was consumed by the replay.
        let traced_faults = r
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e, Event::EdgeFault { .. }))
            .count();
        assert_eq!(report.faults, traced_faults);
        assert!(r.faults.outages > 0 || r.faults.gave_up > 0);
    }

    #[test]
    fn faulty_hierfavg_trace_passes() {
        let fp = problem(3, 2, 5);
        let cfg = HierFavgConfig {
            rounds: 5,
            dropout: 0.25,
            opts: RunOpts {
                fault: FaultPlan {
                    edge_outage: 0.4,
                    msg_loss: 0.3,
                    max_retries: 0,
                    ..FaultPlan::default()
                },
                ..traced_opts()
            },
            ..Default::default()
        };
        let r = HierFavg::new(cfg.clone()).run(&fp, 19);
        let report = check_hierfavg_trace(&fp, &cfg, 19, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 5);
        assert!(report.faults > 0);
    }

    #[test]
    fn faulty_multilevel_trace_passes_cloud_replay() {
        let fp = problem(4, 2, 6);
        let cfg = MultiLevelConfig {
            rounds: 5,
            upper: vec![UpperLevel {
                group_size: 2,
                tau: 2,
            }],
            m_groups: 2,
            opts: RunOpts {
                fault: FaultPlan {
                    edge_outage: 0.35,
                    msg_loss: 0.3,
                    max_retries: 2,
                    ..FaultPlan::default()
                },
                ..traced_opts()
            },
            ..Default::default()
        };
        let r = MultiLevelMinimax::new(cfg.clone()).run(&fp, 13);
        let report = check_multilevel_trace(&fp, &cfg, 13, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 5);
        assert!(report.faults > 0);
    }

    /// Dropping a fault event desynchronizes the replay: the checker must
    /// reject the trace rather than silently mis-attribute survivors.
    #[test]
    fn missing_fault_event_is_rejected() {
        let fp = problem(3, 2, 4);
        let cfg = HierMinimaxConfig {
            rounds: 6,
            opts: RunOpts {
                fault: FaultPlan {
                    edge_outage: 0.5,
                    ..FaultPlan::default()
                },
                ..traced_opts()
            },
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 42);
        let mut events = r.trace.events();
        let idx = events
            .iter()
            .position(|e| matches!(e, Event::EdgeFault { .. }))
            .expect("outage rate 0.5 over 6 rounds fires");
        events.remove(idx);
        let err = check_hierminimax_trace(&fp, &cfg, 42, &events).unwrap_err();
        assert!(
            matches!(
                err,
                ConformanceError::FaultMismatch { .. }
                    | ConformanceError::UnexpectedEvent { .. }
                    | ConformanceError::BroadcastMismatch { .. }
            ),
            "expected replay desync, got {err}"
        );
    }

    /// A forged fault event (claiming an outage the keyed stream never
    /// drew) is caught as a fault mismatch.
    #[test]
    fn forged_fault_event_is_rejected() {
        let fp = problem(3, 2, 4);
        let cfg = HierMinimaxConfig {
            rounds: 2,
            opts: traced_opts(),
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 5);
        let mut events = r.trace.events();
        let idx = events
            .iter()
            .position(|e| matches!(e, Event::CloudBroadcast { .. }))
            .unwrap();
        events.insert(
            idx,
            Event::EdgeFault {
                round: 0,
                level: 0,
                edge: 0,
                kind: FaultKind::EdgeOutage,
                attempts: 0,
            },
        );
        let err = check_hierminimax_trace(&fp, &cfg, 5, &events).unwrap_err();
        assert!(
            matches!(
                err,
                ConformanceError::FaultMismatch { .. } | ConformanceError::UnexpectedEvent { .. }
            ),
            "expected fault mismatch, got {err}"
        );
    }

    #[test]
    fn truncated_trace_is_rejected() {
        let fp = problem(3, 2, 1);
        let cfg = HierMinimaxConfig {
            rounds: 2,
            opts: traced_opts(),
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 5);
        let mut events = r.trace.events();
        events.pop();
        let err = check_hierminimax_trace(&fp, &cfg, 5, &events).unwrap_err();
        assert!(matches!(err, ConformanceError::TraceEnded { .. }), "{err}");
    }

    #[test]
    fn trailing_events_are_rejected() {
        let fp = problem(3, 2, 1);
        let cfg = HierMinimaxConfig {
            rounds: 2,
            opts: traced_opts(),
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 5);
        let mut events = r.trace.events();
        events.push(Event::GlobalAggregation { round: 2 });
        let err = check_hierminimax_trace(&fp, &cfg, 5, &events).unwrap_err();
        assert_eq!(err, ConformanceError::TrailingEvents { count: 1 });
    }

    fn byzantine_plan(rate: f32) -> FaultPlan {
        FaultPlan {
            corrupt_rate: rate,
            attack: hm_simnet::AttackModel::SignFlip,
            ..FaultPlan::default()
        }
    }

    /// An adversarial trace replays cleanly and the traced per-round
    /// corrupted counts sum to the run's own adversary accounting (a
    /// closed-form cross-check of the keyed corruption stream).
    #[test]
    fn adversarial_hierminimax_trace_passes_and_counts_corruption() {
        let fp = problem(3, 2, 4);
        let cfg = HierMinimaxConfig {
            rounds: 5,
            opts: RunOpts {
                fault: byzantine_plan(0.3),
                ..traced_opts()
            },
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 42);
        let report = check_hierminimax_trace(&fp, &cfg, 42, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 5);
        assert_eq!(report.faults, 5, "one validated AdversaryRound per round");
        let traced: u64 = r
            .trace
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::AdversaryRound { corrupted, .. } => Some(*corrupted),
                _ => None,
            })
            .sum();
        assert!(traced > 0, "30% corruption over 5 rounds fires");
        assert_eq!(traced, r.quarantine.corrupted_updates);
    }

    /// Corruption composes with crash/straggler faults: the corrupted
    /// count is drawn over the *surviving* slots only, and the replay
    /// still matches with both fault classes active.
    #[test]
    fn adversarial_trace_with_crashes_passes() {
        let fp = problem(3, 2, 4);
        let cfg = HierMinimaxConfig {
            rounds: 6,
            opts: RunOpts {
                fault: FaultPlan {
                    client_crash: 0.3,
                    straggler_rate: 0.2,
                    straggler_slowdown: 3.0,
                    deadline_factor: 1.5,
                    ..byzantine_plan(0.4)
                },
                ..traced_opts()
            },
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 9);
        let report = check_hierminimax_trace(&fp, &cfg, 9, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 6);
    }

    #[test]
    fn adversarial_hierfavg_trace_passes() {
        let fp = problem(3, 2, 5);
        let cfg = HierFavgConfig {
            rounds: 4,
            opts: RunOpts {
                fault: byzantine_plan(0.25),
                ..traced_opts()
            },
            ..Default::default()
        };
        let r = HierFavg::new(cfg.clone()).run(&fp, 19);
        let report = check_hierfavg_trace(&fp, &cfg, 19, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 4);
        assert_eq!(report.faults, 4);
    }

    #[test]
    fn adversarial_multilevel_trace_passes() {
        let fp = problem(4, 2, 6);
        let cfg = MultiLevelConfig {
            rounds: 4,
            upper: vec![UpperLevel {
                group_size: 2,
                tau: 2,
            }],
            m_groups: 2,
            opts: RunOpts {
                fault: byzantine_plan(0.25),
                ..traced_opts()
            },
            ..Default::default()
        };
        let r = MultiLevelMinimax::new(cfg.clone()).run(&fp, 13);
        let report = check_multilevel_trace(&fp, &cfg, 13, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 4);
        assert_eq!(report.faults, 4);
    }

    /// Inflating a traced corrupted count forges adversary accounting the
    /// keyed stream never produced; the replay must reject it.
    #[test]
    fn forged_adversary_count_is_rejected() {
        let fp = problem(3, 2, 4);
        let cfg = HierMinimaxConfig {
            rounds: 5,
            opts: RunOpts {
                fault: byzantine_plan(0.3),
                ..traced_opts()
            },
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 42);
        let mut events = r.trace.events();
        let slot = events
            .iter_mut()
            .find_map(|e| match e {
                Event::AdversaryRound { corrupted, .. } => Some(corrupted),
                _ => None,
            })
            .expect("adversarial run traces AdversaryRound");
        *slot += 1;
        let err = check_hierminimax_trace(&fp, &cfg, 42, &events).unwrap_err();
        assert!(
            matches!(err, ConformanceError::FaultMismatch { .. }),
            "{err}"
        );
    }

    /// Deleting an AdversaryRound hides corruption from the log; the
    /// replay still expects the event and must reject the trace.
    #[test]
    fn missing_adversary_event_is_rejected() {
        let fp = problem(3, 2, 4);
        let cfg = HierMinimaxConfig {
            rounds: 5,
            opts: RunOpts {
                fault: byzantine_plan(0.3),
                ..traced_opts()
            },
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 42);
        let mut events = r.trace.events();
        let idx = events
            .iter()
            .position(|e| matches!(e, Event::AdversaryRound { .. }))
            .unwrap();
        events.remove(idx);
        let err = check_hierminimax_trace(&fp, &cfg, 42, &events).unwrap_err();
        assert!(
            matches!(err, ConformanceError::FaultMismatch { .. }),
            "{err}"
        );
    }

    /// An honest (zero-rate) trace must not carry adversary events: the
    /// checker never consumes them, so an injected one desynchronizes.
    #[test]
    fn injected_adversary_event_in_honest_trace_is_rejected() {
        let fp = problem(3, 2, 1);
        let cfg = HierMinimaxConfig {
            rounds: 2,
            opts: traced_opts(),
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 5);
        let mut events = r.trace.events();
        let idx = events
            .iter()
            .position(|e| matches!(e, Event::RoundComm { .. }))
            .unwrap();
        events.insert(
            idx,
            Event::AdversaryRound {
                round: 0,
                corrupted: 2,
                attack: "sign-flip",
            },
        );
        let err = check_hierminimax_trace(&fp, &cfg, 5, &events).unwrap_err();
        assert!(
            matches!(err, ConformanceError::UnexpectedEvent { .. }),
            "{err}"
        );
    }

    #[test]
    fn errors_render_without_panicking() {
        let e = ConformanceError::CommMismatch {
            round: 3,
            link: "EdgeCloud",
            counter: "uplink floats",
            expected: 10,
            actual: 12,
        };
        let s = e.to_string();
        assert!(s.contains("EdgeCloud") && s.contains("12"), "{s}");
    }

    fn churn_opts(preset: &str) -> RunOpts {
        RunOpts {
            churn: ChurnPlan::preset(preset).unwrap(),
            ..traced_opts()
        }
    }

    /// A chaos-churn trace replays cleanly: the checker's topology mirror
    /// re-derives every leave, join, edge failure and re-homing move from
    /// the keyed churn stream, tracks roster-based participation, and the
    /// membership-aware comm closed form matches the meter.
    #[test]
    fn churn_hierminimax_trace_passes() {
        let fp = problem(4, 2, 4);
        let cfg = HierMinimaxConfig {
            rounds: 6,
            opts: churn_opts("chaos-churn"),
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 42);
        assert!(r.churn.total() > 0, "chaos-churn over 6 rounds fires");
        let report = check_hierminimax_trace(&fp, &cfg, 42, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 6);
        assert!(report.local_steps > 0);
    }

    #[test]
    fn churn_hierfavg_trace_passes() {
        let fp = problem(4, 2, 5);
        let cfg = HierFavgConfig {
            rounds: 6,
            opts: churn_opts("mild"),
            ..Default::default()
        };
        let r = HierFavg::new(cfg.clone()).run(&fp, 19);
        let report = check_hierfavg_trace(&fp, &cfg, 19, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 6);
    }

    /// Edge failover exercises the headline path: a failed edge's clients
    /// re-home onto survivors, the fairness weights leave the dead
    /// coordinate, and the replay still matches end to end.
    #[test]
    fn edge_failover_trace_passes_with_rehoming() {
        let fp = problem(4, 2, 6);
        let cfg = HierMinimaxConfig {
            rounds: 10,
            opts: churn_opts("edge-failover"),
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 7);
        assert!(r.churn.rehomed > 0, "15% failure rate over 10 rounds fires");
        let report = check_hierminimax_trace(&fp, &cfg, 7, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 10);
    }

    /// Churn composes with message-level faults: delivery replays run over
    /// the roster-derived survivor sets and still match.
    #[test]
    fn churn_with_faults_trace_passes() {
        let fp = problem(4, 2, 4);
        let cfg = HierMinimaxConfig {
            rounds: 5,
            opts: RunOpts {
                fault: FaultPlan {
                    client_crash: 0.2,
                    msg_loss: 0.25,
                    max_retries: 1,
                    ..FaultPlan::default()
                },
                ..churn_opts("chaos-churn")
            },
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 23);
        let report = check_hierminimax_trace(&fp, &cfg, 23, &r.trace.events()).unwrap();
        assert_eq!(report.rounds, 5);
    }

    /// A forged re-homing move (a transition the keyed churn stream never
    /// drew) is rejected as a churn mismatch.
    #[test]
    fn forged_rehoming_move_is_rejected() {
        let fp = problem(4, 2, 4);
        let cfg = HierMinimaxConfig {
            rounds: 3,
            opts: churn_opts("chaos-churn"),
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 42);
        let mut events = r.trace.events();
        let idx = events
            .iter()
            .position(|e| matches!(e, Event::ChurnRound { .. }))
            .expect("active plan emits ChurnRound every round");
        if let Event::ChurnRound { rehomed, .. } = &mut events[idx] {
            rehomed.push((0, 1, 2));
        }
        let err = check_hierminimax_trace(&fp, &cfg, 42, &events).unwrap_err();
        assert!(matches!(err, ConformanceError::ChurnMismatch { .. }), "{err}");
    }

    /// A forged leave is likewise rejected.
    #[test]
    fn forged_leave_is_rejected() {
        let fp = problem(4, 2, 5);
        let cfg = HierFavgConfig {
            rounds: 3,
            opts: churn_opts("mild"),
            ..Default::default()
        };
        let r = HierFavg::new(cfg.clone()).run(&fp, 19);
        let mut events = r.trace.events();
        let idx = events
            .iter()
            .position(|e| matches!(e, Event::ChurnRound { .. }))
            .unwrap();
        if let Event::ChurnRound { left, .. } = &mut events[idx] {
            left.push(0);
        }
        let err = check_hierfavg_trace(&fp, &cfg, 19, &events).unwrap_err();
        assert!(matches!(err, ConformanceError::ChurnMismatch { .. }), "{err}");
    }

    /// Dropping a ChurnRound desynchronizes the replay immediately.
    #[test]
    fn missing_churn_round_is_rejected() {
        let fp = problem(4, 2, 4);
        let cfg = HierMinimaxConfig {
            rounds: 3,
            opts: churn_opts("chaos-churn"),
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 42);
        let mut events = r.trace.events();
        let idx = events
            .iter()
            .position(|e| matches!(e, Event::ChurnRound { .. }))
            .unwrap();
        events.remove(idx);
        let err = check_hierminimax_trace(&fp, &cfg, 42, &events).unwrap_err();
        assert!(matches!(err, ConformanceError::ChurnMismatch { .. }), "{err}");
    }

    /// A ChurnRound in a churnless trace is an unexpected event — runs
    /// without an active plan must not claim membership transitions.
    #[test]
    fn churn_event_in_churnless_trace_is_rejected() {
        let fp = problem(3, 2, 1);
        let cfg = HierMinimaxConfig {
            rounds: 2,
            opts: traced_opts(),
            ..Default::default()
        };
        let r = HierMinimax::new(cfg.clone()).run(&fp, 5);
        let mut events = r.trace.events();
        events.insert(
            0,
            Event::ChurnRound {
                round: 0,
                left: vec![],
                failed_edges: vec![],
                rehomed: vec![],
                joined: vec![],
            },
        );
        let err = check_hierminimax_trace(&fp, &cfg, 5, &events).unwrap_err();
        assert!(
            matches!(err, ConformanceError::UnexpectedEvent { .. }),
            "{err}"
        );
    }
}
