//! Test harness for the HierMinimax workspace: an executable specification
//! of Algorithm 1 that the optimized implementation is checked against.
//!
//! Three layers (DESIGN.md §9):
//!
//! - [`conformance`] — a replay automaton that validates a full protocol
//!   [`hm_simnet::trace::Event`] log against the paper's Algorithm 1:
//!   phase ordering, keyed-RNG sampling replay (Phase-1 multiset ∝ `p^(k)`,
//!   checkpoint index in `[τ1]×[τ2]`, Phase-2 uniform set), dropout-aware
//!   local-step/aggregation structure, constrained-simplex feasibility of
//!   every weight iterate, and closed-form per-round communication
//!   accounting.
//! - [`oracle`] — a deliberately naive, allocation-heavy reference
//!   reimplementation of one HierMinimax round (plus the flat FedAvg/DRFA
//!   round shapes) that the optimized `hm-core::algorithms` path must
//!   match **bit-for-bit** per round.
//! - [`strategies`] — proptest generators for whole scenarios (topology,
//!   `τ1`/`τ2`, participation, dropout, quantizers, constrained `P` sets)
//!   driving both the checker and the oracle across hundreds of cases.
//!
//! The crate is a regular dependency of the workspace's integration tests
//! (`tests/conformance.rs`, `tests/oracle_diff.rs`), not of any production
//! code.

pub mod conformance;
pub mod oracle;
pub mod splice;
pub mod strategies;

pub use conformance::{
    check_hierfavg_trace, check_hierminimax_trace, check_multilevel_trace, ConformanceError,
    ConformanceReport,
};
pub use oracle::{
    reference_drfa_round, reference_fedavg_round, reference_hierminimax_round,
    reference_hierminimax_run, reference_init_w, ReferenceRound,
};
pub use splice::{round_start_index, splice_traces};
pub use strategies::{MultiLevelSpec, PDomainSpec, ScenarioSpec};
