//! Trace splicing for resumed runs.
//!
//! A checkpoint snapshot does not carry the protocol trace (DESIGN.md
//! §12): the killed run's trace covers rounds `0..k` and the resumed run's
//! trace covers `k..K`. Reconstructing the full-run view is an external
//! concatenation at the round boundary — which these helpers perform — and
//! the conformance automaton then validates the spliced log exactly as it
//! would an uninterrupted one. Because resume is bit-identical, a correct
//! splice *is* the uninterrupted trace; a forged splice (a skipped or
//! repeated round) desynchronizes the round-indexed replay and is
//! rejected.

use hm_simnet::trace::Event;

/// Index of the first event belonging to `round` in a hierarchical
/// (HierMinimax / HierFAVG / multi-level cloud) trace — each round opens
/// with its `Phase1EdgesSampled` draw, or with the `ChurnRound`
/// membership record when the run has an active churn plan. Returns
/// `events.len()` when the trace ends before `round`.
pub fn round_start_index(events: &[Event], round: usize) -> usize {
    events
        .iter()
        .position(|e| {
            matches!(e, Event::Phase1EdgesSampled { round: r, .. } if *r == round)
                || matches!(e, Event::ChurnRound { round: r, .. } if *r == round)
        })
        .unwrap_or(events.len())
}

/// Splice a checkpointed run's trace with the trace of the run resumed at
/// `resume_round`: everything before that round from `prefix`, then
/// `suffix` verbatim. `suffix` must start at `resume_round` (the resumed
/// run's first event) for the result to be a coherent full-run log.
pub fn splice_traces(prefix: &[Event], suffix: &[Event], resume_round: usize) -> Vec<Event> {
    let cut = round_start_index(prefix, resume_round);
    let mut out = Vec::with_capacity(cut + suffix.len());
    out.extend_from_slice(&prefix[..cut]);
    out.extend_from_slice(suffix);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p1(round: usize) -> Event {
        Event::Phase1EdgesSampled {
            round,
            edges: vec![round],
        }
    }

    #[test]
    fn cut_lands_on_round_open() {
        let trace = vec![
            p1(0),
            Event::GlobalAggregation { round: 0 },
            p1(1),
            Event::GlobalAggregation { round: 1 },
        ];
        assert_eq!(round_start_index(&trace, 0), 0);
        assert_eq!(round_start_index(&trace, 1), 2);
        assert_eq!(round_start_index(&trace, 2), 4);
    }

    #[test]
    fn splice_reconstructs_full_trace() {
        let full = vec![
            p1(0),
            Event::GlobalAggregation { round: 0 },
            p1(1),
            Event::GlobalAggregation { round: 1 },
        ];
        let suffix = &full[2..];
        assert_eq!(splice_traces(&full, suffix, 1), full);
    }
}
