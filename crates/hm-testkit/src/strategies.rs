//! Property-based scenario generation.
//!
//! A [`ScenarioSpec`] is a plain, `Debug`-printable description of one
//! end-to-end test case — topology, periods, participation, dropout,
//! quantizer, constrained `P` set, and both seeds — from which the problem
//! and every algorithm config can be built. Keeping the spec a value type
//! (rather than generating problems directly) is what makes proptest's
//! case reporting and regression pinning meaningful: a failing case prints
//! and replays as a handful of integers.
//!
//! The strategies stick to the portable proptest core (unweighted
//! `prop_oneof!`, `prop_map`, tuple and range strategies); weighting is
//! expressed by duplicating arms, and dependent fields (`m ≤ n`) by
//! mapping a free integer instead of `prop_flat_map`.

use hm_core::algorithms::{
    HierFavgConfig, HierMinimaxConfig, MultiLevelConfig, RunOpts, UpperLevel, WeightUpdateModel,
};
use hm_core::problem::FederatedProblem;
use hm_data::scenarios::tiny_problem;
use hm_optim::ProjectionOp;
use hm_simnet::{FaultPlan, Parallelism, Quantizer};
use proptest::prelude::*;

/// The constrained weight domain `P` of problem (3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PDomainSpec {
    /// The full probability simplex (the paper's default).
    Simplex,
    /// A capped simplex `{p : lo ≤ p_e ≤ hi, Σ p = 1}` — the "constrained
    /// `P`" extension exercised by the conformance checker's feasibility
    /// invariant.
    CappedSimplex {
        /// Per-coordinate lower bound.
        lo: f32,
        /// Per-coordinate upper bound.
        hi: f32,
    },
}

impl PDomainSpec {
    /// The projection operator for this domain.
    pub fn projection(&self) -> ProjectionOp {
        match *self {
            PDomainSpec::Simplex => ProjectionOp::Simplex,
            PDomainSpec::CappedSimplex { lo, hi } => ProjectionOp::CappedSimplex { lo, hi },
        }
    }
}

/// One generated three-layer scenario: everything needed to build the
/// problem and run HierMinimax / HierFAVG on it deterministically.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Edge areas `N_E`.
    pub n_edges: usize,
    /// Clients per edge `N_0`.
    pub clients_per_edge: usize,
    /// Seed of the synthetic dataset generator.
    pub data_seed: u64,
    /// Master seed of the algorithm run.
    pub run_seed: u64,
    /// Training rounds `K`.
    pub rounds: usize,
    /// Local steps per block `τ1`.
    pub tau1: usize,
    /// Blocks per round `τ2`.
    pub tau2: usize,
    /// Participating edges per phase `m_E`.
    pub m_edges: usize,
    /// Per-block client dropout probability.
    pub dropout: f32,
    /// Injected-fault plan (outages, message loss, stragglers); the
    /// conformance automaton replays its keyed streams alongside the run.
    pub fault: FaultPlan,
    /// Uplink codec.
    pub quantizer: Quantizer,
    /// Constrained weight domain `P`.
    pub p_domain: PDomainSpec,
    /// Which model Phase 2 evaluates.
    pub weight_update_model: WeightUpdateModel,
}

/// Runner options every generated case uses: sequential (the reference
/// execution order), traced, no mid-run evaluation.
pub fn traced_opts() -> RunOpts {
    RunOpts {
        eval_every: 0,
        parallelism: Parallelism::Sequential,
        trace: true,
        ..Default::default()
    }
}

impl ScenarioSpec {
    /// Build the federated problem for this spec (multinomial logistic on
    /// the one-class-per-edge `tiny` scenario, with the spec's `P`).
    pub fn problem(&self) -> FederatedProblem {
        let sc = tiny_problem(self.n_edges, self.clients_per_edge, self.data_seed);
        let mut fp = FederatedProblem::logistic_from_scenario(&sc);
        fp.p_domain = self.p_domain.projection();
        fp
    }

    /// The HierMinimax config for this spec.
    pub fn hierminimax_config(&self) -> HierMinimaxConfig {
        HierMinimaxConfig {
            rounds: self.rounds,
            tau1: self.tau1,
            tau2: self.tau2,
            m_edges: self.m_edges,
            eta_w: 0.1,
            eta_p: 0.05,
            batch_size: 2,
            loss_batch: 3,
            weight_update_model: self.weight_update_model,
            quantizer: self.quantizer,
            dropout: self.dropout,
            tau2_per_edge: None,
            opts: RunOpts {
                fault: self.fault.clone(),
                ..traced_opts()
            },
        }
    }

    /// The HierFAVG config for this spec (fields without a HierFAVG
    /// counterpart — `P` and the Phase-2 knobs — are simply unused).
    pub fn hierfavg_config(&self) -> HierFavgConfig {
        HierFavgConfig {
            rounds: self.rounds,
            tau1: self.tau1,
            tau2: self.tau2,
            m_edges: self.m_edges,
            eta_w: 0.1,
            batch_size: 2,
            quantizer: self.quantizer,
            dropout: self.dropout,
            opts: RunOpts {
                fault: self.fault.clone(),
                ..traced_opts()
            },
        }
    }
}

/// One generated multi-level scenario (clients → edges → zero or one
/// intermediate level → cloud).
#[derive(Debug, Clone)]
pub struct MultiLevelSpec {
    /// Top-level (weighted) groups.
    pub groups: usize,
    /// Edges per group (forced to `1` when `with_upper` is false, which
    /// degenerates to the plain three-layer HierMinimax).
    pub group_size: usize,
    /// Whether an intermediate level exists at all.
    pub with_upper: bool,
    /// Aggregations of the level below per intermediate-level sync.
    pub tau_upper: usize,
    /// Clients per edge.
    pub clients_per_edge: usize,
    /// Seed of the synthetic dataset generator.
    pub data_seed: u64,
    /// Master seed of the algorithm run.
    pub run_seed: u64,
    /// Training rounds.
    pub rounds: usize,
    /// Local steps per block.
    pub tau1: usize,
    /// Blocks per edge-level sync.
    pub tau2: usize,
    /// Sampled groups per phase.
    pub m_groups: usize,
    /// Injected cloud-link fault plan (the multi-level conformance model
    /// covers edge outages and message loss; client-level classes stay
    /// zero here because inner subtrees key their streams by position
    /// tags the checker does not model).
    pub fault: FaultPlan,
}

impl MultiLevelSpec {
    /// Total edges of the underlying scenario.
    pub fn n_edges(&self) -> usize {
        self.groups * self.effective_group_size()
    }

    /// Group size after accounting for `with_upper`.
    pub fn effective_group_size(&self) -> usize {
        if self.with_upper {
            self.group_size
        } else {
            1
        }
    }

    /// Build the federated problem for this spec.
    pub fn problem(&self) -> FederatedProblem {
        let sc = tiny_problem(self.n_edges(), self.clients_per_edge, self.data_seed);
        FederatedProblem::logistic_from_scenario(&sc)
    }

    /// The multi-level config for this spec.
    pub fn config(&self) -> MultiLevelConfig {
        let upper = if self.with_upper {
            vec![UpperLevel {
                group_size: self.group_size,
                tau: self.tau_upper,
            }]
        } else {
            Vec::new()
        };
        MultiLevelConfig {
            rounds: self.rounds,
            tau1: self.tau1,
            tau2: self.tau2,
            upper,
            m_groups: self.m_groups,
            eta_w: 0.1,
            eta_p: 0.02,
            batch_size: 2,
            loss_batch: 3,
            dropout: 0.0,
            opts: RunOpts {
                fault: self.fault.clone(),
                ..traced_opts()
            },
        }
    }
}

/// Strategy over dropout rates: mostly failure-free, sometimes partial
/// (rounded to two decimals so cases print cleanly), occasionally the
/// total-blackout corner (`1.0`).
pub fn arb_dropout() -> impl Strategy<Value = f32> {
    let partial = || (0.05_f32..0.6).prop_map(|x| (x * 100.0).round() / 100.0);
    prop_oneof![
        Just(0.0_f32),
        Just(0.0_f32),
        Just(0.0_f32),
        partial(),
        partial(),
        Just(1.0_f32),
    ]
}

/// Strategy over injected-fault plans: mostly fault-free, with arms for
/// each cloud-link fault class (outages, lossy deliveries with bounded
/// retries, in/out-of-deadline stragglers), the all-out corner that forces
/// stale rounds, and a combined "chaos" mix. Rates are rounded to two
/// decimals so failing cases print and replay cleanly.
pub fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    let rate = || (0.05_f32..0.5).prop_map(|x| (x * 100.0).round() / 100.0);
    prop_oneof![
        Just(FaultPlan::default()),
        Just(FaultPlan::default()),
        Just(FaultPlan::default()),
        rate().prop_map(|r| FaultPlan {
            edge_outage: r,
            ..FaultPlan::default()
        }),
        (rate(), 0u32..=3).prop_map(|(r, max_retries)| FaultPlan {
            msg_loss: r,
            max_retries,
            ..FaultPlan::default()
        }),
        rate().prop_map(|r| FaultPlan {
            straggler_rate: r,
            straggler_slowdown: 3.0,
            deadline_factor: 1.5,
            ..FaultPlan::default()
        }),
        Just(FaultPlan {
            edge_outage: 1.0,
            ..FaultPlan::default()
        }),
        (rate(), rate()).prop_map(|(o, l)| FaultPlan {
            edge_outage: o,
            msg_loss: l,
            max_retries: 1,
            ..FaultPlan::default()
        }),
    ]
}

/// Strategy over cloud-link-only fault plans (for the multi-level checker,
/// which models outages and message loss but not subtree client faults).
pub fn arb_cloud_fault_plan() -> impl Strategy<Value = FaultPlan> {
    let rate = || (0.05_f32..0.5).prop_map(|x| (x * 100.0).round() / 100.0);
    prop_oneof![
        Just(FaultPlan::default()),
        Just(FaultPlan::default()),
        rate().prop_map(|r| FaultPlan {
            edge_outage: r,
            ..FaultPlan::default()
        }),
        (rate(), 0u32..=2).prop_map(|(r, max_retries)| FaultPlan {
            msg_loss: r,
            max_retries,
            ..FaultPlan::default()
        }),
    ]
}

/// Strategy over uplink codecs: exact or stochastic at 2–8 bits.
pub fn arb_quantizer() -> impl Strategy<Value = Quantizer> {
    prop_oneof![
        Just(Quantizer::Exact),
        Just(Quantizer::Exact),
        (2u8..=8).prop_map(|bits| Quantizer::Stochastic { bits }),
    ]
}

/// Strategy over constrained `P` sets. The capped-simplex bounds admit the
/// uniform initial `p` for every generated edge count.
pub fn arb_p_domain() -> impl Strategy<Value = PDomainSpec> {
    prop_oneof![
        Just(PDomainSpec::Simplex),
        Just(PDomainSpec::Simplex),
        Just(PDomainSpec::CappedSimplex { lo: 0.02, hi: 0.75 }),
    ]
}

/// Strategy over the Phase-2 model choice (paper default weighted highest).
pub fn arb_weight_update_model() -> impl Strategy<Value = WeightUpdateModel> {
    prop_oneof![
        Just(WeightUpdateModel::RandomCheckpoint),
        Just(WeightUpdateModel::RandomCheckpoint),
        Just(WeightUpdateModel::FinalModel),
        Just(WeightUpdateModel::RoundStart),
    ]
}

/// Strategy over whole three-layer scenarios (see [`ScenarioSpec`]). The
/// participation count is derived from a free integer (`m = 1 + raw mod
/// n`) to keep `1 ≤ m_E ≤ N_E` without `prop_flat_map`.
pub fn arb_scenario() -> impl Strategy<Value = ScenarioSpec> {
    (
        (
            2usize..=5,
            1usize..=3,
            0u64..10_000,
            0u64..10_000,
            0usize..64,
        ),
        (1usize..=3, 1usize..=3, 1usize..=3),
        arb_dropout(),
        (arb_fault_plan(), arb_quantizer()),
        (arb_p_domain(), arb_weight_update_model()),
    )
        .prop_map(
            |(
                (n_edges, clients_per_edge, data_seed, run_seed, m_raw),
                (rounds, tau1, tau2),
                dropout,
                (fault, quantizer),
                (p_domain, weight_update_model),
            )| {
                ScenarioSpec {
                    n_edges,
                    clients_per_edge,
                    data_seed,
                    run_seed,
                    rounds,
                    tau1,
                    tau2,
                    m_edges: 1 + m_raw % n_edges,
                    dropout,
                    fault,
                    quantizer,
                    p_domain,
                    weight_update_model,
                }
            },
        )
}

/// Strategy over multi-level scenarios (zero or one intermediate level).
pub fn arb_multilevel() -> impl Strategy<Value = MultiLevelSpec> {
    (
        (2usize..=3, 1usize..=2, any::<bool>(), 1usize..=3),
        (1usize..=2, 0u64..10_000, 0u64..10_000),
        (1usize..=3, 1usize..=2, 1usize..=2),
        0usize..64,
        arb_cloud_fault_plan(),
    )
        .prop_map(
            |(
                (groups, group_size, with_upper, tau_upper),
                (clients_per_edge, data_seed, run_seed),
                (rounds, tau1, tau2),
                m_raw,
                fault,
            )| {
                MultiLevelSpec {
                    groups,
                    group_size,
                    with_upper,
                    tau_upper,
                    clients_per_edge,
                    data_seed,
                    run_seed,
                    rounds,
                    tau1,
                    tau2,
                    m_groups: 1 + m_raw % groups,
                    fault,
                }
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_specs_are_well_formed(spec in arb_scenario()) {
            prop_assert!(spec.m_edges >= 1 && spec.m_edges <= spec.n_edges);
            prop_assert!((0.0..=1.0).contains(&spec.dropout));
            prop_assert!(spec.fault.validate().is_ok());
            let fp = spec.problem();
            prop_assert_eq!(fp.num_edges(), spec.n_edges);
            prop_assert_eq!(fp.clients_per_edge(), spec.clients_per_edge);
            // Capped-simplex bounds admit the uniform initial p.
            if let PDomainSpec::CappedSimplex { lo, hi } = spec.p_domain {
                let u = 1.0 / spec.n_edges as f32;
                prop_assert!(lo <= u && u <= hi);
                prop_assert!(lo * spec.n_edges as f32 <= 1.0);
                prop_assert!(hi * spec.n_edges as f32 >= 1.0);
            }
        }

        #[test]
        fn multilevel_specs_divide_evenly(spec in arb_multilevel()) {
            prop_assert!(spec.m_groups >= 1 && spec.m_groups <= spec.groups);
            let cfg = spec.config();
            let per: usize = cfg.upper.iter().map(|u| u.group_size).product();
            prop_assert_eq!(spec.n_edges() % per.max(1), 0);
        }
    }
}
