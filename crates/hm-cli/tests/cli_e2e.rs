//! End-to-end process tests of the `hierminimax` binary: spawn the real
//! executable and assert on exit codes and output.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hierminimax"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = bin().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("hierminimax"));
}

#[test]
fn run_tiny_end_to_end() {
    let out = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--rounds",
            "5",
            "--m",
            "2",
            "--sequential",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("HierMinimax"), "{text}");
    assert!(text.contains("cloud rounds"), "{text}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"), "{err}");
}

#[test]
fn missing_args_fail_cleanly() {
    let out = bin().output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing subcommand"), "{err}");
}

#[test]
fn typo_flag_is_reported() {
    let out = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--ruonds",
            "5",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--ruonds"), "{err}");
}

#[test]
fn data_subcommand_reports_skew() {
    let out = bin()
        .args([
            "data",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("label skew"), "{text}");
}

#[test]
fn csv_history_is_written() {
    let dir = std::env::temp_dir().join(format!("hm-cli-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("hist.csv");
    let out = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--rounds",
            "4",
            "--m",
            "2",
            "--eval-every",
            "1",
            "--sequential",
            "--csv",
        ])
        .arg(&csv)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&csv).unwrap();
    assert!(body.starts_with("round,"), "{body}");
    assert!(body.lines().count() >= 5, "{body}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn telemetry_jsonl_written_and_validates() {
    let dir = std::env::temp_dir().join(format!("hm-cli-tel-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("run.jsonl");
    let out = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--rounds",
            "4",
            "--m",
            "2",
            "--sequential",
            "--telemetry",
        ])
        .arg(&jsonl)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&jsonl).unwrap();
    assert!(body.starts_with("{\"ev\":\"run_start\""), "{body}");
    assert!(body.contains("\"ev\":\"dual_update\""), "{body}");
    assert_eq!(
        body.lines()
            .filter(|l| l.starts_with("{\"ev\":\"round_end\""))
            .count(),
        4,
        "{body}"
    );

    // The stream passes the CLI's own schema validator.
    let out = bin()
        .args(["validate-telemetry", "--file"])
        .arg(&jsonl)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("schema OK"), "{text}");
    assert!(text.contains("1 run(s)"), "{text}");

    // An unknown event kind is tolerated by default (forward-compatible:
    // new kinds are unsequenced observers) but rejected under --strict.
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, format!("{body}{{\"ev\":\"nonsense\"}}\n")).unwrap();
    let out = bin()
        .args(["validate-telemetry", "--file"])
        .arg(&bad)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nonsense"), "{text}");
    let out = bin()
        .args(["validate-telemetry", "--strict", "--file"])
        .arg(&bad)
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line"), "{err}");

    // A malformed line (not even JSON) is rejected in both modes.
    let garbage = dir.join("garbage.jsonl");
    std::fs::write(&garbage, format!("{body}not json\n")).unwrap();
    let out = bin()
        .args(["validate-telemetry", "--file"])
        .arg(&garbage)
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn profile_run_prints_table_and_report_renders_stream() {
    let dir = std::env::temp_dir().join(format!("hm-cli-prof-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("prof.jsonl");
    let out = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--rounds",
            "4",
            "--m",
            "2",
            "--seed",
            "11",
            "--sequential",
            "--profile",
            "--telemetry",
        ])
        .arg(&jsonl)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("per-phase wall-clock profile:"), "{text}");
    for phase in ["round", "phase1_sampling", "local_sgd_chain", "dual_update"] {
        assert!(text.contains(phase), "missing {phase} row: {text}");
    }

    // The stream carries unsequenced span events and stays strict-valid.
    let body = std::fs::read_to_string(&jsonl).unwrap();
    assert!(body.contains("\"ev\":\"span\""), "{body}");
    assert!(body.contains("\"ev\":\"profile_summary\""), "{body}");
    let strict = bin()
        .args(["validate-telemetry", "--strict", "--file"])
        .arg(&jsonl)
        .output()
        .expect("spawn");
    assert!(
        strict.status.success(),
        "{}",
        String::from_utf8_lossy(&strict.stderr)
    );

    // `report` renders the same per-phase totals plus comm + sim/wall.
    let rep = bin()
        .args(["report", "--file"])
        .arg(&jsonl)
        .output()
        .expect("spawn");
    assert!(
        rep.status.success(),
        "{}",
        String::from_utf8_lossy(&rep.stderr)
    );
    let rep = String::from_utf8_lossy(&rep.stdout);
    assert!(rep.contains("run: HierMinimax"), "{rep}");
    assert!(rep.contains("4 round(s) recorded"), "{rep}");
    assert!(rep.contains("per-phase wall-clock profile:"), "{rep}");
    assert!(rep.contains("local_sgd_chain"), "{rep}");
    assert!(rep.contains("client-edge"), "{rep}");
    assert!(rep.contains("no injected faults"), "{rep}");
    assert!(rep.contains("simulated (latency model)"), "{rep}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn report_renders_spliced_resumed_stream() {
    // Crash/resume e2e for the report: a profiled run checkpointed every
    // round, "killed" after round 2, resumed profiled; the spliced stream
    // (writer prefix cut at the checkpoint + resumed suffix) must render
    // with full round coverage and a re-aggregated phase table.
    let dir = std::env::temp_dir().join(format!("hm-cli-prof-splice-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("snaps");
    let w_jsonl = dir.join("writer.jsonl");
    let r_jsonl = dir.join("resumed.jsonl");
    let base = [
        "run",
        "--scenario",
        "tiny",
        "--edges",
        "3",
        "--clients",
        "2",
        "--rounds",
        "4",
        "--m",
        "2",
        "--seed",
        "11",
        "--sequential",
        "--profile",
    ];

    let writer = bin()
        .args(base)
        .args(["--checkpoint-dir"])
        .arg(&ckpt)
        .args(["--checkpoint-every", "1", "--telemetry"])
        .arg(&w_jsonl)
        .output()
        .expect("spawn");
    assert!(
        writer.status.success(),
        "{}",
        String::from_utf8_lossy(&writer.stderr)
    );

    let snap = ckpt.join("hierminimax-round-000002.hmck");
    assert!(snap.exists(), "missing {}", snap.display());
    let resumed = bin()
        .args(base)
        .args(["--resume"])
        .arg(&snap)
        .args(["--telemetry"])
        .arg(&r_jsonl)
        .output()
        .expect("spawn");
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    // Splice: writer prefix through its round-1 (0-based) checkpoint event,
    // then the resumed stream (which opens with its run_resume preamble).
    let w_body = std::fs::read_to_string(&w_jsonl).unwrap();
    let cut = w_body
        .lines()
        .position(|l| l.starts_with("{\"ev\":\"checkpoint\",\"round\":1,"))
        .expect("writer stream lacks the round-1 checkpoint event");
    let mut spliced: Vec<&str> = w_body.lines().take(cut + 1).collect();
    let r_body = std::fs::read_to_string(&r_jsonl).unwrap();
    spliced.extend(r_body.lines());
    let s_jsonl = dir.join("spliced.jsonl");
    std::fs::write(&s_jsonl, spliced.join("\n") + "\n").unwrap();

    let rep = bin()
        .args(["report", "--file"])
        .arg(&s_jsonl)
        .output()
        .expect("spawn");
    assert!(
        rep.status.success(),
        "{}",
        String::from_utf8_lossy(&rep.stderr)
    );
    let rep = String::from_utf8_lossy(&rep.stdout);
    assert!(rep.contains("1 resume splice(s)"), "{rep}");
    assert!(rep.contains("4 round(s) recorded"), "{rep}");
    // The phase table is re-aggregated from raw spans, so it covers all 4
    // rounds even though the stream's profile_summary event only spans the
    // resumed suffix.
    let round_row = rep
        .lines()
        .find(|l| l.starts_with("round "))
        .unwrap_or_else(|| panic!("no round row: {rep}"));
    assert_eq!(
        round_row.split_whitespace().nth(1),
        Some("4"),
        "spliced round span count: {round_row}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_plan_run_reports_faults_and_is_deterministic() {
    let run = || {
        bin()
            .args([
                "run",
                "--scenario",
                "tiny",
                "--edges",
                "3",
                "--clients",
                "2",
                "--rounds",
                "6",
                "--m",
                "2",
                "--fault-plan",
                "chaos",
                "--seed",
                "11",
                "--sequential",
            ])
            .output()
            .expect("spawn")
    };
    let a = run();
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("injected faults:"), "{text}");
    // Same seed, same plan: byte-identical report (keyed fault streams).
    let b = run();
    assert_eq!(a.stdout, b.stdout);
}

#[test]
fn fault_flags_override_preset() {
    // `none` preset plus one knob: only outages fire, and the report says
    // so without any crash or retry counts.
    let out = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--rounds",
            "6",
            "--m",
            "2",
            "--edge-outage",
            "0.5",
            "--seed",
            "3",
            "--sequential",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("injected faults: 0 crashes"), "{text}");
    assert!(!text.contains(" 0 outages"), "{text}");
}

#[test]
fn unknown_fault_plan_is_rejected() {
    let out = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--fault-plan",
            "mayhem",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--fault-plan") && err.contains("chaos"),
        "{err}"
    );
}

#[test]
fn invalid_fault_rate_is_rejected() {
    let out = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--msg-loss",
            "1.5",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("fault plan"), "{err}");
}

#[test]
fn checkpoint_then_resume_reproduces_uninterrupted_run() {
    let dir = std::env::temp_dir().join(format!("hm-cli-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("snaps");
    let base = [
        "run",
        "--scenario",
        "tiny",
        "--edges",
        "3",
        "--clients",
        "2",
        "--rounds",
        "6",
        "--m",
        "2",
        "--seed",
        "11",
        "--eval-every",
        "2",
        "--sequential",
    ];

    let full = bin().args(base).output().expect("spawn");
    assert!(
        full.status.success(),
        "{}",
        String::from_utf8_lossy(&full.stderr)
    );

    // Same run, writing a snapshot every 2 cloud rounds. Checkpointing
    // must not perturb the results.
    let written = bin()
        .args(base)
        .args(["--checkpoint-dir"])
        .arg(&ckpt)
        .args(["--checkpoint-every", "2"])
        .output()
        .expect("spawn");
    assert!(
        written.status.success(),
        "{}",
        String::from_utf8_lossy(&written.stderr)
    );
    assert_eq!(full.stdout, written.stdout);

    // "Crash" after round 4 and resume from its snapshot: bit-identical
    // final report.
    let snap = ckpt.join("hierminimax-round-000004.hmck");
    assert!(snap.exists(), "missing {}", snap.display());
    let resumed = bin()
        .args(base)
        .args(["--resume"])
        .arg(&snap)
        .output()
        .expect("spawn");
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(full.stdout, resumed.stdout);

    // A mismatched run identity is a clean typed error, not a panic.
    let wrong_seed = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--rounds",
            "6",
            "--m",
            "2",
            "--seed",
            "12",
            "--eval-every",
            "2",
            "--sequential",
            "--resume",
        ])
        .arg(&snap)
        .output()
        .expect("spawn");
    assert!(!wrong_seed.status.success());
    let err = String::from_utf8_lossy(&wrong_seed.stderr);
    assert!(err.contains("seed"), "{err}");

    // Corruption is caught by the CRC before anything runs.
    let bad = dir.join("bad.hmck");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&bad, &bytes).unwrap();
    let corrupt = bin()
        .args(base)
        .args(["--resume"])
        .arg(&bad)
        .output()
        .expect("spawn");
    assert!(!corrupt.status.success());
    let err = String::from_utf8_lossy(&corrupt.stderr);
    assert!(err.contains("checksum") || err.contains("CRC"), "{err}");

    std::fs::remove_dir_all(&dir).unwrap();
}

// ---- Golden snapshots -----------------------------------------------------
//
// Byte-exact captures of user-facing output, committed under
// `tests/golden/`. Unlike the substring assertions above, these fail on
// *any* drift — wording, column widths, flag renames — so UI changes are
// always deliberate: regenerate with
// `hierminimax help > tests/golden/help.txt` (etc.) and review the diff.

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn help_matches_golden_snapshot() {
    let out = bin().arg("help").output().expect("spawn");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden("help.txt"));
}

#[test]
fn data_tiny_matches_golden_snapshot() {
    // Deterministic: the tiny scenario is fully determined by
    // (edges, clients, data seed), and `data` runs no training.
    let out = bin()
        .args([
            "data",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden("data_tiny_3x2.txt")
    );
}

#[test]
fn churn_plan_run_reports_membership_and_is_deterministic() {
    let run = || {
        bin()
            .args([
                "run",
                "--scenario",
                "tiny",
                "--edges",
                "4",
                "--clients",
                "2",
                "--rounds",
                "8",
                "--m",
                "2",
                "--churn-plan",
                "chaos-churn",
                "--seed",
                "11",
                "--sequential",
            ])
            .output()
            .expect("spawn")
    };
    let a = run();
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("membership churn:"), "{text}");
    assert!(text.contains("re-homed"), "{text}");
    // Same seed, same plan: byte-identical report (keyed churn streams).
    let b = run();
    assert_eq!(a.stdout, b.stdout);
}

#[test]
fn churn_flags_override_preset() {
    // `none` preset plus one knob: only joins fire, and the report line
    // appears with zero leaves and failures.
    let out = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--rounds",
            "8",
            "--m",
            "2",
            "--join-rate",
            "0.5",
            "--seed",
            "3",
            "--sequential",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("membership churn:"), "{text}");
    assert!(text.contains("0 left, 0 edge failures"), "{text}");
}

#[test]
fn unknown_churn_plan_is_rejected() {
    let out = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--churn-plan",
            "mayhem",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--churn-plan") && err.contains("chaos-churn"),
        "{err}"
    );
}

#[test]
fn churn_plan_requires_hierarchical_method() {
    let out = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--method",
            "fedavg",
            "--churn-plan",
            "mild",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--churn-plan requires"), "{err}");
}

#[test]
fn max_stale_rounds_aborts_with_error() {
    // A total blackout (100% edge outages) never delivers a report; with
    // the cap set the run must abort with the typed stale-rounds error.
    let out = bin()
        .args([
            "run",
            "--scenario",
            "tiny",
            "--edges",
            "3",
            "--clients",
            "2",
            "--rounds",
            "8",
            "--m",
            "2",
            "--edge-outage",
            "1.0",
            "--max-stale-rounds",
            "2",
            "--seed",
            "3",
            "--sequential",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("stale"), "{err}");
}
