//! Scenario construction for the CLI: built-in synthetic scenarios plus
//! real-data loading (IDX images / categorical CSV) with the paper's
//! heterogeneity partitioners.

use crate::args::{ArgError, Args};
use hm_data::generators::adult_like::AdultLikeConfig;
use hm_data::generators::li_synthetic::LiSyntheticConfig;
use hm_data::generators::synthetic_images::ImageConfig;
use hm_data::io;
use hm_data::partition::{partition_by_label, partition_dirichlet, partition_similarity};
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_data::scenarios::{
    adult_two_edges, dirichlet_split, li_synthetic_scenario, linear_sizes,
    one_class_per_edge_sized, similarity_split, tiny_problem, EdgeData, HierScenario,
};
use hm_data::Dataset;
use std::path::Path;

/// Build the scenario selected by `--scenario` (default `emnist`) and its
/// size flags. Supported names: `tiny`, `emnist`, `mnist`, `fashion`,
/// `adult`, `synthetic`, `idx` (real IDX files via `--images`/`--labels`),
/// `csv` (categorical CSV via `--file`).
pub fn build(args: &Args) -> Result<HierScenario, ArgError> {
    let name = args.str_or("scenario", "emnist");
    let edges: usize = args.num_or("edges", 10)?;
    let clients: usize = args.num_or("clients", 3)?;
    let train: usize = args.num_or("train-per-client", 60)?;
    let test: usize = args.num_or("test-per-edge", 300)?;
    let data_seed: u64 = args.num_or("data-seed", 2024)?;
    let imbalance: f64 = args.num_or("imbalance", 0.15)?;
    let similarity: f64 = args.num_or("similarity", 0.5)?;

    let image = |cfg: ImageConfig| -> Result<HierScenario, ArgError> {
        let mut cfg = cfg;
        cfg.num_classes = edges;
        let sizes = linear_sizes(train, imbalance, edges);
        Ok(one_class_per_edge_sized(
            cfg, edges, clients, &sizes, test, data_seed,
        ))
    };

    match name.as_str() {
        "tiny" => Ok(tiny_problem(edges.min(8), clients, data_seed)),
        "emnist" => image(ImageConfig::emnist_digits_like()),
        "mnist" => image(ImageConfig::mnist_like()),
        "fashion" => {
            // The paper's §6.2 scenario: similarity split.
            Ok(similarity_split(
                ImageConfig::fashion_mnist_like(),
                edges,
                clients,
                train * clients,
                similarity,
                0.25,
                data_seed,
            ))
        }
        "dirichlet" => Ok(dirichlet_split(
            ImageConfig::mnist_like(),
            edges,
            clients,
            train * clients,
            args.num_or("alpha", 0.5)?,
            0.25,
            data_seed,
        )),
        "adult" => Ok(adult_two_edges(
            AdultLikeConfig::default(),
            clients,
            train * clients * 10,
            train * clients,
            test,
            data_seed,
        )),
        "synthetic" => Ok(li_synthetic_scenario(
            LiSyntheticConfig::default(),
            edges.max(10),
            clients,
            train,
            test,
            data_seed,
        )),
        "idx" => {
            let images = args.str_or("images", "");
            let labels = args.str_or("labels", "");
            if images.is_empty() || labels.is_empty() {
                return Err(ArgError(
                    "scenario idx requires --images <path> and --labels <path>".into(),
                ));
            }
            let ds = io::load_idx_dataset(Path::new(&images), Path::new(&labels))
                .map_err(|e| ArgError(format!("loading IDX data: {e}")))?;
            partition_real(args, ds, edges, clients, data_seed)
        }
        "csv" => {
            let file = args.str_or("file", "");
            if file.is_empty() {
                return Err(ArgError("scenario csv requires --file <path>".into()));
            }
            let ds = io::load_categorical_csv(Path::new(&file))
                .map_err(|e| ArgError(format!("loading CSV data: {e}")))?;
            partition_real(args, ds, edges, clients, data_seed)
        }
        other => Err(ArgError(format!(
            "unknown scenario {other:?} (tiny|emnist|mnist|fashion|dirichlet|adult|synthetic|idx|csv)"
        ))),
    }
}

/// Partition a real dataset across edges (`--partition label|similarity`),
/// holding out 25% of each edge's shard as its test set.
fn partition_real(
    args: &Args,
    ds: Dataset,
    edges: usize,
    clients: usize,
    data_seed: u64,
) -> Result<HierScenario, ArgError> {
    let how = args.str_or("partition", "similarity");
    let similarity: f64 = args.num_or("similarity", 0.5)?;
    let shards = match how.as_str() {
        "label" => partition_by_label(&ds, edges),
        "similarity" => {
            let mut rng = StreamRng::for_key(StreamKey::new(data_seed, Purpose::Split, 0, 0));
            partition_similarity(&ds, edges, similarity, &mut rng)
        }
        "dirichlet" => {
            let alpha = args.num_or("alpha", 0.5)?;
            let mut rng = StreamRng::for_key(StreamKey::new(data_seed, Purpose::Split, 0, 0));
            partition_dirichlet(&ds, edges, alpha, &mut rng)
        }
        other => {
            return Err(ArgError(format!(
                "unknown partition {other:?} (label|similarity|dirichlet)"
            )))
        }
    };
    let mut out = Vec::with_capacity(shards.len());
    for (e, shard) in shards.into_iter().enumerate() {
        if shard.len() < clients * 2 {
            return Err(ArgError(format!(
                "edge {e} received only {} samples — too few for {clients} clients",
                shard.len()
            )));
        }
        let mut srng = StreamRng::for_key(StreamKey::new(data_seed, Purpose::Split, 1, e as u64));
        let (train, test) = shard.train_test_split(0.25, &mut srng);
        out.push(EdgeData {
            client_train: train.split_even(clients),
            test,
        });
    }
    Ok(HierScenario {
        name: format!("real-{how}"),
        num_classes: ds.num_classes,
        dim: ds.dim(),
        edges: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        let v: Vec<String> = s.split_whitespace().map(String::from).collect();
        Args::parse(&v).unwrap()
    }

    #[test]
    fn builds_every_builtin() {
        for sc in [
            "tiny",
            "emnist",
            "mnist",
            "fashion",
            "dirichlet",
            "adult",
            "synthetic",
        ] {
            // --alpha only affects the dirichlet scenario (near-iid split
            // so no edge starves at this tiny size).
            let a = args(&format!(
                "run --scenario {sc} --edges 10 --clients 2 --train-per-client 12                  --test-per-edge 20 --alpha 50"
            ));
            let s = build(&a).unwrap_or_else(|e| panic!("{sc}: {e}"));
            s.validate();
        }
    }

    #[test]
    fn unknown_scenario_rejected() {
        let a = args("run --scenario nope");
        assert!(build(&a).is_err());
    }

    #[test]
    fn idx_requires_paths() {
        let a = args("run --scenario idx");
        let err = build(&a).unwrap_err();
        assert!(err.0.contains("--images"));
    }

    #[test]
    fn csv_scenario_roundtrips() {
        let dir = std::env::temp_dir().join(format!("hm-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("toy.csv");
        let mut body = String::new();
        for i in 0..120 {
            body.push_str(&format!("a{}, b{}, c{}\n", i % 4, i % 3, i % 2));
        }
        std::fs::write(&p, body).unwrap();
        let a = args(&format!(
            "run --scenario csv --file {} --edges 2 --clients 2 --partition similarity",
            p.display()
        ));
        let s = build(&a).unwrap();
        s.validate();
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.num_classes, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
