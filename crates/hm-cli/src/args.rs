//! Minimal flag parser for the CLI (no external dependency: the flag
//! grammar is tiny and a hand-rolled parser keeps the build hermetic).
//!
//! Grammar: `hierminimax <subcommand> [--flag value | --switch]…`.
//! Every flag is `--kebab-case` with exactly zero or one value.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus flag → value pairs (switches map
/// to an empty string).
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first positional argument.
    pub subcommand: String,
    flags: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Parse failure with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse a raw argv (without the program name).
    pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
        let mut it = argv.iter().peekable();
        let subcommand = match it.next() {
            Some(s) if !s.starts_with("--") => s.clone(),
            Some(s) => return Err(ArgError(format!("expected a subcommand, got flag {s}"))),
            None => return Err(ArgError("missing subcommand".into())),
        };
        let mut flags = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {tok:?}")));
            };
            if name.is_empty() {
                return Err(ArgError("empty flag name".into()));
            }
            // A value is the next token unless it is another flag.
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = (*v).clone();
                    it.next();
                    v
                }
                _ => String::new(),
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(ArgError(format!("duplicate flag --{name}")));
            }
        }
        Ok(Args {
            subcommand,
            flags,
            consumed: Default::default(),
        })
    }

    fn take(&self, name: &str) -> Option<&String> {
        let v = self.flags.get(name);
        if v.is_some() {
            self.consumed.borrow_mut().push(name.to_string());
        }
        v
    }

    /// String flag with a default.
    pub fn str_or(&self, name: &str, default: &str) -> String {
        self.take(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Typed numeric flag with a default.
    ///
    /// # Errors
    /// Fails when the value does not parse.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.take(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// Boolean switch: present (with no value or `true`) = true.
    pub fn switch(&self, name: &str) -> bool {
        matches!(self.take(name).map(String::as_str), Some("") | Some("true"))
    }

    /// Error on any flag that no handler consumed — catches typos like
    /// `--ruonds 10` instead of silently ignoring them.
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<&String> = self
            .flags
            .keys()
            .filter(|k| !consumed.contains(k))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ArgError(format!(
                "unknown flag(s): {}",
                unknown
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = Args::parse(&argv("run --rounds 10 --method hierminimax --trace")).unwrap();
        assert_eq!(a.subcommand, "run");
        assert_eq!(a.num_or("rounds", 0usize).unwrap(), 10);
        assert_eq!(a.str_or("method", ""), "hierminimax");
        assert!(a.switch("trace"));
        assert!(!a.switch("absent"));
        a.reject_unknown().unwrap();
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv("run")).unwrap();
        assert_eq!(a.num_or("rounds", 7usize).unwrap(), 7);
        assert_eq!(a.str_or("method", "hierminimax"), "hierminimax");
    }

    #[test]
    fn missing_subcommand_rejected() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv("--rounds 3")).is_err());
    }

    #[test]
    fn bad_number_rejected() {
        let a = Args::parse(&argv("run --rounds banana")).unwrap();
        let err = a.num_or("rounds", 0usize).unwrap_err();
        assert!(err.0.contains("banana"));
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(Args::parse(&argv("run --x 1 --x 2")).is_err());
    }

    #[test]
    fn unknown_flags_detected() {
        let a = Args::parse(&argv("run --rounds 5 --ruonds 10")).unwrap();
        let _ = a.num_or("rounds", 0usize).unwrap();
        let err = a.reject_unknown().unwrap_err();
        assert!(err.0.contains("--ruonds"), "{err}");
    }

    #[test]
    fn stray_positional_rejected() {
        assert!(Args::parse(&argv("run extra")).is_err());
    }

    #[test]
    fn negative_numbers_parse_as_values() {
        let a = Args::parse(&argv("run --eta -0.5")).unwrap();
        assert_eq!(a.num_or("eta", 0.0_f64).unwrap(), -0.5);
    }
}
