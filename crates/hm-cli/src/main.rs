//! `hierminimax` — the command-line interface of the reproduction.
//!
//! Run `hierminimax help` for usage. See the `commands` module for the
//! subcommands and `scenario` for the data options.

mod args;
mod commands;
mod scenario;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            return ExitCode::FAILURE;
        }
    };
    // The library crates signal configuration errors with panics (they are
    // programming errors at the API boundary); at the CLI boundary they are
    // user errors, so translate them into clean messages. The panic hook is
    // silenced to avoid the backtrace banner.
    std::panic::set_hook(Box::new(|_| {}));
    // AssertUnwindSafe: `parsed` holds a RefCell for flag-consumption
    // tracking, but it is dropped immediately after a panic, so no broken
    // invariant can be observed.
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| commands::dispatch(&parsed)));
    match result {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("invalid configuration");
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
