//! The CLI subcommands.

use crate::args::{ArgError, Args};
use crate::scenario;
use hm_core::algorithms::{
    AflConfig, Algorithm, Drfa, DrfaConfig, FedAvg, FedAvgConfig, FedProx, FedProxConfig, HierFavg,
    HierFavgConfig, HierMinimax, HierMinimaxConfig, MultiLevelConfig, MultiLevelMinimax, QFedAvg,
    QfflConfig, RunOpts, StochasticAfl, UpperLevel,
};
use hm_core::duality::{duality_gap, GapConfig};
use hm_core::metrics::evaluate;
use hm_core::problem::FederatedProblem;
use hm_core::{CheckpointOpts, RunResult};
use hm_data::partition::label_skew;
use hm_simnet::{
    AttackModel, ChurnPlan, ExecEngine, FaultPlan, LatencyModel, Link, Parallelism, Quantizer,
    ATTACK_MODELS, CHURN_PRESETS, FAULT_PRESETS,
};
use hm_telemetry::{PhaseAgg, Profiler, SpanAggregator, Telemetry};
use hm_tensor::{Aggregator, AGGREGATORS};

/// Dispatch a parsed command line. Returns the process exit code.
pub fn dispatch(args: &Args) -> Result<(), ArgError> {
    match args.subcommand.as_str() {
        "run" => run(args),
        "compare" => compare(args),
        "gap" => gap(args),
        "data" => data(args),
        "eval" => eval_model(args),
        "validate-telemetry" => validate_telemetry(args),
        "report" => report_stream(args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(ArgError(format!(
            "unknown subcommand {other:?}\n\n{}",
            usage()
        ))),
    }
}

/// The usage text.
pub fn usage() -> &'static str {
    "hierminimax — distributed minimax fair optimization over hierarchical networks

USAGE:
  hierminimax <run|compare|gap|data|eval|report|help> [flags]

SUBCOMMANDS:
  run       run one algorithm and report fairness + communication
  compare   run all five methods of the paper with a matched budget
            (--extended adds FedProx, q-FedAvg and 4-layer MultiLevel)
  gap       run HierMinimax and report the convex duality gap (Theorem 1)
  data      build a scenario and print its heterogeneity statistics
  eval      evaluate a saved model (--model PATH) on a scenario
  validate-telemetry   check a telemetry JSONL file (--file PATH) against
            the event schema (DESIGN.md par. 10) and print a summary
            (--strict rejects event kinds unknown to this build)
  report    render a telemetry JSONL file (--file PATH) into a run report:
            per-phase profile, per-link communication, fault/retry totals,
            simulated vs wall-clock time (DESIGN.md par. 13)

SCENARIO FLAGS (all subcommands):
  --scenario tiny|emnist|mnist|fashion|dirichlet|adult|synthetic|idx|csv  (default emnist)
  --edges N --clients N --train-per-client N --test-per-edge N
  --imbalance F       smallest edge's data fraction (default 0.15)
  --similarity F      s of the similarity split (default 0.5)
  --data-seed N
  --images P --labels P    (scenario idx: IDX image/label files)
  --file P                 (scenario csv: categorical CSV)
  --partition label|similarity|dirichlet   (real-data scenarios)\n  --alpha F             Dirichlet concentration (default 0.5)

ALGORITHM FLAGS (run):
  --method hierminimax|hierfavg|fedavg|fedprox|afl|drfa|qffl|multilevel
                        (default hierminimax)
  --rounds N --tau1 N --tau2 N --m N
  --eta-w F --eta-p F --batch N --loss-batch N
  --q F                 (qffl) fairness exponent
  --mu F                (fedprox) proximal coefficient
  --group-size N --tau3 N   (multilevel) region grouping and period
  --quant-bits N        quantize uplinks at N bits (0 = exact)
  --dropout F           per-block client dropout probability (hier. methods)

FAULT-INJECTION FLAGS (run, compare; deterministic per seed):
  --fault-plan NAME     none|flaky-clients|edge-outages|lossy-wan|stragglers|chaos|byzantine
                        (default none; presets override --dropout)
  --client-crash F --edge-outage F --msg-loss F
                        per-block/round/attempt probabilities overriding the preset
  --max-retries N --backoff-base F
                        bounded retransmission of lost edge-cloud messages
                        (exponential backoff in simulated seconds)
  --backoff-jitter F    keyed multiplicative jitter on retry backoff (0 = off)
  --straggler-rate F --straggler-slowdown F --deadline-factor F
                        compute stragglers; slower than the deadline is cut

MEMBERSHIP-CHURN FLAGS (run; hierminimax and hierfavg only):
  --churn-plan NAME     none|mild|flash-crowd|edge-failover|chaos-churn
                        (default none; deterministic per seed)
  --leave-rate F --join-rate F --edge-fail-rate F
                        per-round probabilities overriding the preset
  --no-rehome           strand a failed edge's clients instead of
                        re-homing them onto surviving edges
  --max-stale-rounds N  abort with an error after N+1 consecutive rounds
                        in which no sampled edge reported (0 = never)

BYZANTINE-ADVERSARY FLAGS (run, compare; deterministic per seed):
  --corrupt-rate F      per-client per-block corruption probability
  --attack NAME         sign-flip|scale|noise|zero|collude (default sign-flip)
  --attack-scale F      attack magnitude kappa (sign-flip/scale/noise)
  --aggregator NAME     mean|trimmed-mean|coordinate-median|norm-clip
                        robust client->edge and edge->cloud reduction
  --trim-beta F         (trimmed-mean) per-side trim fraction in [0, 0.5)
  --clip-tau F          (norm-clip) clipping radius on update norms
  --quarantine-z F      update-norm z-score threshold; outliers sit out
                        (0 = quarantine off)
  --quarantine-window N rounds a quarantined client is excluded (default 5)

CHECKPOINT/RESUME FLAGS (run; see DESIGN.md par. 12):
  --checkpoint-dir P    write crash-consistent snapshots (atomic rename +
                        CRC32) at cloud-round boundaries
  --checkpoint-every N  snapshot cadence in cloud rounds (default 1)
  --resume PATH         resume from a snapshot; must match the run's
                        method, --seed and --rounds, and continues
                        bit-identically to the uninterrupted run
  --mlp W1,W2,...       use an MLP with these hidden widths
  --cnn                 use the SimpleCnn model (square inputs only)
  --seed N --eval-every N --sequential --csv PATH
  --engine chained|barrier  round scheduling engine (default chained; both
                        bit-identical — barrier is the benchmark baseline)
  --telemetry PATH      write structured run telemetry (JSONL, one event
                        per line; see DESIGN.md par. 10)
  --profile             collect per-phase wall-clock spans and print the
                        summary table; with --telemetry also writes span
                        events for later `report` (never perturbs the run)
  --save-model PATH     (run) save the final model
  --model PATH          (eval) model file to evaluate
"
}

/// Resolve `--fault-plan` (a preset name) plus the per-knob override
/// flags into a validated [`FaultPlan`].
fn fault_plan(args: &Args) -> Result<FaultPlan, ArgError> {
    let name = args.str_or("fault-plan", "none");
    let mut plan = FaultPlan::preset(&name).ok_or_else(|| {
        ArgError(format!(
            "--fault-plan {name:?} unknown (one of {})",
            FAULT_PRESETS.join("|")
        ))
    })?;
    plan.client_crash = args.num_or("client-crash", plan.client_crash)?;
    plan.edge_outage = args.num_or("edge-outage", plan.edge_outage)?;
    plan.msg_loss = args.num_or("msg-loss", plan.msg_loss)?;
    plan.max_retries = args.num_or("max-retries", plan.max_retries)?;
    plan.backoff_base_s = args.num_or("backoff-base", plan.backoff_base_s)?;
    plan.straggler_rate = args.num_or("straggler-rate", plan.straggler_rate)?;
    plan.straggler_slowdown = args.num_or("straggler-slowdown", plan.straggler_slowdown)?;
    plan.deadline_factor = args.num_or("deadline-factor", plan.deadline_factor)?;
    plan.corrupt_rate = args.num_or("corrupt-rate", plan.corrupt_rate)?;
    let attack = args.str_or("attack", "");
    if !attack.is_empty() {
        plan.attack = AttackModel::parse(&attack).ok_or_else(|| {
            ArgError(format!(
                "--attack {attack:?} unknown (one of {})",
                ATTACK_MODELS.join("|")
            ))
        })?;
    }
    plan.attack_scale = args.num_or("attack-scale", plan.attack_scale)?;
    plan.backoff_jitter = args.num_or("backoff-jitter", plan.backoff_jitter)?;
    plan.validate()
        .map_err(|e| ArgError(format!("fault plan: {e}")))?;
    Ok(plan)
}

/// Resolve `--churn-plan` (a preset name) plus the per-knob override
/// flags into a validated [`ChurnPlan`].
fn churn_plan(args: &Args) -> Result<ChurnPlan, ArgError> {
    let name = args.str_or("churn-plan", "none");
    let mut plan = ChurnPlan::preset(&name).ok_or_else(|| {
        ArgError(format!(
            "--churn-plan {name:?} unknown (one of {})",
            CHURN_PRESETS.join("|")
        ))
    })?;
    plan.leave_rate = args.num_or("leave-rate", plan.leave_rate)?;
    plan.join_rate = args.num_or("join-rate", plan.join_rate)?;
    plan.edge_fail_rate = args.num_or("edge-fail-rate", plan.edge_fail_rate)?;
    if args.switch("no-rehome") {
        plan.rehome = false;
    }
    plan.validate()
        .map_err(|e| ArgError(format!("churn plan: {e}")))?;
    Ok(plan)
}

/// Resolve `--aggregator` plus its per-variant knob flags into a
/// validated [`Aggregator`].
fn aggregator(args: &Args) -> Result<Aggregator, ArgError> {
    let name = args.str_or("aggregator", "mean");
    let agg = match name.as_str() {
        "mean" => Aggregator::Mean,
        "trimmed-mean" => Aggregator::TrimmedMean {
            beta: args.num_or("trim-beta", 0.1_f32)?,
        },
        "coordinate-median" => Aggregator::CoordinateMedian,
        "norm-clip" => Aggregator::NormClip {
            tau: args.num_or("clip-tau", 1.0_f32)?,
        },
        other => {
            return Err(ArgError(format!(
                "--aggregator {other:?} unknown (one of {})",
                AGGREGATORS.join("|")
            )))
        }
    };
    agg.validate()
        .map_err(|e| ArgError(format!("aggregator: {e}")))?;
    Ok(agg)
}

/// The algorithm display name a `--method` value runs as — what a resume
/// snapshot's `algorithm` field must match.
fn method_algorithm_name(method: &str) -> &str {
    match method {
        "hierminimax" => "HierMinimax",
        "hierfavg" => "HierFAVG",
        "fedavg" => "FedAvg",
        "fedprox" => "FedProx",
        "afl" => "Stochastic-AFL",
        "drfa" => "DRFA",
        "qffl" => "q-FedAvg",
        "multilevel" => "MultiLevelMinimax",
        other => other, // rejected later by build_algorithm
    }
}

/// Resolve `--checkpoint-dir`, `--checkpoint-every` and `--resume` into
/// [`CheckpointOpts`]. A resume snapshot is read and validated here so
/// corruption or a run-identity mismatch is a clean CLI error instead of
/// a panic inside the run loop.
fn checkpoint_opts(args: &Args) -> Result<CheckpointOpts, ArgError> {
    let dir = args.str_or("checkpoint-dir", "");
    let every_raw = args.str_or("checkpoint-every", "");
    let resume = args.str_or("resume", "");
    let mut ck = CheckpointOpts::default();
    if dir.is_empty() {
        if !every_raw.is_empty() {
            return Err(ArgError(
                "--checkpoint-every requires --checkpoint-dir".into(),
            ));
        }
    } else {
        let every: usize = if every_raw.is_empty() {
            1
        } else {
            every_raw
                .parse()
                .map_err(|_| ArgError(format!("--checkpoint-every: cannot parse {every_raw:?}")))?
        };
        if every == 0 {
            return Err(ArgError("--checkpoint-every must be at least 1".into()));
        }
        ck = CheckpointOpts::writing(&dir, every);
    }
    if !resume.is_empty() {
        let snap = hm_checkpoint::read_snapshot(std::path::Path::new(&resume))
            .map_err(|e| ArgError(format!("--resume {resume}: {e}")))?;
        let method = args.str_or("method", "hierminimax");
        let algorithm = method_algorithm_name(&method).to_string();
        let seed = args.num_or("seed", 7_u64)?;
        let rounds = args.num_or("rounds", 500_usize)?;
        snap.validate_for(&algorithm, seed, rounds)
            .map_err(|e| ArgError(format!("--resume {resume}: {e}")))?;
        ck.resume = Some(std::sync::Arc::new(snap));
    }
    Ok(ck)
}

fn opts(args: &Args) -> Result<RunOpts, ArgError> {
    let telemetry_path = args.str_or("telemetry", "");
    let telemetry = if telemetry_path.is_empty() {
        Telemetry::disabled()
    } else {
        Telemetry::jsonl(&telemetry_path)
            .map_err(|e| ArgError(format!("--telemetry {telemetry_path}: {e}")))?
    };
    Ok(RunOpts {
        eval_every: args.num_or("eval-every", 0)?,
        parallelism: if args.switch("sequential") {
            Parallelism::Sequential
        } else {
            Parallelism::Rayon
        },
        trace: false,
        telemetry,
        fault: fault_plan(args)?,
        checkpoint: checkpoint_opts(args)?,
        engine: match args.str_or("engine", "chained").as_str() {
            "chained" => ExecEngine::Chained,
            "barrier" => ExecEngine::Barrier,
            other => {
                return Err(ArgError(format!(
                    "--engine {other:?} unknown (chained|barrier)"
                )))
            }
        },
        profile: if args.switch("profile") {
            Profiler::enabled()
        } else {
            Profiler::disabled()
        },
        aggregator: aggregator(args)?,
        quarantine_z: args.num_or("quarantine-z", 0.0_f64)?,
        quarantine_window: args.num_or("quarantine-window", 5_usize)?,
        churn: churn_plan(args)?,
        max_stale_rounds: args.num_or("max-stale-rounds", 0_usize)?,
    })
}

fn build_problem(args: &Args) -> Result<FederatedProblem, ArgError> {
    let sc = scenario::build(args)?;
    let mlp = args.str_or("mlp", "");
    if args.switch("cnn") {
        let side = (sc.dim as f64).sqrt() as usize;
        if side * side != sc.dim {
            return Err(ArgError(format!(
                "--cnn needs square inputs; got dim {}",
                sc.dim
            )));
        }
        // Two 3x3 conv blocks with 2x2 pooling need at least 10x10 inputs.
        if side < 10 {
            return Err(ArgError(format!(
                "--cnn needs inputs of at least 10x10; got {side}x{side}"
            )));
        }
        let model = hm_nn::SimpleCnn::new(side, 3, 4, 8, 32, sc.num_classes);
        return Ok(FederatedProblem::new(
            sc,
            std::sync::Arc::new(model),
            hm_optim::ProjectionOp::Unconstrained,
            hm_optim::ProjectionOp::Simplex,
        ));
    }
    if mlp.is_empty() {
        Ok(FederatedProblem::logistic_from_scenario(&sc))
    } else {
        let hidden: Result<Vec<usize>, _> = mlp.split(',').map(str::parse).collect();
        let hidden = hidden.map_err(|_| ArgError(format!("--mlp: cannot parse {mlp:?}")))?;
        Ok(FederatedProblem::mlp_from_scenario(&sc, &hidden))
    }
}

fn quantizer(args: &Args) -> Result<Quantizer, ArgError> {
    let bits: u8 = args.num_or("quant-bits", 0)?;
    Ok(match bits {
        0 => Quantizer::Exact,
        b if (1..=16).contains(&b) => Quantizer::Stochastic { bits: b },
        b => return Err(ArgError(format!("--quant-bits {b} out of 0..=16"))),
    })
}

/// Build the selected algorithm. Also returns a clone of the shared
/// [`RunOpts`] so the caller keeps live handles (telemetry, profiler)
/// into the run it is about to start.
#[allow(clippy::too_many_lines)]
fn build_algorithm(args: &Args) -> Result<(Box<dyn Algorithm>, RunOpts), ArgError> {
    let method = args.str_or("method", "hierminimax");
    let rounds = args.num_or("rounds", 500)?;
    let tau1 = args.num_or("tau1", 2)?;
    let tau2 = args.num_or("tau2", 2)?;
    let m = args.num_or("m", 2)?;
    let eta_w = args.num_or("eta-w", 0.02_f32)?;
    let eta_p = args.num_or("eta-p", 0.005_f32)?;
    let batch_size = args.num_or("batch", 2)?;
    let loss_batch = args.num_or("loss-batch", 16)?;
    let opts = opts(args)?;
    if !opts.churn.is_none() && method != "hierminimax" && method != "hierfavg" {
        return Err(ArgError(format!(
            "--churn-plan requires --method hierminimax|hierfavg (got {method:?})"
        )));
    }
    let handles = opts.clone();
    let quant = quantizer(args)?;
    let alg: Box<dyn Algorithm> = match method.as_str() {
        "hierminimax" => Box::new(HierMinimax::new(HierMinimaxConfig {
            rounds,
            tau1,
            tau2,
            m_edges: m,
            eta_w,
            eta_p,
            batch_size,
            loss_batch,
            weight_update_model: Default::default(),
            quantizer: quant,
            dropout: args.num_or("dropout", 0.0)?,
            tau2_per_edge: None,
            opts,
        })),
        "hierfavg" => Box::new(HierFavg::new(HierFavgConfig {
            rounds,
            tau1,
            tau2,
            m_edges: m,
            eta_w,
            batch_size,
            quantizer: quant,
            dropout: args.num_or("dropout", 0.0)?,
            opts,
        })),
        "fedavg" => Box::new(FedAvg::new(FedAvgConfig {
            rounds,
            tau1,
            m_clients: m,
            eta_w,
            batch_size,
            opts,
        })),
        "fedprox" => Box::new(FedProx::new(FedProxConfig {
            rounds,
            tau1,
            m_clients: m,
            mu: args.num_or("mu", 0.1)?,
            eta_w,
            batch_size,
            opts,
        })),
        "afl" => Box::new(StochasticAfl::new(AflConfig {
            rounds,
            m_clients: m,
            eta_w,
            eta_q: eta_p,
            batch_size,
            loss_batch,
            opts,
        })),
        "drfa" => Box::new(Drfa::new(DrfaConfig {
            rounds,
            tau1,
            m_clients: m,
            eta_w,
            eta_q: eta_p,
            batch_size,
            loss_batch,
            opts,
        })),
        "qffl" => Box::new(QFedAvg::new(QfflConfig {
            rounds,
            tau1,
            m_clients: m,
            q: args.num_or("q", 1.0)?,
            eta_w,
            batch_size,
            loss_batch,
            opts,
        })),
        "multilevel" => Box::new(MultiLevelMinimax::new(MultiLevelConfig {
            rounds,
            tau1,
            tau2,
            upper: vec![UpperLevel {
                group_size: args.num_or("group-size", 2)?,
                tau: args.num_or("tau3", 2)?,
            }],
            m_groups: m,
            eta_w,
            eta_p,
            batch_size,
            loss_batch,
            dropout: args.num_or("dropout", 0.0)?,
            opts,
        })),
        other => {
            return Err(ArgError(format!(
                "unknown method {other:?} (hierminimax|hierfavg|fedavg|fedprox|afl|drfa|qffl|multilevel)"
            )))
        }
    };
    Ok((alg, handles))
}

fn report(problem: &FederatedProblem, name: &str, r: &RunResult) {
    let e = evaluate(problem, &r.final_w, Parallelism::Rayon);
    println!("\n== {name} ==");
    println!(
        "per-edge accuracy: {:?}",
        e.per_edge_accuracy
            .iter()
            .map(|a| (a * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!(
        "average {:.4}   worst {:.4}   variance {:.2} pp^2",
        e.average, e.worst, e.variance_pp
    );
    println!("final weights p: {:?}", r.final_p);
    let slots = r.history.rounds.last().map_or(0, |rec| rec.slots_done);
    println!(
        "communication: {} cloud rounds, {} local rounds, {:.2e} floats; {} slots",
        r.comm.cloud_rounds(),
        r.comm.rounds(Link::ClientEdge),
        r.comm.total_floats() as f64,
        slots
    );
    // Serial accounting (edge_areas = 1): the CLI summary does not know how
    // many edge areas the method ran in parallel, so it reports the
    // conservative bound. Telemetry `round_end.sim_s` uses the per-method
    // edge-parallel accounting (see `LatencyModel::simulated_seconds_parallel`).
    let mec = LatencyModel::mobile_edge();
    println!(
        "simulated wall-clock (mobile-edge model): {:.1} s",
        mec.simulated_seconds(&r.comm, slots)
    );
    let f = &r.faults;
    if f.total() > 0 || f.straggler_slots > 0.0 {
        println!(
            "injected faults: {} crashes, {} outages, {} retries ({} gave up), \
             {} deadline misses; +{:.2} s backoff, +{:.1} straggler slots",
            f.crashes,
            f.outages,
            f.retries,
            f.gave_up,
            f.deadline_missed,
            f.backoff_s,
            f.straggler_slots
        );
    }
    let q = &r.quarantine;
    if q.total() > 0 {
        println!(
            "adversary: {} corrupted updates, {} clients quarantined, \
             {} uploads excluded",
            q.corrupted_updates, q.quarantined_clients, q.excluded_uploads
        );
    }
    let c = &r.churn;
    if c.total() > 0 {
        println!(
            "membership churn: {} joined, {} left, {} edge failures; \
             {} clients re-homed, {} stranded",
            c.joined, c.left, c.edge_failures, c.rehomed, c.stranded
        );
    }
}

fn run(args: &Args) -> Result<(), ArgError> {
    let problem = build_problem(args)?;
    let (alg, handles) = build_algorithm(args)?;
    let seed = args.num_or("seed", 7_u64)?;
    let csv = args.str_or("csv", "");
    let save_model = args.str_or("save-model", "");
    args.reject_unknown()?;
    println!(
        "problem: {} ({} edges x {} clients, d = {})",
        problem.scenario.name,
        problem.num_edges(),
        problem.clients_per_edge(),
        problem.num_params()
    );
    let r = alg
        .try_run(&problem, seed)
        .map_err(|e| ArgError(e.to_string()))?;
    report(&problem, alg.name(), &r);
    if handles.profile.is_enabled() {
        print_phase_table(&handles.profile.summary());
    }
    if !csv.is_empty() {
        std::fs::write(&csv, r.history.to_csv())
            .map_err(|e| ArgError(format!("writing {csv}: {e}")))?;
        println!("history written to {csv}");
    }
    if !save_model.is_empty() {
        hm_data::persist::save_params(std::path::Path::new(&save_model), &r.final_w)
            .map_err(|e| ArgError(format!("saving model: {e}")))?;
        println!("model written to {save_model}");
    }
    Ok(())
}

fn eval_model(args: &Args) -> Result<(), ArgError> {
    let problem = build_problem(args)?;
    let model_path = args.str_or("model", "");
    if model_path.is_empty() {
        return Err(ArgError("eval requires --model <path>".into()));
    }
    args.reject_unknown()?;
    let w = hm_data::persist::load_params(std::path::Path::new(&model_path))
        .map_err(|e| ArgError(format!("loading model: {e}")))?;
    if w.len() != problem.num_params() {
        return Err(ArgError(format!(
            "model has {} parameters but the scenario needs {}",
            w.len(),
            problem.num_params()
        )));
    }
    let e = evaluate(&problem, &w, Parallelism::Rayon);
    println!("per-edge accuracy: {:?}", e.per_edge_accuracy);
    println!(
        "average {:.4}   worst {:.4}   variance {:.2} pp^2",
        e.average, e.worst, e.variance_pp
    );
    Ok(())
}

fn validate_telemetry(args: &Args) -> Result<(), ArgError> {
    let path = args.str_or("file", "");
    if path.is_empty() {
        return Err(ArgError("validate-telemetry requires --file <path>".into()));
    }
    let strict = args.switch("strict");
    args.reject_unknown()?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| ArgError(format!("reading {path}: {e}")))?;
    let summary = if strict {
        hm_telemetry::validate_stream_strict(&text)
    } else {
        hm_telemetry::validate_stream(&text)
    }
    .map_err(|e| ArgError(format!("{path}: {e}")))?;
    println!(
        "{path}: {} event line(s), {} run(s), schema OK{}",
        summary.lines,
        summary.runs,
        if strict { " (strict)" } else { "" }
    );
    for (kind, count) in &summary.events_by_kind {
        println!("  {kind:<12} {count}");
    }
    Ok(())
}

/// Print a per-phase wall-clock table (`run --profile` and `report`).
fn print_phase_table(phases: &[PhaseAgg]) {
    println!("\nper-phase wall-clock profile:");
    if phases.is_empty() {
        println!("  (no spans recorded)");
        return;
    }
    println!(
        "{:<18}{:>8}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "phase", "count", "total s", "mean s", "p50 s", "p90 s", "max s"
    );
    for p in phases {
        let mean = p.total_s / p.count.max(1) as f64;
        println!(
            "{:<18}{:>8}{:>12.6}{:>12.6}{:>12.6}{:>12.6}{:>12.6}",
            p.phase, p.count, p.total_s, mean, p.p50_s, p.p90_s, p.max_s
        );
    }
}

/// Everything `report` extracts from one pass over a telemetry stream.
#[derive(Default)]
struct StreamDigest {
    header: Option<String>,
    resumes: usize,
    rounds: usize,
    wall_rounds_s: f64,
    run_elapsed_s: f64,
    sim_s: f64,
    comm_total: Option<hm_telemetry::json::Json>,
    spans: SpanAggregator,
    summary_phases: Vec<PhaseAgg>,
    crashes: u64,
    outages: u64,
    retries: u64,
    gave_up: u64,
    deadline_missed: u64,
    backoff_s: f64,
    straggler_slots: f64,
    fault_events: usize,
}

impl StreamDigest {
    fn fault_total(&self) -> u64 {
        self.crashes + self.outages + self.retries + self.gave_up + self.deadline_missed
    }
}

/// Fold one validated telemetry event line into the digest.
fn digest_line(d: &mut StreamDigest, v: &hm_telemetry::json::Json) {
    let f = |key: &str| v.get(key).and_then(|x| x.as_f64()).unwrap_or(0.0);
    let u = |key: &str| v.get(key).and_then(|x| x.as_u64()).unwrap_or(0);
    match v.get("ev").and_then(|k| k.as_str()).unwrap_or("") {
        "run_start" => {
            let alg = v.get("algorithm").and_then(|a| a.as_str()).unwrap_or("?");
            d.header.get_or_insert_with(|| {
                format!(
                    "{alg}  seed {}  rounds {}  ({} edges, {} params)",
                    u("seed"),
                    u("rounds"),
                    u("n_edges"),
                    u("num_params")
                )
            });
        }
        "run_resume" => d.resumes += 1,
        "round_end" => {
            d.rounds += 1;
            d.wall_rounds_s += f("elapsed_s");
            // Keep the latest totals so truncated streams still report.
            d.sim_s = f("sim_s");
            d.comm_total = v.get("comm_total").cloned();
        }
        "run_end" => {
            d.sim_s = f("sim_s");
            d.run_elapsed_s = f("elapsed_s");
            d.comm_total = v.get("comm_total").cloned();
        }
        "span" => {
            if let Some(phase) = v.get("phase").and_then(|p| p.as_str()) {
                d.spans.add(phase, f("elapsed_s"));
            }
        }
        "profile_summary" => {
            // Kept only as a fallback: re-aggregating raw spans also covers
            // spliced streams whose summary spans just the resumed suffix.
            if let Some(arr) = v.get("phases").and_then(|p| p.as_arr()) {
                d.summary_phases = arr
                    .iter()
                    .map(|p| {
                        let pf = |key: &str| p.get(key).and_then(|x| x.as_f64()).unwrap_or(0.0);
                        PhaseAgg {
                            phase: p
                                .get("phase")
                                .and_then(|x| x.as_str())
                                .unwrap_or("?")
                                .to_string(),
                            count: p.get("count").and_then(|x| x.as_u64()).unwrap_or(0),
                            total_s: pf("total_s"),
                            min_s: pf("min_s"),
                            max_s: pf("max_s"),
                            p50_s: pf("p50_s"),
                            p90_s: pf("p90_s"),
                            p99_s: pf("p99_s"),
                        }
                    })
                    .collect();
            }
        }
        "fault" => d.fault_events += 1,
        "fault_summary" => {
            d.crashes += u("crashes");
            d.outages += u("outages");
            d.retries += u("retries");
            d.gave_up += u("gave_up");
            d.deadline_missed += u("deadline_missed");
            d.backoff_s += f("backoff_s");
            d.straggler_slots += f("straggler_slots");
        }
        _ => {}
    }
}

/// Render a telemetry JSONL stream into a human-readable run report.
fn report_stream(args: &Args) -> Result<(), ArgError> {
    let path = args.str_or("file", "");
    if path.is_empty() {
        return Err(ArgError("report requires --file <path>".into()));
    }
    args.reject_unknown()?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| ArgError(format!("reading {path}: {e}")))?;
    // Tolerant validation: a report must render streams from newer builds
    // (unknown kinds are unsequenced observers) and spliced resume streams.
    let summary =
        hm_telemetry::validate_stream(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let mut d = StreamDigest::default();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = hm_telemetry::json::parse(line).map_err(|e| ArgError(format!("{path}: {e}")))?;
        digest_line(&mut d, &v);
    }

    println!("telemetry report: {path}");
    println!(
        "run: {}",
        d.header.as_deref().unwrap_or("(no run_start in stream)")
    );
    println!(
        "  {} event line(s), {} run(s), {} resume splice(s), {} round(s) recorded",
        summary.lines, summary.runs, d.resumes, d.rounds
    );

    // Per-phase profile: re-aggregated from raw spans when present (robust
    // across crash/resume splices), else the stream's own summary event.
    let phases = if d.spans.is_empty() {
        d.summary_phases.clone()
    } else {
        d.spans.summary()
    };
    print_phase_table(&phases);

    println!("\ncommunication by link:");
    match &d.comm_total {
        None => println!("  (no round_end/run_end in stream)"),
        Some(comm) => {
            println!(
                "{:<14}{:>14}{:>14}{:>10}{:>10}{:>8}",
                "link", "up floats", "down floats", "up msgs", "down msgs", "rounds"
            );
            let names = ["client-edge", "edge-cloud", "client-cloud"];
            let col = |key: &str, i: usize| -> u64 {
                comm.get(key)
                    .and_then(|a| a.as_arr())
                    .and_then(|a| a.get(i))
                    .and_then(|x| x.as_u64())
                    .unwrap_or(0)
            };
            for (i, name) in names.iter().enumerate() {
                println!(
                    "{:<14}{:>14}{:>14}{:>10}{:>10}{:>8}",
                    name,
                    col("up_floats", i),
                    col("down_floats", i),
                    col("up_msgs", i),
                    col("down_msgs", i),
                    col("rounds", i)
                );
            }
        }
    }

    println!("\nfault/retry summary:");
    if d.fault_total() == 0 && d.straggler_slots == 0.0 && d.fault_events == 0 {
        println!("  no injected faults");
    } else {
        println!(
            "  {} crashes, {} outages, {} retries ({} gave up), {} deadline misses",
            d.crashes, d.outages, d.retries, d.gave_up, d.deadline_missed
        );
        println!(
            "  {} edge-level fault event(s); +{:.3} s backoff, +{:.1} straggler slots",
            d.fault_events, d.backoff_s, d.straggler_slots
        );
    }

    println!("\nsimulated vs wall-clock:");
    println!("  simulated (latency model)    {:>12.3} s", d.sim_s);
    println!("  wall-clock (sum of rounds)   {:>12.3} s", d.wall_rounds_s);
    if d.run_elapsed_s > 0.0 {
        println!("  wall-clock (final segment)   {:>12.3} s", d.run_elapsed_s);
    }
    Ok(())
}

fn compare(args: &Args) -> Result<(), ArgError> {
    if !args.str_or("resume", "").is_empty() {
        return Err(ArgError(
            "--resume applies to a single run; use the run subcommand".into(),
        ));
    }
    let problem = build_problem(args)?;
    let seed = args.num_or("seed", 7_u64)?;
    let rounds = args.num_or("rounds", 500)?;
    let tau1 = args.num_or("tau1", 2)?;
    let tau2 = args.num_or("tau2", 2)?;
    let m = args.num_or("m", 5)?;
    let eta_w = args.num_or("eta-w", 0.02_f32)?;
    let eta_p = args.num_or("eta-p", 0.005_f32)?;
    let batch_size = args.num_or("batch", 1)?;
    let loss_batch = args.num_or("loss-batch", 16)?;
    let opts = opts(args)?;
    let extended = args.switch("extended");
    args.reject_unknown()?;

    let slots = rounds * tau1 * tau2;
    let n0 = problem.clients_per_edge();
    println!(
        "comparing {} methods on {} with a budget of {} slots",
        if extended { 8 } else { 5 },
        problem.scenario.name,
        slots
    );
    let mut algs: Vec<Box<dyn Algorithm>> = vec![
        Box::new(FedAvg::new(FedAvgConfig {
            rounds: slots / tau1,
            tau1,
            m_clients: m * n0,
            eta_w,
            batch_size,
            opts: opts.clone(),
        })),
        Box::new(StochasticAfl::new(AflConfig {
            rounds: slots,
            m_clients: m * n0,
            eta_w,
            eta_q: eta_p,
            batch_size,
            loss_batch,
            opts: opts.clone(),
        })),
        Box::new(Drfa::new(DrfaConfig {
            rounds: slots / tau1,
            tau1,
            m_clients: m * n0,
            eta_w,
            eta_q: eta_p,
            batch_size,
            loss_batch,
            opts: opts.clone(),
        })),
        Box::new(HierFavg::new(HierFavgConfig {
            rounds,
            tau1,
            tau2,
            m_edges: m,
            eta_w,
            batch_size,
            quantizer: Quantizer::Exact,
            dropout: 0.0,
            opts: opts.clone(),
        })),
        Box::new(HierMinimax::new(HierMinimaxConfig {
            rounds,
            tau1,
            tau2,
            m_edges: m,
            eta_w,
            eta_p,
            batch_size,
            loss_batch,
            weight_update_model: Default::default(),
            quantizer: Quantizer::Exact,
            dropout: 0.0,
            tau2_per_edge: None,
            opts: opts.clone(),
        })),
    ];
    if extended {
        algs.push(Box::new(FedProx::new(FedProxConfig {
            rounds: slots / tau1,
            tau1,
            m_clients: m * n0,
            mu: 0.1,
            eta_w,
            batch_size,
            opts: opts.clone(),
        })));
        algs.push(Box::new(QFedAvg::new(QfflConfig {
            rounds: slots / tau1,
            tau1,
            m_clients: m * n0,
            q: 1.0,
            eta_w,
            batch_size,
            loss_batch,
            opts: opts.clone(),
        })));
        if problem.num_edges() % 2 == 0 {
            algs.push(Box::new(MultiLevelMinimax::new(MultiLevelConfig {
                rounds: (slots / (tau1 * tau2 * 2)).max(1),
                tau1,
                tau2,
                upper: vec![UpperLevel {
                    group_size: 2,
                    tau: 2,
                }],
                m_groups: (m / 2).max(1).min(problem.num_edges() / 2),
                eta_w,
                eta_p,
                batch_size,
                loss_batch,
                dropout: 0.0,
                opts: opts.clone(),
            })));
        }
    }
    println!(
        "{:<24}{:>10}{:>10}{:>12}{:>14}",
        "method", "avg", "worst", "var(pp^2)", "cloud rounds"
    );
    for alg in algs {
        let r = alg.run(&problem, seed);
        let e = evaluate(&problem, &r.final_w, Parallelism::Rayon);
        println!(
            "{:<24}{:>10.4}{:>10.4}{:>12.2}{:>14}",
            alg.name(),
            e.average,
            e.worst,
            e.variance_pp,
            r.comm.cloud_rounds()
        );
    }
    Ok(())
}

fn gap(args: &Args) -> Result<(), ArgError> {
    let problem = build_problem(args)?;
    if !args.str_or("mlp", "").is_empty() || args.switch("cnn") {
        return Err(ArgError(
            "gap: the duality gap is defined for the convex (logistic) model".into(),
        ));
    }
    if args.str_or("method", "hierminimax") == "multilevel" {
        return Err(ArgError(
            "gap: multilevel reports group-level weights; use --method hierminimax".into(),
        ));
    }
    let (alg, _) = build_algorithm(args)?;
    let seed = args.num_or("seed", 7_u64)?;
    args.reject_unknown()?;
    let r = alg.run(&problem, seed);
    let g = duality_gap(&problem, &r.avg_w, &r.avg_p, &GapConfig::default());
    println!("primal  max_p F(ŵ, p)   = {:.6}", g.primal);
    println!("dual    min_w F(w, p̂)   ≈ {:.6}", g.dual);
    println!("duality gap              = {:.6}", g.gap);
    println!(
        "(averaged iterates over {} rounds; Theorem 1 predicts the gap",
        r.history.rounds.len()
    );
    println!(" shrinks as O(T^(-(1-alpha)/2)) in the total slot budget T)");
    Ok(())
}

fn data(args: &Args) -> Result<(), ArgError> {
    let sc = scenario::build(args)?;
    args.reject_unknown()?;
    sc.validate();
    println!("scenario: {}", sc.name);
    println!(
        "{} edges x {} clients, dim {}, {} classes",
        sc.num_edges(),
        sc.clients_per_edge(),
        sc.dim,
        sc.num_classes
    );
    let shards: Vec<hm_data::Dataset> = sc.edges.iter().map(|e| e.train_concat()).collect();
    println!(
        "label skew: {:.3} (1.0 = one class per edge, 1/C = iid)",
        label_skew(&shards)
    );
    println!("{:<6}{:>8}{:>8}   class histogram", "edge", "train", "test");
    for (e, edge) in sc.edges.iter().enumerate() {
        let train: usize = edge.client_train.iter().map(|d| d.len()).sum();
        println!(
            "{:<6}{:>8}{:>8}   {:?}",
            e,
            train,
            edge.test.len(),
            shards[e].class_counts()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        let v: Vec<String> = s.split_whitespace().map(String::from).collect();
        Args::parse(&v).unwrap()
    }

    #[test]
    fn run_executes_on_tiny() {
        let a = args(
            "run --scenario tiny --edges 3 --clients 2 --rounds 3 --m 2 --seed 1 --sequential",
        );
        dispatch(&a).unwrap();
    }

    #[test]
    fn every_method_builds() {
        for m in [
            "hierminimax",
            "hierfavg",
            "fedavg",
            "afl",
            "drfa",
            "qffl",
            "multilevel",
        ] {
            let a = args(&format!("run --method {m} --rounds 1"));
            build_algorithm(&a).unwrap_or_else(|e| panic!("{m}: {e}"));
        }
    }

    #[test]
    fn unknown_method_rejected() {
        let a = args("run --method sgd");
        assert!(build_algorithm(&a).is_err());
    }

    #[test]
    fn unknown_flag_rejected_by_run() {
        let a = args("run --scenario tiny --edges 3 --clients 2 --rounds 1 --m 2 --bogus 1");
        let err = dispatch(&a).unwrap_err();
        assert!(err.0.contains("--bogus"), "{err}");
    }

    #[test]
    fn data_prints_stats() {
        let a = args("data --scenario tiny --edges 3 --clients 2");
        dispatch(&a).unwrap();
    }

    #[test]
    fn gap_rejects_mlp() {
        let a = args("gap --scenario tiny --edges 3 --clients 2 --mlp 8 --rounds 1 --m 2");
        assert!(dispatch(&a).is_err());
    }

    #[test]
    fn save_and_eval_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hm-cli-eval-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("m.hmw");
        let a = args(&format!(
            "run --scenario tiny --edges 3 --clients 2 --rounds 3 --m 2 --sequential --save-model {}",
            model.display()
        ));
        dispatch(&a).unwrap();
        let b = args(&format!(
            "eval --scenario tiny --edges 3 --clients 2 --model {}",
            model.display()
        ));
        dispatch(&b).unwrap();
        // Dimension mismatch caught.
        let c = args(&format!(
            "eval --scenario tiny --edges 4 --clients 2 --model {}",
            model.display()
        ));
        assert!(dispatch(&c).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_every_requires_dir() {
        let err = checkpoint_opts(&args("run --checkpoint-every 2")).unwrap_err();
        assert!(err.0.contains("--checkpoint-dir"), "{err}");
    }

    #[test]
    fn checkpoint_every_zero_rejected() {
        let err =
            checkpoint_opts(&args("run --checkpoint-dir /tmp/x --checkpoint-every 0")).unwrap_err();
        assert!(err.0.contains("at least 1"), "{err}");
    }

    #[test]
    fn resume_missing_file_is_clean_error() {
        let err = checkpoint_opts(&args("run --resume /nonexistent/snap.hmck")).unwrap_err();
        assert!(err.0.contains("--resume"), "{err}");
    }

    #[test]
    fn resume_rejected_by_compare() {
        let a = args("compare --scenario tiny --edges 3 --clients 2 --resume x.hmck");
        let err = dispatch(&a).unwrap_err();
        assert!(err.0.contains("run subcommand"), "{err}");
    }

    #[test]
    fn every_method_maps_to_an_algorithm_name() {
        for (m, name) in [
            ("hierminimax", "HierMinimax"),
            ("hierfavg", "HierFAVG"),
            ("fedavg", "FedAvg"),
            ("fedprox", "FedProx"),
            ("afl", "Stochastic-AFL"),
            ("drfa", "DRFA"),
            ("qffl", "q-FedAvg"),
            ("multilevel", "MultiLevelMinimax"),
        ] {
            assert_eq!(method_algorithm_name(m), name);
        }
    }

    #[test]
    fn quant_bits_validation() {
        assert!(quantizer(&args("run --quant-bits 8")).is_ok());
        assert!(quantizer(&args("run --quant-bits 0")).is_ok());
        assert!(quantizer(&args("run --quant-bits 33")).is_err());
    }
}
