//! Byzantine-robust aggregation kernels.
//!
//! Drop-in alternatives to [`vecops::average_present_into`] for the
//! client→edge and edge→cloud reductions: a β-trimmed mean, the
//! coordinate-wise median, and norm-clipped averaging. Like the mean
//! kernels they accumulate in `f64` in a fixed fold order, so results are
//! a pure function of the surviving inputs — bit-identical across
//! executors, engines, and reruns. All kernels are `_into` style and reuse
//! a caller-provided scratch vector, preserving the chained engine's
//! zero-allocation discipline after first use.
//!
//! Slot conventions match `average_present_into`: `slots` is indexed in
//! protocol order, `get` yields `Some(update)` for survivors, every kernel
//! returns the survivor count and leaves `out` untouched when it is zero.

use crate::vecops;

/// Accumulation chunk width for the norm-clip kernel (same tile size and
/// per-element fold order as `vecops::AVG_CHUNK` averaging).
const CLIP_CHUNK: usize = 512;

/// Pluggable reduction used for client→edge and edge→cloud aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Aggregator {
    /// Plain survivor mean — today's `average_present_into`, the frozen
    /// bit-exact reference. With multiplicity weights at the cloud it is
    /// the weighted mean.
    #[default]
    Mean,
    /// Per coordinate: drop the `⌊β·k⌋` smallest and largest survivor
    /// values, average the rest. `beta = 0` degenerates to [`Aggregator::Mean`]
    /// bit-for-bit.
    TrimmedMean {
        /// Trim fraction per side, in `[0, 0.5)`.
        beta: f32,
    },
    /// Per-coordinate median (midpoint of the two central order statistics
    /// for an even survivor count).
    CoordinateMedian,
    /// Mean of survivor deltas from the pre-aggregation base model, each
    /// delta scaled by `min(1, τ/‖δ‖₂)`.
    NormClip {
        /// Clipping radius τ (> 0) on each survivor's update norm.
        tau: f32,
    },
}

/// Names accepted by the CLI `--aggregator` flag, in help order.
pub const AGGREGATORS: [&str; 4] = ["mean", "trimmed-mean", "coordinate-median", "norm-clip"];

impl Aggregator {
    /// Stable string tag used in telemetry events and CLI flags.
    pub fn as_str(&self) -> &'static str {
        match self {
            Aggregator::Mean => "mean",
            Aggregator::TrimmedMean { .. } => "trimmed-mean",
            Aggregator::CoordinateMedian => "coordinate-median",
            Aggregator::NormClip { .. } => "norm-clip",
        }
    }

    /// The aggregator's scalar knob (0 for the knob-free variants).
    pub fn param(&self) -> f64 {
        match *self {
            Aggregator::TrimmedMean { beta } => f64::from(beta),
            Aggregator::NormClip { tau } => f64::from(tau),
            _ => 0.0,
        }
    }

    /// Whether the kernel needs the pre-aggregation base model.
    pub fn needs_base(&self) -> bool {
        matches!(self, Aggregator::NormClip { .. })
    }

    /// Check parameter ranges, returning a description of the first
    /// violation (non-finite knobs are rejected).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Aggregator::TrimmedMean { beta } => {
                if beta.is_finite() && (0.0..0.5).contains(&beta) {
                    Ok(())
                } else {
                    Err(format!("trim beta must be finite in [0, 0.5), got {beta}"))
                }
            }
            Aggregator::NormClip { tau } => {
                if tau.is_finite() && tau > 0.0 {
                    Ok(())
                } else {
                    Err(format!("clip tau must be finite and > 0, got {tau}"))
                }
            }
            _ => Ok(()),
        }
    }

    /// Aggregate the present slots into `out`, returning the survivor
    /// count. `out` is untouched when nothing is present. `base` is the
    /// pre-aggregation model [`Aggregator::NormClip`] clips against
    /// (required for it, ignored otherwise); it must not alias `out`.
    /// `scratch` is kernel working memory, reused across calls.
    ///
    /// The [`Aggregator::Mean`] arm calls `average_present_into` directly,
    /// so a `Mean` run is bit-identical to one that never heard of this
    /// dispatch.
    pub fn aggregate_present_into<S>(
        &self,
        slots: &[S],
        get: impl Fn(&S) -> Option<&[f32]>,
        base: Option<&[f32]>,
        scratch: &mut Vec<f32>,
        out: &mut [f32],
    ) -> usize {
        match *self {
            Aggregator::Mean => vecops::average_present_into(slots, get, out),
            Aggregator::TrimmedMean { beta } => {
                trimmed_mean_present_into(slots, get, beta, scratch, out)
            }
            Aggregator::CoordinateMedian => {
                coordinate_median_present_into(slots, get, scratch, out)
            }
            Aggregator::NormClip { tau } => {
                let base = base.expect("NormClip needs the pre-aggregation base model");
                norm_clip_present_into(slots, get, tau, base, scratch, out)
            }
        }
    }
}

/// Count survivors and check their lengths against `out`.
fn present_count<S>(slots: &[S], get: &impl Fn(&S) -> Option<&[f32]>, out: &[f32]) -> usize {
    let mut k = 0;
    for s in slots {
        if let Some(v) = get(s) {
            assert_eq!(v.len(), out.len(), "aggregation length mismatch");
            k += 1;
        }
    }
    k
}

/// β-trimmed mean of the present slots: per coordinate, sort the `k`
/// survivor values, drop `g = ⌊β·k⌋` from each end (capped so at least one
/// value remains), and average the middle `k − 2g` in ascending order with
/// f64 accumulation. `g == 0` delegates to `average_present_into`, so
/// `beta = 0` is the mean bit-for-bit. Returns the survivor count; `out`
/// is untouched when it is zero.
pub fn trimmed_mean_present_into<S>(
    slots: &[S],
    get: impl Fn(&S) -> Option<&[f32]>,
    beta: f32,
    scratch: &mut Vec<f32>,
    out: &mut [f32],
) -> usize {
    let k = present_count(slots, &get, out);
    if k == 0 {
        return 0;
    }
    let g = ((beta * k as f32).floor() as usize).min((k - 1) / 2);
    if g == 0 {
        return vecops::average_present_into(slots, get, out);
    }
    let kept = (k - 2 * g) as f64;
    for j in 0..out.len() {
        scratch.clear();
        for s in slots {
            if let Some(v) = get(s) {
                scratch.push(v[j]);
            }
        }
        scratch.sort_unstable_by(f32::total_cmp);
        let mut acc = 0.0_f64;
        for &v in &scratch[g..k - g] {
            acc += f64::from(v);
        }
        out[j] = (acc / kept) as f32;
    }
    k
}

/// Coordinate-wise median of the present slots: the middle order statistic
/// for odd `k`, the f64 midpoint of the two central values for even `k`.
/// Returns the survivor count; `out` is untouched when it is zero.
pub fn coordinate_median_present_into<S>(
    slots: &[S],
    get: impl Fn(&S) -> Option<&[f32]>,
    scratch: &mut Vec<f32>,
    out: &mut [f32],
) -> usize {
    let k = present_count(slots, &get, out);
    if k == 0 {
        return 0;
    }
    for j in 0..out.len() {
        scratch.clear();
        for s in slots {
            if let Some(v) = get(s) {
                scratch.push(v[j]);
            }
        }
        scratch.sort_unstable_by(f32::total_cmp);
        out[j] = if k % 2 == 1 {
            scratch[k / 2]
        } else {
            ((f64::from(scratch[k / 2 - 1]) + f64::from(scratch[k / 2])) * 0.5) as f32
        };
    }
    k
}

/// Norm-clipped mean: each survivor's delta `vᵢ − base` is scaled by
/// `cᵢ = min(1, τ/‖vᵢ − base‖₂)` (a zero-norm delta keeps `cᵢ = 1`) and
/// `out = base + (Σ cᵢ·(vᵢ − base)) / k`, accumulated in f64 with the
/// same chunked per-element fold order as the averaging kernels. `base`
/// must not alias `out`. Returns the survivor count; `out` is untouched
/// when it is zero.
pub fn norm_clip_present_into<S>(
    slots: &[S],
    get: impl Fn(&S) -> Option<&[f32]>,
    tau: f32,
    base: &[f32],
    scratch: &mut Vec<f32>,
    out: &mut [f32],
) -> usize {
    assert_eq!(base.len(), out.len(), "norm_clip base length mismatch");
    let k = present_count(slots, &get, out);
    if k == 0 {
        return 0;
    }
    // Pass 1: per-survivor clip factors, in slot order.
    scratch.clear();
    let tau = f64::from(tau);
    for s in slots {
        if let Some(v) = get(s) {
            let norm = vecops::dist2_sq(v, base).sqrt();
            let c = if norm > tau { tau / norm } else { 1.0 };
            scratch.push(c as f32);
        }
    }
    // Pass 2: chunked clipped-delta accumulation.
    let kf = k as f64;
    let mut acc = [0.0_f64; CLIP_CHUNK];
    let mut start = 0;
    while start < out.len() {
        let len = CLIP_CHUNK.min(out.len() - start);
        acc[..len].fill(0.0);
        let mut i = 0;
        for s in slots {
            if let Some(v) = get(s) {
                let c = f64::from(scratch[i]);
                i += 1;
                for ((a, &vj), &bj) in acc[..len]
                    .iter_mut()
                    .zip(&v[start..start + len])
                    .zip(&base[start..start + len])
                {
                    *a += c * (f64::from(vj) - f64::from(bj));
                }
            }
        }
        for ((o, &a), &bj) in out[start..start + len]
            .iter_mut()
            .zip(&acc[..len])
            .zip(&base[start..start + len])
        {
            *o = (f64::from(bj) + a / kf) as f32;
        }
        start += len;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random vector (xorshift), matching the vecops
    /// test idiom.
    fn arb_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1 << 24) as f32) * 4.0 - 2.0
            })
            .collect()
    }

    /// Sources with holes: slot i is absent when bit i of `mask` is set.
    fn sources(n: usize, count: usize, mask: u32, seed: u64) -> Vec<Option<Vec<f32>>> {
        (0..count)
            .map(|i| (mask >> i) & 1 == 0)
            .enumerate()
            .map(|(i, present)| present.then(|| arb_vec(n, seed + i as u64)))
            .collect()
    }

    fn present(slots: &[Option<Vec<f32>>]) -> Vec<&[f32]> {
        slots.iter().filter_map(|s| s.as_deref()).collect()
    }

    // Naive per-coordinate references: independent code paths that gather
    // each column into a fresh Vec, sort, and reduce with the same fold
    // order the kernels specify.

    fn naive_trimmed(srcs: &[&[f32]], beta: f32, n: usize) -> Vec<f32> {
        let k = srcs.len();
        let g = ((beta * k as f32).floor() as usize).min((k - 1) / 2);
        (0..n)
            .map(|j| {
                let mut col: Vec<f32> = srcs.iter().map(|s| s[j]).collect();
                col.sort_by(f32::total_cmp);
                let kept = &col[g..k - g];
                let sum: f64 = kept.iter().map(|&v| f64::from(v)).sum();
                (sum / kept.len() as f64) as f32
            })
            .collect()
    }

    fn naive_median(srcs: &[&[f32]], n: usize) -> Vec<f32> {
        let k = srcs.len();
        (0..n)
            .map(|j| {
                let mut col: Vec<f32> = srcs.iter().map(|s| s[j]).collect();
                col.sort_by(f32::total_cmp);
                if k % 2 == 1 {
                    col[k / 2]
                } else {
                    ((f64::from(col[k / 2 - 1]) + f64::from(col[k / 2])) * 0.5) as f32
                }
            })
            .collect()
    }

    fn naive_clip(srcs: &[&[f32]], tau: f32, base: &[f32]) -> Vec<f32> {
        let factors: Vec<f64> = srcs
            .iter()
            .map(|s| {
                let norm = crate::vecops::dist2_sq(s, base).sqrt();
                let c = if norm > f64::from(tau) {
                    f64::from(tau) / norm
                } else {
                    1.0
                };
                f64::from(c as f32)
            })
            .collect();
        let k = srcs.len() as f64;
        (0..base.len())
            .map(|j| {
                let mut acc = 0.0_f64;
                for (s, &c) in srcs.iter().zip(&factors) {
                    acc += c * (f64::from(s[j]) - f64::from(base[j]));
                }
                (f64::from(base[j]) + acc / k) as f32
            })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn kernels_match_naive_references_bit_for_bit() {
        let mut scratch = Vec::new();
        for n in [1usize, 7, CLIP_CHUNK - 1, CLIP_CHUNK, CLIP_CHUNK + 13] {
            for mask in [0u32, 0b01010, 0b00111] {
                let slots = sources(n, 5, mask, 42 + n as u64);
                let srcs = present(&slots);
                let base = arb_vec(n, 999);
                let k = srcs.len();

                let mut out = vec![0.0; n];
                let got = trimmed_mean_present_into(
                    &slots,
                    |s| s.as_deref(),
                    0.25,
                    &mut scratch,
                    &mut out,
                );
                assert_eq!(got, k);
                assert_eq!(bits(&out), bits(&naive_trimmed(&srcs, 0.25, n)));

                let mut out = vec![0.0; n];
                let got = coordinate_median_present_into(
                    &slots,
                    |s| s.as_deref(),
                    &mut scratch,
                    &mut out,
                );
                assert_eq!(got, k);
                assert_eq!(bits(&out), bits(&naive_median(&srcs, n)));

                let mut out = vec![0.0; n];
                let got = norm_clip_present_into(
                    &slots,
                    |s| s.as_deref(),
                    0.5,
                    &base,
                    &mut scratch,
                    &mut out,
                );
                assert_eq!(got, k);
                assert_eq!(bits(&out), bits(&naive_clip(&srcs, 0.5, &base)));
            }
        }
    }

    #[test]
    fn beta_zero_is_mean_bit_for_bit() {
        let slots = sources(300, 6, 0b010000, 7);
        let mut scratch = Vec::new();
        let mut trimmed = vec![0.0; 300];
        let mut mean = vec![0.0; 300];
        trimmed_mean_present_into(&slots, |s| s.as_deref(), 0.0, &mut scratch, &mut trimmed);
        crate::vecops::average_present_into(&slots, |s| s.as_deref(), &mut mean);
        assert_eq!(bits(&trimmed), bits(&mean));
        // Small survivor sets where ⌊β·k⌋ = 0 also degenerate to the mean.
        let few = sources(64, 3, 0, 8);
        let mut t = vec![0.0; 64];
        let mut m = vec![0.0; 64];
        trimmed_mean_present_into(&few, |s| s.as_deref(), 0.25, &mut scratch, &mut t);
        crate::vecops::average_present_into(&few, |s| s.as_deref(), &mut m);
        assert_eq!(bits(&t), bits(&m));
    }

    #[test]
    fn identical_survivors_are_a_fixpoint() {
        let v = arb_vec(130, 5);
        let slots: Vec<Option<Vec<f32>>> = vec![
            Some(v.clone()),
            None,
            Some(v.clone()),
            Some(v.clone()),
            Some(v.clone()),
        ];
        let base = arb_vec(130, 6);
        let mut scratch = Vec::new();
        for agg in [
            Aggregator::TrimmedMean { beta: 0.25 },
            Aggregator::CoordinateMedian,
            Aggregator::NormClip { tau: 1e6 },
        ] {
            let mut out = vec![0.0; 130];
            let k = agg.aggregate_present_into(
                &slots,
                |s| s.as_deref(),
                Some(&base),
                &mut scratch,
                &mut out,
            );
            assert_eq!(k, 4);
            assert_eq!(bits(&out), bits(&v), "{} not a fixpoint", agg.as_str());
        }
    }

    #[test]
    fn zero_survivors_leave_out_untouched() {
        let slots: Vec<Option<Vec<f32>>> = vec![None, None];
        let base = vec![0.0; 4];
        let mut scratch = Vec::new();
        for agg in [
            Aggregator::Mean,
            Aggregator::TrimmedMean { beta: 0.2 },
            Aggregator::CoordinateMedian,
            Aggregator::NormClip { tau: 1.0 },
        ] {
            let mut out = vec![7.0_f32; 4];
            let k = agg.aggregate_present_into(
                &slots,
                |s| s.as_deref(),
                Some(&base),
                &mut scratch,
                &mut out,
            );
            assert_eq!(k, 0);
            assert_eq!(out, vec![7.0; 4]);
        }
    }

    #[test]
    fn trimmed_mean_drops_an_outlier() {
        let slots: Vec<Option<Vec<f32>>> = vec![
            Some(vec![1.0]),
            Some(vec![1.0]),
            Some(vec![1.0]),
            Some(vec![1000.0]),
            Some(vec![1.0]),
        ];
        let mut scratch = Vec::new();
        let mut out = vec![0.0];
        trimmed_mean_present_into(&slots, |s| s.as_deref(), 0.2, &mut scratch, &mut out);
        assert_eq!(out, vec![1.0]);
    }

    #[test]
    fn norm_clip_bounds_outlier_influence() {
        let base = vec![0.0_f32; 2];
        let slots: Vec<Option<Vec<f32>>> = vec![
            Some(vec![0.1, 0.0]),
            Some(vec![0.1, 0.0]),
            Some(vec![1000.0, 0.0]),
        ];
        let mut scratch = Vec::new();
        let mut out = vec![0.0; 2];
        norm_clip_present_into(&slots, |s| s.as_deref(), 0.5, &base, &mut scratch, &mut out);
        // Outlier contributes at most τ of norm: (0.1 + 0.1 + 0.5)/3.
        assert!((f64::from(out[0]) - 0.7 / 3.0).abs() < 1e-6, "{}", out[0]);
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        assert!(Aggregator::Mean.validate().is_ok());
        assert!(Aggregator::TrimmedMean { beta: 0.49 }.validate().is_ok());
        assert!(Aggregator::TrimmedMean { beta: 0.5 }.validate().is_err());
        assert!(Aggregator::TrimmedMean { beta: -0.1 }.validate().is_err());
        assert!(Aggregator::TrimmedMean { beta: f32::NAN }
            .validate()
            .is_err());
        assert!(Aggregator::NormClip { tau: 1.0 }.validate().is_ok());
        assert!(Aggregator::NormClip { tau: 0.0 }.validate().is_err());
        assert!(Aggregator::NormClip { tau: f32::NAN }.validate().is_err());
        assert!(Aggregator::NormClip { tau: f32::INFINITY }
            .validate()
            .is_err());
    }

    proptest! {
        #[test]
        fn prop_trimmed_matches_naive(n in 1usize..48, count in 1usize..9, mask in 0u32..64, seed in 0u64..200, beta in 0.0f32..0.49) {
            let slots = sources(n, count, mask, seed);
            let srcs = present(&slots);
            prop_assume!(!srcs.is_empty());
            let mut scratch = Vec::new();
            let mut out = vec![0.0; n];
            trimmed_mean_present_into(&slots, |s| s.as_deref(), beta, &mut scratch, &mut out);
            prop_assert_eq!(bits(&out), bits(&naive_trimmed(&srcs, beta, n)));
        }

        #[test]
        fn prop_median_matches_naive(n in 1usize..48, count in 1usize..9, mask in 0u32..64, seed in 0u64..200) {
            let slots = sources(n, count, mask, seed);
            let srcs = present(&slots);
            prop_assume!(!srcs.is_empty());
            let mut scratch = Vec::new();
            let mut out = vec![0.0; n];
            coordinate_median_present_into(&slots, |s| s.as_deref(), &mut scratch, &mut out);
            prop_assert_eq!(bits(&out), bits(&naive_median(&srcs, n)));
        }

        #[test]
        fn prop_clip_matches_naive(n in 1usize..48, count in 1usize..9, mask in 0u32..64, seed in 0u64..200, tau in 0.01f32..10.0) {
            let slots = sources(n, count, mask, seed);
            let srcs = present(&slots);
            prop_assume!(!srcs.is_empty());
            let base = arb_vec(n, seed ^ 0xABCD);
            let mut scratch = Vec::new();
            let mut out = vec![0.0; n];
            norm_clip_present_into(&slots, |s| s.as_deref(), tau, &base, &mut scratch, &mut out);
            prop_assert_eq!(bits(&out), bits(&naive_clip(&srcs, tau, &base)));
        }
    }
}
