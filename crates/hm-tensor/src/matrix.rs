//! Row-major dense `f32` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32` values.
///
/// Rows are contiguous, so `self.data[r * cols .. (r + 1) * cols]` is row
/// `r`. This layout makes per-row parallelism (rayon over `chunks_mut`)
/// and per-sample mini-batch access cache friendly.
///
/// ```
/// use hm_tensor::{ops, Matrix};
///
/// let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0,
///                                     4.0, 5.0, 6.0]);
/// let w = Matrix::eye(3);
/// let y = ops::matmul(&x, &w);
/// assert_eq!(y.row(1), &[4.0, 5.0, 6.0]);
/// ```
#[derive(Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a matrix from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Create a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrowed [`MatrixView`](crate::MatrixView) of this matrix.
    #[inline]
    pub fn view(&self) -> crate::MatrixView<'_> {
        crate::MatrixView::new(self.rows, self.cols, &self.data)
    }

    /// Reshape to `rows × cols`, reusing the existing allocation when the
    /// capacity suffices. Element values after the call are unspecified
    /// (old contents are retained where the buffers overlap); callers that
    /// accumulate must [`fill`](Self::fill) with zero first.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copy column `c` into a fresh vector.
    pub fn col_to_vec(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "col {} out of bounds ({} cols)",
            c,
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// New matrix containing the selected rows, in the given order.
    /// Duplicate indices are allowed (useful for bootstrap mini-batches).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// Gather the selected rows into `out`, resizing it (capacity reused)
    /// to `indices.len() × self.cols`. Allocation-free once `out` has
    /// enough capacity.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.resize(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    /// New matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Max absolute difference against another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f32, f32::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for c in 0..cols {
                write!(f, "{:+.4} ", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 3, vec![1.0]);
    }

    #[test]
    fn from_fn_indices() {
        let m = Matrix::from_fn(2, 2, |r, c| (10 * r + c) as f32);
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(1, 0)], 10.0);
    }

    #[test]
    fn eye_is_identity() {
        let m = Matrix::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn row_views() {
        let mut m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(m.row(1), &[2.0, 3.0]);
        m.row_mut(1)[0] = 9.0;
        assert_eq!(m[(1, 0)], 9.0);
        let rows: Vec<_> = m.rows_iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[4.0, 5.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 7 + c * 3) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn select_rows_with_duplicates() {
        let m = Matrix::from_fn(4, 2, |r, _| r as f32);
        let s = m.select_rows(&[3, 0, 3]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(0), &[3.0, 3.0]);
        assert_eq!(s.row(1), &[0.0, 0.0]);
        assert_eq!(s.row(2), &[3.0, 3.0]);
    }

    #[test]
    fn col_to_vec_extracts_column() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.col_to_vec(1), vec![1.0, 4.0, 7.0]);
    }

    #[test]
    fn map_and_fill() {
        let mut m = Matrix::full(2, 2, 2.0);
        let sq = m.map(|x| x * x);
        assert!(sq.as_slice().iter().all(|&x| x == 4.0));
        m.map_inplace(|x| x + 1.0);
        assert!(m.as_slice().iter().all(|&x| x == 3.0));
        m.fill(0.5);
        assert!(m.as_slice().iter().all(|&x| x == 0.5));
    }

    #[test]
    fn max_abs_diff_detects_largest() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![1.0, 2.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
