//! Matrix kernels: products (plain and transposed variants), row softmax,
//! log-sum-exp, ReLU forward/backward, argmax, and reductions.
//!
//! Products parallelise over output rows with rayon once the scalar work
//! exceeds [`PAR_THRESHOLD`]; below it a sequential loop is faster than the
//! fork-join overhead. Per-element accumulation order inside each output
//! element is fixed, so results are identical regardless of thread count.

use crate::Matrix;
use rayon::prelude::*;

/// Minimum number of scalar multiply-adds before a product goes parallel.
pub const PAR_THRESHOLD: usize = 64 * 1024;

/// Minimum multiply-adds *per row* before parallelising: with less work
/// per task, rayon's fork-join overhead dominates (measured ~10–20 µs per
/// dispatch on small batches, vs ~1 µs of arithmetic).
pub const PAR_ROW_THRESHOLD: usize = 8 * 1024;

#[inline]
fn go_parallel(total_work: usize, rows: usize) -> bool {
    rows >= 4 && total_work >= PAR_THRESHOLD && total_work / rows >= PAR_ROW_THRESHOLD
}

/// `C = A · B` for `A (m×k)` and `B (k×n)`.
///
/// Assumes finite inputs: rows whose `A` coefficient is exactly `0.0` are
/// skipped (a sparsity fast path), which would also skip `0 · NaN = NaN`
/// propagation from `B`. The training pipeline never produces non-finite
/// values under its projected updates; callers with untrusted data should
/// validate first.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims {}x{} vs {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    let work = m * k * n;
    let body = |(r, out_row): (usize, &mut [f32])| {
        let a_row = a.row(r);
        // ikj loop order: stream through B rows, accumulate into out_row.
        for (i, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = b.row(i);
            for (o, &bij) in out_row.iter_mut().zip(b_row) {
                *o += aik * bij;
            }
        }
    };
    if go_parallel(work, m) {
        out.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        out.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
    out
}

/// `C = A · Bᵀ` for `A (m×k)` and `B (n×k)`.
///
/// This is the hot kernel in a forward pass (`X · Wᵀ` with row-major weight
/// matrices); both operands are traversed row-contiguously.
pub fn matmul_transb(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transb: inner dims {}x{} vs {}x{}ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    let work = m * k * n;
    let body = |(r, out_row): (usize, &mut [f32])| {
        let a_row = a.row(r);
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = dot_f32(a_row, b.row(j));
        }
    };
    if go_parallel(work, m) {
        out.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        out.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
    out
}

/// `C = Aᵀ · B` for `A (k×m)` and `B (k×n)`.
///
/// This is the weight-gradient kernel (`Xᵀ · Δ` in backprop).
pub fn matmul_transa(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_transa: inner dims {}x{}ᵀ vs {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let k = a.rows();
    let m = a.cols();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    let work = m * k * n;
    let body = |(r, out_row): (usize, &mut [f32])| {
        // out[r, :] = sum_i A[i, r] * B[i, :]
        for i in 0..k {
            let air = a[(i, r)];
            if air == 0.0 {
                continue;
            }
            let b_row = b.row(i);
            for (o, &bij) in out_row.iter_mut().zip(b_row) {
                *o += air * bij;
            }
        }
    };
    if go_parallel(work, m) {
        out.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        out.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
    out
}

/// Reference O(mkn) triple-loop product used as the test oracle.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        for c in 0..b.cols() {
            let mut acc = 0.0_f64;
            for i in 0..a.cols() {
                acc += f64::from(a[(r, i)]) * f64::from(b[(i, c)]);
            }
            out[(r, c)] = acc as f32;
        }
    }
    out
}

/// Dot product with four independent accumulator lanes, letting the
/// compiler vectorise despite strict FP ordering (the lane pattern is a
/// fixed function of the length, so results stay run-to-run deterministic).
#[inline]
fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0_f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let ai = &a[i * 4..i * 4 + 4];
        let bi = &b[i * 4..i * 4 + 4];
        lanes[0] += ai[0] * bi[0];
        lanes[1] += ai[1] * bi[1];
        lanes[2] += ai[2] * bi[2];
        lanes[3] += ai[3] * bi[3];
    }
    let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for i in chunks * 4..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Add a row vector (bias) to every row of `m` in place.
pub fn add_row_inplace(m: &mut Matrix, row: &[f32]) {
    assert_eq!(m.cols(), row.len(), "bias length mismatch");
    let cols = m.cols();
    for r in m.as_mut_slice().chunks_mut(cols) {
        for (x, &b) in r.iter_mut().zip(row) {
            *x += b;
        }
    }
}

/// Column sums of `m`, accumulated in f64 (gradient of a broadcast bias).
pub fn col_sums(m: &Matrix) -> Vec<f32> {
    let mut acc = vec![0.0_f64; m.cols()];
    for row in m.rows_iter() {
        for (a, &x) in acc.iter_mut().zip(row) {
            *a += f64::from(x);
        }
    }
    acc.into_iter().map(|x| x as f32).collect()
}

/// In-place ReLU.
pub fn relu_inplace(m: &mut Matrix) {
    m.map_inplace(|x| x.max(0.0));
}

/// Backward of ReLU: zero `grad` wherever the forward *output* was zero.
///
/// `activated` must be the ReLU output (not the pre-activation); the kernel
/// therefore treats `activated > 0` as the pass-through mask.
pub fn relu_backward_inplace(grad: &mut Matrix, activated: &Matrix) {
    assert_eq!(grad.shape(), activated.shape());
    for (g, &a) in grad.as_mut_slice().iter_mut().zip(activated.as_slice()) {
        if a <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Numerically stable log-sum-exp of a slice.
pub fn log_sum_exp(x: &[f32]) -> f32 {
    let m = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = x.iter().map(|&v| f64::from(v - m).exp()).sum();
    m + (s.ln() as f32)
}

/// Row-wise softmax, numerically stable, returned as a new matrix.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// Row-wise softmax in place.
pub fn softmax_rows_inplace(m: &mut Matrix) {
    let cols = m.cols();
    for row in m.as_mut_slice().chunks_mut(cols) {
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0_f64;
        for x in row.iter_mut() {
            let e = f64::from(*x - mx).exp();
            sum += e;
            *x = e as f32;
        }
        let inv = (1.0 / sum) as f32;
        for x in row.iter_mut() {
            *x *= inv;
        }
    }
}

/// Index of the maximum element of each row (ties resolve to the first).
pub fn argmax_rows(m: &Matrix) -> Vec<usize> {
    m.rows_iter()
        .map(|row| {
            let mut best = 0;
            let mut best_v = f32::NEG_INFINITY;
            for (i, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// Frobenius norm with f64 accumulation.
pub fn frobenius_norm(m: &Matrix) -> f64 {
    m.as_slice()
        .iter()
        .map(|&x| f64::from(x) * f64::from(x))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random fill without external RNG deps.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = mat(5, 7, 1);
        let b = mat(7, 4, 2);
        let c = matmul(&a, &b);
        let r = matmul_naive(&a, &b);
        assert!(c.max_abs_diff(&r) < 1e-4, "diff {}", c.max_abs_diff(&r));
    }

    #[test]
    fn matmul_matches_naive_parallel_path() {
        // Large enough to take the rayon path: total work and per-row work
        // both above their thresholds, with ≥ 4 rows.
        let (m, k, n) = (8usize, 512usize, 512usize);
        assert!(go_parallel(m * k * n, m));
        let a = mat(m, k, 3);
        let b = mat(k, n, 4);
        let c = matmul(&a, &b);
        let r = matmul_naive(&a, &b);
        assert!(c.max_abs_diff(&r) < 1e-3);
    }

    #[test]
    fn parallel_heuristic_shape() {
        // Tiny matrices and few-row matrices stay sequential.
        assert!(!go_parallel(100, 10));
        assert!(!go_parallel(1 << 20, 2)); // too few rows
        assert!(!go_parallel(1 << 17, 64)); // too little work per row
        assert!(go_parallel(1 << 20, 8));
    }

    #[test]
    fn transb_equals_explicit_transpose() {
        let a = mat(6, 5, 5);
        let b = mat(3, 5, 6);
        let c = matmul_transb(&a, &b);
        let r = matmul(&a, &b.transpose());
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn transa_equals_explicit_transpose() {
        let a = mat(5, 6, 7);
        let b = mat(5, 3, 8);
        let c = matmul_transa(&a, &b);
        let r = matmul(&a.transpose(), &b);
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn identity_is_neutral() {
        let a = mat(4, 4, 9);
        let c = matmul(&a, &Matrix::eye(4));
        assert!(c.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn mismatched_dims_panic() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn add_row_and_col_sums() {
        let mut m = Matrix::zeros(3, 2);
        add_row_inplace(&mut m, &[1.0, -2.0]);
        assert_eq!(m.row(2), &[1.0, -2.0]);
        let s = col_sums(&m);
        assert_eq!(s, vec![3.0, -6.0]);
    }

    #[test]
    fn relu_and_backward() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        relu_inplace(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let mut g = Matrix::full(1, 4, 1.0);
        relu_backward_inplace(&mut g, &m);
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let m = mat(4, 6, 11);
        let s = softmax_rows(&m);
        for row in s.rows_iter() {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let m = Matrix::from_vec(1, 3, vec![1000.0, 1001.0, 1002.0]);
        let s = softmax_rows(&m);
        assert!(s.as_slice().iter().all(|x| x.is_finite()));
        let m2 = Matrix::from_vec(1, 3, vec![0.0, 1.0, 2.0]);
        let s2 = softmax_rows(&m2);
        assert!(s.max_abs_diff(&s2) < 1e-5);
    }

    #[test]
    fn log_sum_exp_stable_and_correct() {
        assert!((log_sum_exp(&[0.0, 0.0]) - std::f32::consts::LN_2).abs() < 1e-6);
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + std::f32::consts::LN_2)).abs() < 1e-3);
        assert_eq!(log_sum_exp(&[f32::NEG_INFINITY]), f32::NEG_INFINITY);
    }

    #[test]
    fn argmax_rows_first_tie_wins() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 3.0, 3.0, -1.0, -5.0, -2.0]);
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }

    #[test]
    fn frobenius_norm_simple() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((frobenius_norm(&m) - 5.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_matmul_matches_naive(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
            let a = mat(m, k, seed);
            let b = mat(k, n, seed.wrapping_add(17));
            let c = matmul(&a, &b);
            let r = matmul_naive(&a, &b);
            prop_assert!(c.max_abs_diff(&r) < 1e-4);
        }

        #[test]
        fn prop_transposed_products_consistent(m in 1usize..7, k in 1usize..7, n in 1usize..7, seed in 0u64..1000) {
            let a = mat(m, k, seed);
            let bt = mat(n, k, seed.wrapping_add(3));
            let c1 = matmul_transb(&a, &bt);
            let c2 = matmul(&a, &bt.transpose());
            prop_assert!(c1.max_abs_diff(&c2) < 1e-4);

            let at = mat(k, m, seed.wrapping_add(5));
            let b = mat(k, n, seed.wrapping_add(7));
            let c3 = matmul_transa(&at, &b);
            let c4 = matmul(&at.transpose(), &b);
            prop_assert!(c3.max_abs_diff(&c4) < 1e-4);
        }

        #[test]
        fn prop_softmax_rows_sum_to_one(r in 1usize..6, c in 1usize..6, seed in 0u64..1000) {
            let m = mat(r, c, seed);
            let s = softmax_rows(&m);
            for row in s.rows_iter() {
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
            }
        }
    }
}
