//! Matrix kernels: products (plain and transposed variants), row softmax,
//! log-sum-exp, ReLU forward/backward, argmax, and reductions.
//!
//! Products parallelise over output rows with rayon once the scalar work
//! exceeds [`PAR_THRESHOLD`]; below it a sequential loop is faster than the
//! fork-join overhead. Per-element accumulation order inside each output
//! element is fixed, so results are identical regardless of thread count.

use crate::{Matrix, MatrixView};
use rayon::prelude::*;

/// Minimum number of scalar multiply-adds before a product goes parallel.
pub const PAR_THRESHOLD: usize = 64 * 1024;

/// Minimum multiply-adds *per row* before parallelising: with less work
/// per task, rayon's fork-join overhead dominates (measured ~10–20 µs per
/// dispatch on small batches, vs ~1 µs of arithmetic).
pub const PAR_ROW_THRESHOLD: usize = 8 * 1024;

#[inline]
fn go_parallel(total_work: usize, rows: usize) -> bool {
    rows >= 4 && total_work >= PAR_THRESHOLD && total_work / rows >= PAR_ROW_THRESHOLD
}

/// `C = A · B` for `A (m×k)` and `B (k×n)`.
///
/// Assumes finite inputs: rows whose `A` coefficient is exactly `0.0` are
/// skipped (a sparsity fast path), which would also skip `0 · NaN = NaN`
/// propagation from `B`. The training pipeline never produces non-finite
/// values under its projected updates; callers with untrusted data should
/// validate first.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    matmul_into(a.view(), b.view(), &mut out);
    out
}

/// `C = A · B` written into `out` (resized, capacity reused). The borrowed
/// operands let callers multiply straight out of flat parameter buffers;
/// accumulation order matches [`matmul`] exactly.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul_into(a: MatrixView, b: MatrixView, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims {}x{} vs {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    out.resize(m, n);
    out.fill(0.0);
    let work = m * k * n;
    let body = |(r, out_row): (usize, &mut [f32])| {
        let a_row = a.row(r);
        // ikj loop order: stream through B rows, accumulate into out_row.
        for (i, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = b.row(i);
            for (o, &bij) in out_row.iter_mut().zip(b_row) {
                *o += aik * bij;
            }
        }
    };
    if go_parallel(work, m) {
        out.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else if (PRET_MIN_COLS..=NZ_BUF).contains(&k) {
        // Sequential wide-shape path: compact each row's nonzero positions
        // branchlessly, then replay them unconditionally — same additions in
        // the same ascending-i order as the branchy loop (bit-identical),
        // but without a data-dependent branch per element. See
        // `matmul_transb_pret_into` for why that matters on training deltas.
        // Narrow inner dimensions keep the branchy skip: those operands
        // (logits-layer deltas) are dense, so the branch predicts perfectly
        // and the scan would be pure overhead.
        let a_flat = a.as_slice();
        let b_flat = b.as_slice();
        let out_flat = out.as_mut_slice();
        let mut nz = [0u32; NZ_BUF];
        for r in 0..m {
            let a_row = &a_flat[r * k..(r + 1) * k];
            let out_row = &mut out_flat[r * n..(r + 1) * n];
            let mut cnt = 0usize;
            for (i, &aik) in a_row.iter().enumerate() {
                nz[cnt] = i as u32;
                cnt += (aik != 0.0) as usize;
            }
            for &i in &nz[..cnt] {
                let i = i as usize;
                let aik = a_row[i];
                for (o, &bij) in out_row.iter_mut().zip(&b_flat[i * n..(i + 1) * n]) {
                    *o += aik * bij;
                }
            }
        }
    } else {
        out.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
}

/// Capacity of the stack-allocated nonzero-index buffers used by the
/// branchless sparsity scans; shapes past it fall back to branchy skips.
const NZ_BUF: usize = 1024;

/// `C = A · Bᵀ` for `A (m×k)` and `B (n×k)`.
///
/// This is the hot kernel in a forward pass (`X · Wᵀ` with row-major weight
/// matrices); both operands are traversed row-contiguously.
pub fn matmul_transb(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    matmul_transb_into(a.view(), b.view(), &mut out);
    out
}

/// `C = A · Bᵀ` written into `out` (resized, capacity reused). Every output
/// element is assigned, so no zeroing pass is needed; accumulation order
/// matches [`matmul_transb`] exactly.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul_transb_into(a: MatrixView, b: MatrixView, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transb: inner dims {}x{} vs {}x{}ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.rows();
    out.resize(m, n);
    let work = m * k * n;
    let body = |(r, out_row): (usize, &mut [f32])| {
        let a_row = a.row(r);
        // One `dot_f32` per output element. Manually blocked variants (2 and
        // 4 columns per pass, j-tiling for B-row reuse) all measured equal
        // or slower here: the out-of-order window already overlaps adjacent
        // column chains, and LLVM's SLP pass turns multi-accumulator blocks
        // into shuffle-heavy code.
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = dot_f32(a_row, b.row(j));
        }
    };
    if go_parallel(work, m) {
        out.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        out.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
}

/// `dst = srcᵀ`, written into `dst` (resized, capacity reused).
///
/// Pure data movement, blocked eight source rows at a time: each pass
/// streams eight rows in parallel and writes contiguous 8-element runs of
/// the destination, so the store side vectorises and every destination
/// cache line is touched once per pass. Leftover rows (< 8) fall back to a
/// scalar strided copy.
pub fn transpose_into(src: MatrixView, dst: &mut Matrix) {
    let (r, c) = src.shape();
    dst.resize(c, r);
    let s = src.as_slice();
    let d = dst.as_mut_slice();
    let mut i0 = 0;
    while i0 + 8 <= r {
        let rows: [&[f32]; 8] = core::array::from_fn(|q| &s[(i0 + q) * c..(i0 + q + 1) * c]);
        for j in 0..c {
            let run = &mut d[j * r + i0..j * r + i0 + 8];
            for (q, o) in run.iter_mut().enumerate() {
                *o = rows[q][j];
            }
        }
        i0 += 8;
    }
    for i in i0..r {
        let row = &s[i * c..(i + 1) * c];
        let mut idx = i;
        for &v in row {
            d[idx] = v;
            idx += r;
        }
    }
}

/// One zero-skipping rank-1 row update: `lane += aik * b_row`.
#[inline]
fn lane_update(lane: &mut [f32], aik: f32, b_row: &[f32]) {
    if aik == 0.0 {
        return;
    }
    for (o, &bij) in lane.iter_mut().zip(b_row) {
        *o += aik * bij;
    }
}

/// `C = A · Bᵀ` given the **pre-transposed** operand `bt = Bᵀ` (`k × n`),
/// bit-identical to [`matmul_transb_into`].
///
/// Instead of one serial dot chain per output element, this form streams the
/// rows of `bt` and accumulates four k-interleaved partial output rows in
/// `lanes`: lane `l` takes the products with `k ≡ l (mod 4)` — exactly the
/// accumulator lanes of the dot kernel — then the lanes are combined as
/// `(l0 + l1) + (l2 + l3)` and the scalar-tail products added in index
/// order. Every output element therefore sees precisely the same additions
/// in the same order as `matmul_transb_into`, so results are bit-identical
/// (asserted by `pret_bit_identical_to_transb`), but the inner loop is a
/// contiguous multiply-add that vectorises well, and rows of `bt` whose `A`
/// coefficient is exactly `0.0` are skipped outright. The skip cannot
/// change results: it removes `±0.0` addends, and a partial that starts at
/// `+0.0` can never reach `-0.0` (the only value `±0.0` addends perturb) —
/// the same finite-input argument as the sparsity fast path in
/// [`matmul_into`]. Sparse inputs — clamped image pixels, post-ReLU
/// activations — make this kernel proportionally faster.
///
/// Runs sequentially by design: it targets small-batch training forwards,
/// where the row count is a mini-batch and rayon's dispatch overhead rivals
/// the arithmetic; `lanes` is caller-provided scratch (resized to `4 × n`)
/// so steady-state calls allocate nothing.
///
/// The zero test itself is done as a **branchless index scan**: for each
/// lane the nonzero `k` positions are first compacted into a small stack
/// buffer (`count += (x != 0) as usize` — no data-dependent branch), then
/// replayed unconditionally. Training batches are resampled every step, so
/// the sparsity pattern the branch predictor sees is fresh noise each call;
/// a per-element skip branch mispredicts tens of microseconds per gradient
/// step, which the scan form avoids. Within a lane the compacted indices
/// stay ascending, and lanes are independent accumulators, so draining them
/// one lane at a time is still bit-identical.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul_transb_pret_into(
    a: MatrixView,
    bt: MatrixView,
    lanes: &mut Matrix,
    out: &mut Matrix,
) {
    assert_eq!(
        a.cols(),
        bt.rows(),
        "matmul_transb_pret: inner dims {}x{} vs ({}x{})ᵀ",
        a.rows(),
        a.cols(),
        bt.rows(),
        bt.cols()
    );
    let (m, k) = a.shape();
    let n = bt.cols();
    out.resize(m, n);
    lanes.resize(4, n);
    let chunks = k / 4;
    // Flat slices throughout: the inner loop runs once per (row, k) pair,
    // so even a few nanoseconds of per-k accessor overhead is measurable.
    let a_flat = a.as_slice();
    let bt_flat = bt.as_slice();
    let out_flat = out.as_mut_slice();
    let lanes_flat = lanes.as_mut_slice();
    // Nonzero-index buffer for the branchless scan (one lane's worth of a
    // row). Stack-allocated so the kernel stays allocation-free; fan-ins
    // beyond 4·NZ_BUF fall back to the branchy per-chunk walk.
    const NZ_BUF: usize = 1024;
    let mut nz = [0u32; NZ_BUF];
    for r in 0..m {
        let a_row = &a_flat[r * k..(r + 1) * k];
        lanes_flat.iter_mut().for_each(|v| *v = 0.0);
        {
            // Lane `l` accumulates the `k ≡ l (mod 4)` products in
            // increasing-k order; the lanes are independent partials, so
            // draining them one at a time reorders nothing within a lane.
            let (l0, rest) = lanes_flat.split_at_mut(n);
            let (l1, rest) = rest.split_at_mut(n);
            let (l2, l3) = rest.split_at_mut(n);
            if chunks <= NZ_BUF {
                for (q, lane) in [l0, l1, l2, l3].into_iter().enumerate() {
                    let mut cnt = 0usize;
                    let mut kk = q;
                    while kk < chunks * 4 {
                        nz[cnt] = kk as u32;
                        cnt += (a_row[kk] != 0.0) as usize;
                        kk += 4;
                    }
                    for &kk in &nz[..cnt] {
                        let kk = kk as usize;
                        let aik = a_row[kk];
                        let b_row = &bt_flat[kk * n..(kk + 1) * n];
                        for (o, &bij) in lane.iter_mut().zip(b_row) {
                            *o += aik * bij;
                        }
                    }
                }
            } else {
                let mut base = 0;
                for _ in 0..chunks {
                    lane_update(l0, a_row[base], &bt_flat[base * n..(base + 1) * n]);
                    lane_update(
                        l1,
                        a_row[base + 1],
                        &bt_flat[(base + 1) * n..(base + 2) * n],
                    );
                    lane_update(
                        l2,
                        a_row[base + 2],
                        &bt_flat[(base + 2) * n..(base + 3) * n],
                    );
                    lane_update(
                        l3,
                        a_row[base + 3],
                        &bt_flat[(base + 3) * n..(base + 4) * n],
                    );
                    base += 4;
                }
            }
        }
        let out_row = &mut out_flat[r * n..(r + 1) * n];
        {
            let (l0, rest) = lanes_flat.split_at(n);
            let (l1, rest) = rest.split_at(n);
            let (l2, l3) = rest.split_at(n);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = (l0[j] + l1[j]) + (l2[j] + l3[j]);
            }
        }
        for kk in chunks * 4..k {
            let aik = a_row[kk];
            if aik == 0.0 {
                continue;
            }
            for (o, &bij) in out_row.iter_mut().zip(&bt_flat[kk * n..(kk + 1) * n]) {
                *o += aik * bij;
            }
        }
    }
}

/// Minimum output width (`B` rows) at which the pre-transposed forward
/// kernel beats the dot form: below it the per-k lane setup outweighs the
/// streaming gain (measured crossover ≈ 30 columns on x86-64).
pub const PRET_MIN_COLS: usize = 32;

/// Linear-layer forward `C = A · Bᵀ` that picks the faster kernel for the
/// shape: the pre-transposed streaming kernel for wide outputs (staging
/// `Bᵀ` in `wt`), the dot-form [`matmul_transb_into`] for narrow ones.
/// Results are bit-identical either way, so the choice is purely a
/// performance dispatch.
pub fn matmul_transb_fwd_into(
    a: MatrixView,
    b: MatrixView,
    wt: &mut Matrix,
    lanes: &mut Matrix,
    out: &mut Matrix,
) {
    if b.rows() >= PRET_MIN_COLS {
        transpose_into(b, wt);
        matmul_transb_pret_into(a, wt.view(), lanes, out);
    } else {
        matmul_transb_into(a, b, out);
    }
}

/// `C = Aᵀ · B` for `A (k×m)` and `B (k×n)`.
///
/// This is the weight-gradient kernel (`Xᵀ · Δ` in backprop).
pub fn matmul_transa(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    matmul_transa_into(a.view(), b.view(), &mut out);
    out
}

/// `C = Aᵀ · B` written into `out` (resized, capacity reused), letting the
/// backward pass stage weight gradients without allocating; accumulation
/// order matches [`matmul_transa`] exactly.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul_transa_into(a: MatrixView, b: MatrixView, out: &mut Matrix) {
    out.resize(a.cols(), b.cols());
    matmul_transa_slice(a, b, out.as_mut_slice());
}

/// `C = Aᵀ · B` written into the flat row-major slice `out` — the backward
/// pass stages weight gradients straight into the caller's gradient vector
/// (`&mut grad[wo..wo + wl]`) with no intermediate matrix.
///
/// # Panics
/// Panics on inner-dimension mismatch or when `out.len() != a.cols() * b.cols()`.
pub fn matmul_transa_slice(a: MatrixView, b: MatrixView, out: &mut [f32]) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_transa: inner dims {}x{}ᵀ vs {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let k = a.rows();
    let m = a.cols();
    let n = b.cols();
    assert_eq!(out.len(), m * n, "matmul_transa: output length mismatch");
    out.iter_mut().for_each(|x| *x = 0.0);
    let work = m * k * n;
    let body = |(r, out_row): (usize, &mut [f32])| {
        // out[r, :] = sum_i A[i, r] * B[i, :]
        for i in 0..k {
            let air = a.at(i, r);
            if air == 0.0 {
                continue;
            }
            let b_row = b.row(i);
            for (o, &bij) in out_row.iter_mut().zip(b_row) {
                *o += air * bij;
            }
        }
    };
    if go_parallel(work, m) {
        out.par_chunks_mut(n).enumerate().for_each(body);
    } else if (PRET_MIN_COLS..=NZ_BUF).contains(&m) {
        // Sequential wide-shape path with the batch dimension outermost:
        // each `A` row (a training delta) is scanned for nonzeros once,
        // branchlessly, instead of being probed once per output row. Every
        // output element still receives its addends in ascending batch-row
        // order, so the result is bit-identical to the branchy loop. Narrow
        // `A` (logits-layer deltas) stays on the branchy loop — dense, so
        // the skip branch predicts perfectly and a scan is pure overhead.
        let a_flat = a.as_slice();
        let b_flat = b.as_slice();
        let mut nz = [0u32; NZ_BUF];
        for i in 0..k {
            let a_row = &a_flat[i * m..(i + 1) * m];
            let b_row = &b_flat[i * n..(i + 1) * n];
            let mut cnt = 0usize;
            for (r, &air) in a_row.iter().enumerate() {
                nz[cnt] = r as u32;
                cnt += (air != 0.0) as usize;
            }
            for &r in &nz[..cnt] {
                let r = r as usize;
                let air = a_row[r];
                let out_row = &mut out[r * n..(r + 1) * n];
                for (o, &bij) in out_row.iter_mut().zip(b_row) {
                    *o += air * bij;
                }
            }
        }
    } else {
        out.chunks_mut(n).enumerate().for_each(body);
    }
}

/// Reference O(mkn) triple-loop product used as the test oracle.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        for c in 0..b.cols() {
            let mut acc = 0.0_f64;
            for i in 0..a.cols() {
                acc += f64::from(a[(r, i)]) * f64::from(b[(i, c)]);
            }
            out[(r, c)] = acc as f32;
        }
    }
    out
}

/// Dot product with four independent accumulator lanes, letting the
/// compiler vectorise despite strict FP ordering (the lane pattern is a
/// fixed function of the length, so results stay run-to-run deterministic).
#[inline]
fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0_f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let ai = &a[i * 4..i * 4 + 4];
        let bi = &b[i * 4..i * 4 + 4];
        lanes[0] += ai[0] * bi[0];
        lanes[1] += ai[1] * bi[1];
        lanes[2] += ai[2] * bi[2];
        lanes[3] += ai[3] * bi[3];
    }
    let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for i in chunks * 4..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Add a row vector (bias) to every row of `m` in place.
pub fn add_row_inplace(m: &mut Matrix, row: &[f32]) {
    assert_eq!(m.cols(), row.len(), "bias length mismatch");
    let cols = m.cols();
    for r in m.as_mut_slice().chunks_mut(cols) {
        for (x, &b) in r.iter_mut().zip(row) {
            *x += b;
        }
    }
}

/// Column sums of `m`, accumulated in f64 (gradient of a broadcast bias).
pub fn col_sums(m: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0_f32; m.cols()];
    col_sums_into(m.view(), &mut out);
    out
}

/// Column sums of `m` written into `out`, accumulated in f64. Each column
/// sums its rows top-to-bottom — the same per-column addition order as
/// [`col_sums`], so results are bit-identical.
///
/// # Panics
/// Panics when `out.len() != m.cols()`.
pub fn col_sums_into(m: MatrixView, out: &mut [f32]) {
    assert_eq!(out.len(), m.cols(), "col_sums: output length mismatch");
    let data = m.as_slice();
    let cols = m.cols();
    for (c, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0_f64;
        let mut i = c;
        while i < data.len() {
            acc += f64::from(data[i]);
            i += cols;
        }
        *o = acc as f32;
    }
}

/// In-place ReLU.
pub fn relu_inplace(m: &mut Matrix) {
    m.map_inplace(|x| x.max(0.0));
}

/// Backward of ReLU: zero `grad` wherever the forward *output* was zero.
///
/// `activated` must be the ReLU output (not the pre-activation); the kernel
/// therefore treats `activated > 0` as the pass-through mask.
pub fn relu_backward_inplace(grad: &mut Matrix, activated: &Matrix) {
    assert_eq!(grad.shape(), activated.shape());
    // Unconditional select rather than a guarded store: the mask is fresh
    // ~50/50 noise every training batch, and a data-dependent branch here
    // mispredicts constantly; the select vectorises to cmp+and.
    for (g, &a) in grad.as_mut_slice().iter_mut().zip(activated.as_slice()) {
        *g = if a > 0.0 { *g } else { 0.0 };
    }
}

/// Numerically stable log-sum-exp of a slice.
pub fn log_sum_exp(x: &[f32]) -> f32 {
    let m = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = x.iter().map(|&v| f64::from(v - m).exp()).sum();
    m + (s.ln() as f32)
}

/// Row-wise softmax, numerically stable, returned as a new matrix.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// Row-wise softmax in place.
pub fn softmax_rows_inplace(m: &mut Matrix) {
    let cols = m.cols();
    for row in m.as_mut_slice().chunks_mut(cols) {
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0_f64;
        for x in row.iter_mut() {
            let e = f64::from(*x - mx).exp();
            sum += e;
            *x = e as f32;
        }
        let inv = (1.0 / sum) as f32;
        for x in row.iter_mut() {
            *x *= inv;
        }
    }
}

/// Index of the maximum element of each row (ties resolve to the first).
pub fn argmax_rows(m: &Matrix) -> Vec<usize> {
    m.rows_iter()
        .map(|row| {
            let mut best = 0;
            let mut best_v = f32::NEG_INFINITY;
            for (i, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// Frobenius norm with f64 accumulation.
pub fn frobenius_norm(m: &Matrix) -> f64 {
    m.as_slice()
        .iter()
        .map(|&x| f64::from(x) * f64::from(x))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random fill without external RNG deps.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = mat(5, 7, 1);
        let b = mat(7, 4, 2);
        let c = matmul(&a, &b);
        let r = matmul_naive(&a, &b);
        assert!(c.max_abs_diff(&r) < 1e-4, "diff {}", c.max_abs_diff(&r));
    }

    /// Sparse variant of `mat`: roughly `num/den` of entries forced to
    /// exactly `0.0` (and a few to `-0.0`), the regime the pre-transposed
    /// kernel's skip path targets.
    fn sparse_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut m = mat(rows, cols, seed);
        let mut s = seed.wrapping_mul(0xD1B54A32D192ED03).wrapping_add(3);
        for v in m.as_mut_slice() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            match s % 5 {
                0 | 1 => *v = 0.0,
                2 => *v = -0.0,
                _ => {}
            }
        }
        m
    }

    #[test]
    fn transpose_into_roundtrip() {
        let a = mat(5, 9, 21);
        let mut t = Matrix::zeros(0, 0);
        transpose_into(a.view(), &mut t);
        assert_eq!(t.shape(), (9, 5));
        for i in 0..5 {
            for j in 0..9 {
                assert_eq!(t[(j, i)], a[(i, j)]);
            }
        }
        // Round trip through a second transpose restores the original, and
        // a tile-crossing shape exercises the blocked path.
        let big = mat(37, 50, 22);
        let mut bt = Matrix::zeros(0, 0);
        let mut back = Matrix::zeros(0, 0);
        transpose_into(big.view(), &mut bt);
        transpose_into(bt.view(), &mut back);
        assert_eq!(big.as_slice(), back.as_slice());
    }

    #[test]
    fn pret_bit_identical_to_transb() {
        // The pre-transposed forward kernel must reproduce the dot-form
        // kernel bit for bit: dense and sparse (±0.0) inputs, inner dims
        // covering every k % 4 tail, including k < 4.
        let mut bt = Matrix::zeros(0, 0);
        let mut lanes = Matrix::zeros(0, 0);
        let mut got = Matrix::zeros(0, 0);
        let mut want = Matrix::zeros(0, 0);
        for (m, k, n) in [
            (4usize, 16usize, 10usize),
            (3, 17, 5),
            (5, 18, 7),
            (2, 19, 3),
            (1, 3, 4),
            (16, 256, 100),
        ] {
            for (seed, sparse) in [(31, false), (32, true), (33, true)] {
                let a = if sparse {
                    sparse_mat(m, k, seed)
                } else {
                    mat(m, k, seed)
                };
                let b = if sparse {
                    sparse_mat(n, k, seed + 100)
                } else {
                    mat(n, k, seed + 100)
                };
                matmul_transb_into(a.view(), b.view(), &mut want);
                transpose_into(b.view(), &mut bt);
                matmul_transb_pret_into(a.view(), bt.view(), &mut lanes, &mut got);
                assert_eq!(got.shape(), want.shape());
                let same = got
                    .as_slice()
                    .iter()
                    .zip(want.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "bit mismatch at m={m} k={k} n={n} sparse={sparse}");
            }
        }
    }

    #[test]
    fn matmul_matches_naive_parallel_path() {
        // Large enough to take the rayon path: total work and per-row work
        // both above their thresholds, with ≥ 4 rows.
        let (m, k, n) = (8usize, 512usize, 512usize);
        assert!(go_parallel(m * k * n, m));
        let a = mat(m, k, 3);
        let b = mat(k, n, 4);
        let c = matmul(&a, &b);
        let r = matmul_naive(&a, &b);
        assert!(c.max_abs_diff(&r) < 1e-3);
    }

    #[test]
    fn parallel_heuristic_shape() {
        // Tiny matrices and few-row matrices stay sequential.
        assert!(!go_parallel(100, 10));
        assert!(!go_parallel(1 << 20, 2)); // too few rows
        assert!(!go_parallel(1 << 17, 64)); // too little work per row
        assert!(go_parallel(1 << 20, 8));
    }

    #[test]
    fn transb_equals_explicit_transpose() {
        let a = mat(6, 5, 5);
        let b = mat(3, 5, 6);
        let c = matmul_transb(&a, &b);
        let r = matmul(&a, &b.transpose());
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn transa_equals_explicit_transpose() {
        let a = mat(5, 6, 7);
        let b = mat(5, 3, 8);
        let c = matmul_transa(&a, &b);
        let r = matmul(&a.transpose(), &b);
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn identity_is_neutral() {
        let a = mat(4, 4, 9);
        let c = matmul(&a, &Matrix::eye(4));
        assert!(c.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn mismatched_dims_panic() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn add_row_and_col_sums() {
        let mut m = Matrix::zeros(3, 2);
        add_row_inplace(&mut m, &[1.0, -2.0]);
        assert_eq!(m.row(2), &[1.0, -2.0]);
        let s = col_sums(&m);
        assert_eq!(s, vec![3.0, -6.0]);
    }

    #[test]
    fn relu_and_backward() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        relu_inplace(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let mut g = Matrix::full(1, 4, 1.0);
        relu_backward_inplace(&mut g, &m);
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let m = mat(4, 6, 11);
        let s = softmax_rows(&m);
        for row in s.rows_iter() {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let m = Matrix::from_vec(1, 3, vec![1000.0, 1001.0, 1002.0]);
        let s = softmax_rows(&m);
        assert!(s.as_slice().iter().all(|x| x.is_finite()));
        let m2 = Matrix::from_vec(1, 3, vec![0.0, 1.0, 2.0]);
        let s2 = softmax_rows(&m2);
        assert!(s.max_abs_diff(&s2) < 1e-5);
    }

    #[test]
    fn log_sum_exp_stable_and_correct() {
        assert!((log_sum_exp(&[0.0, 0.0]) - std::f32::consts::LN_2).abs() < 1e-6);
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + std::f32::consts::LN_2)).abs() < 1e-3);
        assert_eq!(log_sum_exp(&[f32::NEG_INFINITY]), f32::NEG_INFINITY);
    }

    #[test]
    fn argmax_rows_first_tie_wins() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 3.0, 3.0, -1.0, -5.0, -2.0]);
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }

    #[test]
    fn frobenius_norm_simple() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((frobenius_norm(&m) - 5.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_matmul_matches_naive(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
            let a = mat(m, k, seed);
            let b = mat(k, n, seed.wrapping_add(17));
            let c = matmul(&a, &b);
            let r = matmul_naive(&a, &b);
            prop_assert!(c.max_abs_diff(&r) < 1e-4);
        }

        #[test]
        fn prop_transposed_products_consistent(m in 1usize..7, k in 1usize..7, n in 1usize..7, seed in 0u64..1000) {
            let a = mat(m, k, seed);
            let bt = mat(n, k, seed.wrapping_add(3));
            let c1 = matmul_transb(&a, &bt);
            let c2 = matmul(&a, &bt.transpose());
            prop_assert!(c1.max_abs_diff(&c2) < 1e-4);

            let at = mat(k, m, seed.wrapping_add(5));
            let b = mat(k, n, seed.wrapping_add(7));
            let c3 = matmul_transa(&at, &b);
            let c4 = matmul(&at.transpose(), &b);
            prop_assert!(c3.max_abs_diff(&c4) < 1e-4);
        }

        #[test]
        fn prop_softmax_rows_sum_to_one(r in 1usize..6, c in 1usize..6, seed in 0u64..1000) {
            let m = mat(r, c, seed);
            let s = softmax_rows(&m);
            for row in s.rows_iter() {
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
            }
        }
    }
}
