//! Borrowed, read-only matrix view over an external row-major buffer.
//!
//! [`MatrixView`] lets kernels consume weights straight out of a flat
//! parameter vector (`&params[offset..offset + len]`) without copying them
//! into an owned [`Matrix`] first — the key ingredient of the
//! zero-allocation training hot path.

use crate::Matrix;

/// A borrowed `rows × cols` row-major view of an `f32` slice.
///
/// Copyable and cheap: two `usize`s and a slice reference. Shares the
/// row-contiguity contract of [`Matrix`], so every kernel that streams rows
/// works identically on either.
#[derive(Clone, Copy, Debug)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f32],
}

impl<'a> MatrixView<'a> {
    /// Wrap `data` as a `rows × cols` row-major matrix.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[inline]
    pub fn new(rows: usize, cols: usize, data: &'a [f32]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the view has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &'a [f32] {
        self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f32] {
        debug_assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &'a [f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Owned copy of the viewed data.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.to_vec())
    }
}

impl<'a> From<&'a Matrix> for MatrixView<'a> {
    #[inline]
    fn from(m: &'a Matrix) -> Self {
        m.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_rows_match_matrix() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let v = m.view();
        assert_eq!(v.shape(), (3, 4));
        for r in 0..3 {
            assert_eq!(v.row(r), m.row(r));
        }
        assert_eq!(v.at(2, 3), m[(2, 3)]);
        assert_eq!(v.to_matrix(), m);
    }

    #[test]
    fn view_over_flat_slice() {
        let flat = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let v = MatrixView::new(2, 3, &flat[1..7]);
        assert_eq!(v.row(0), &[2.0, 3.0, 4.0]);
        assert_eq!(v.row(1), &[5.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn bad_len_panics() {
        let flat = vec![0.0; 5];
        let _ = MatrixView::new(2, 3, &flat);
    }
}
