//! Dense linear-algebra substrate for the HierMinimax reproduction.
//!
//! The paper's evaluation trains multinomial logistic regression and a small
//! fully-connected network with SGD. Those workloads only need dense
//! row-major matrices, matrix products (including transposed variants),
//! element-wise maps, numerically stable softmax / log-sum-exp, and a few
//! BLAS-1 style vector kernels. This crate provides exactly that, with
//! rayon-parallel row loops for the matrix products that dominate training
//! time and `f64` accumulation in reductions where it matters for accuracy.
//!
//! Design notes:
//! - Everything is `f32` storage (matching the PyTorch float32 runs in the
//!   paper) with `f64` accumulators in dot products and reductions.
//! - Parallelism kicks in above [`ops::PAR_THRESHOLD`] scalar ops so tiny
//!   matrices (common in unit tests) don't pay rayon overhead.
//! - No `unsafe`.

pub mod matrix;
pub mod ops;
pub mod robust;
pub mod vecops;
pub mod view;

pub use matrix::Matrix;
pub use robust::{Aggregator, AGGREGATORS};
pub use view::MatrixView;
