//! BLAS-1 style kernels on `&[f32]` slices.
//!
//! Model parameters travel through the system as flat vectors (the algorithms
//! average, difference, and project them), so these kernels are used on every
//! SGD step, aggregation, and projection.

/// `y += alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    // Plain zip loop: elements are independent, so LLVM unrolls and
    // vectorises this freely (a manual 4-wide unroll measured ~5x slower —
    // it defeated the autovectoriser).
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x` (copy).
pub fn copy(x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "copy length mismatch");
    y.copy_from_slice(x);
}

/// `x *= alpha`.
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Dot product with f64 accumulation.
///
/// Uses four independent f64 accumulator lanes combined in a fixed order
/// (`(l0 + l1) + (l2 + l3)` then the scalar tail), so the result is a pure
/// function of the inputs — deterministic run to run and thread-count
/// independent.
pub fn dot(x: &[f32], y: &[f32]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut lanes = [0.0_f64; 4];
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let xc = &x[i * 4..i * 4 + 4];
        let yc = &y[i * 4..i * 4 + 4];
        lanes[0] += f64::from(xc[0]) * f64::from(yc[0]);
        lanes[1] += f64::from(xc[1]) * f64::from(yc[1]);
        lanes[2] += f64::from(xc[2]) * f64::from(yc[2]);
        lanes[3] += f64::from(xc[3]) * f64::from(yc[3]);
    }
    let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for i in chunks * 4..x.len() {
        acc += f64::from(x[i]) * f64::from(y[i]);
    }
    acc
}

/// Euclidean norm with f64 accumulation.
pub fn norm2(x: &[f32]) -> f64 {
    x.iter()
        .map(|&a| f64::from(a) * f64::from(a))
        .sum::<f64>()
        .sqrt()
}

/// Squared Euclidean distance between two slices, f64 accumulation.
pub fn dist2_sq(x: &[f32], y: &[f32]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2_sq length mismatch");
    x.iter()
        .zip(y)
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum()
}

/// Sum of all elements, f64 accumulation.
pub fn sum(x: &[f32]) -> f64 {
    x.iter().map(|&a| f64::from(a)).sum()
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(x: &[f32]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f64
    }
}

/// Accumulation chunk width for the averaging kernels: the f64 accumulator
/// tile (4 KiB) plus one f32 source tile per pass stay resident in L1 while
/// a source is streamed through, instead of re-touching every source's full
/// cache footprint once per element.
const AVG_CHUNK: usize = 512;

/// Deterministic average of several equally-weighted parameter vectors.
///
/// Accumulates in f64 in a fixed order, so the result is independent of how
/// the sources were produced (e.g. in parallel by rayon workers). This is the
/// model-aggregation primitive used at both the edge (client models) and the
/// cloud (edge models).
///
/// Internally chunked: a stack tile of [`AVG_CHUNK`] f64 accumulators is
/// zeroed, every source's chunk is added in source order, and the tile is
/// divided out. Per element the fold order across sources is exactly the
/// unchunked `for s in sources { acc += s[i] }`, so results are bit-identical
/// to the straightforward loop while touching each source once per chunk
/// instead of once per element.
pub fn average_into(sources: &[&[f32]], out: &mut [f32]) {
    assert!(!sources.is_empty(), "average of zero vectors");
    let n = sources.len() as f64;
    for s in sources {
        assert_eq!(s.len(), out.len(), "average length mismatch");
    }
    let mut acc = [0.0_f64; AVG_CHUNK];
    let mut start = 0;
    while start < out.len() {
        let len = AVG_CHUNK.min(out.len() - start);
        acc[..len].fill(0.0);
        for s in sources {
            for (a, &v) in acc[..len].iter_mut().zip(&s[start..start + len]) {
                *a += f64::from(v);
            }
        }
        for (o, &a) in out[start..start + len].iter_mut().zip(&acc[..len]) {
            *o = (a / n) as f32;
        }
        start += len;
    }
}

/// Weighted average `out[i] = Σ_j weights[j] * sources[j][i]`.
///
/// Weights need not sum to one (callers normalise when they need a convex
/// combination). Chunked like [`average_into`], with the identical
/// per-element fold order (source order) and hence bit-identical results.
pub fn weighted_average_into(sources: &[&[f32]], weights: &[f64], out: &mut [f32]) {
    assert_eq!(sources.len(), weights.len(), "weights/sources mismatch");
    assert!(!sources.is_empty(), "weighted average of zero vectors");
    for s in sources {
        assert_eq!(s.len(), out.len(), "average length mismatch");
    }
    let mut acc = [0.0_f64; AVG_CHUNK];
    let mut start = 0;
    while start < out.len() {
        let len = AVG_CHUNK.min(out.len() - start);
        acc[..len].fill(0.0);
        for (s, &w) in sources.iter().zip(weights) {
            for (a, &v) in acc[..len].iter_mut().zip(&s[start..start + len]) {
                *a += w * f64::from(v);
            }
        }
        for (o, &a) in out[start..start + len].iter_mut().zip(&acc[..len]) {
            *o = a as f32;
        }
        start += len;
    }
}

/// Fused fixed-shape average over the *present* entries of a slot array:
/// `out = mean_{j : get(slots[j]) = Some(v_j)} v_j`, folding slots in index
/// order. Returns the number of present entries.
///
/// This is the survivor-aggregation primitive of the round engine: client
/// results live in fixed per-slot `Option`s (absent = crashed / missed
/// deadline), and aggregation walks the slots directly instead of first
/// compacting the survivors into a `Vec<&[f32]>`. The fold order equals the
/// slot order, which equals the source order the compacting path fed to
/// [`average_into`] — so the two are bit-identical.
///
/// `out` is untouched (and the count is 0) when no entry is present;
/// callers keep the previous model in that case.
pub fn average_present_into<S>(
    slots: &[S],
    get: impl Fn(&S) -> Option<&[f32]>,
    out: &mut [f32],
) -> usize {
    let count = slots.iter().filter(|s| get(s).is_some()).count();
    if count == 0 {
        return 0;
    }
    let n = count as f64;
    let mut acc = [0.0_f64; AVG_CHUNK];
    let mut start = 0;
    while start < out.len() {
        let len = AVG_CHUNK.min(out.len() - start);
        acc[..len].fill(0.0);
        for s in slots {
            if let Some(v) = get(s) {
                assert_eq!(v.len(), out.len(), "average length mismatch");
                for (a, &x) in acc[..len].iter_mut().zip(&v[start..start + len]) {
                    *a += f64::from(x);
                }
            }
        }
        for (o, &a) in out[start..start + len].iter_mut().zip(&acc[..len]) {
            *o = (a / n) as f32;
        }
        start += len;
    }
    count
}

/// Largest absolute element (0 for an empty slice).
pub fn max_abs(x: &[f32]) -> f32 {
    x.iter().map(|v| v.abs()).fold(0.0_f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 40) as f32 / (1u64 << 24) as f32 - 0.5
            })
            .collect()
    }

    proptest! {
        #[test]
        fn prop_axpy_is_linear(n in 1usize..32, seed in 0u64..500, a in -4.0f32..4.0) {
            let x = arb_vec(n, seed);
            let y0 = arb_vec(n, seed.wrapping_add(1));
            // axpy(a, x, y) == y + a*x elementwise.
            let mut y = y0.clone();
            axpy(a, &x, &mut y);
            for i in 0..n {
                let expect = y0[i] + a * x[i];
                prop_assert!((y[i] - expect).abs() <= 1e-5 * expect.abs().max(1.0));
            }
        }

        #[test]
        fn prop_average_is_permutation_invariant(n in 1usize..16, seed in 0u64..500) {
            let a = arb_vec(n, seed);
            let b = arb_vec(n, seed.wrapping_add(2));
            let c = arb_vec(n, seed.wrapping_add(3));
            let mut o1 = vec![0.0; n];
            let mut o2 = vec![0.0; n];
            average_into(&[&a, &b, &c], &mut o1);
            average_into(&[&c, &b, &a], &mut o2);
            prop_assert_eq!(o1, o2);
        }

        #[test]
        fn prop_weighted_average_within_hull(n in 1usize..16, seed in 0u64..500, t in 0.0f64..1.0) {
            // A convex combination of two vectors stays coordinate-wise
            // between them.
            let a = arb_vec(n, seed);
            let b = arb_vec(n, seed.wrapping_add(5));
            let mut o = vec![0.0; n];
            weighted_average_into(&[&a, &b], &[t, 1.0 - t], &mut o);
            for i in 0..n {
                let lo = a[i].min(b[i]) - 1e-5;
                let hi = a[i].max(b[i]) + 1e-5;
                prop_assert!(o[i] >= lo && o[i] <= hi);
            }
        }

        #[test]
        fn prop_dot_is_symmetric(n in 1usize..32, seed in 0u64..500) {
            let x = arb_vec(n, seed);
            let y = arb_vec(n, seed.wrapping_add(7));
            prop_assert!((dot(&x, &y) - dot(&y, &x)).abs() < 1e-9);
        }

        #[test]
        fn prop_norm_triangle_inequality(n in 1usize..32, seed in 0u64..500) {
            let x = arb_vec(n, seed);
            let y = arb_vec(n, seed.wrapping_add(11));
            let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
            prop_assert!(norm2(&sum) <= norm2(&x) + norm2(&y) + 1e-6);
        }
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 11.0, 11.5]);
    }

    #[test]
    #[should_panic(expected = "axpy length mismatch")]
    fn axpy_len_mismatch_panics() {
        let mut y = [0.0];
        axpy(1.0, &[1.0, 2.0], &mut y);
    }

    #[test]
    fn scale_and_copy() {
        let mut x = [2.0, 4.0];
        scale(0.5, &mut x);
        assert_eq!(x, [1.0, 2.0]);
        let mut y = [0.0, 0.0];
        copy(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn dot_norm_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dist2_sq(&[1.0, 1.0], &[4.0, 5.0]), 25.0);
    }

    #[test]
    fn sum_and_mean() {
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn average_of_three() {
        let a = [1.0, 0.0];
        let b = [2.0, 3.0];
        let c = [3.0, 6.0];
        let mut out = [0.0, 0.0];
        average_into(&[&a, &b, &c], &mut out);
        assert_eq!(out, [2.0, 3.0]);
    }

    #[test]
    fn average_is_order_invariant() {
        let a = [0.1_f32, 0.7];
        let b = [0.3_f32, -0.2];
        let c = [123.456_f32, 1e-3];
        let mut o1 = [0.0, 0.0];
        let mut o2 = [0.0, 0.0];
        average_into(&[&a, &b, &c], &mut o1);
        average_into(&[&c, &a, &b], &mut o2);
        assert_eq!(o1, o2); // f64 accumulation of 3 f32s is exact enough
    }

    #[test]
    fn weighted_average_convex() {
        let a = [0.0, 10.0];
        let b = [10.0, 0.0];
        let mut out = [0.0, 0.0];
        weighted_average_into(&[&a, &b], &[0.25, 0.75], &mut out);
        assert_eq!(out, [7.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "zero vectors")]
    fn average_empty_panics() {
        let mut out = [0.0];
        average_into(&[], &mut out);
    }

    #[test]
    fn max_abs_works() {
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    /// Reference (unchunked) implementations the chunked kernels must match
    /// bit-for-bit, including across the AVG_CHUNK boundary.
    fn naive_average(sources: &[&[f32]], out: &mut [f32]) {
        let n = sources.len() as f64;
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0_f64;
            for s in sources {
                acc += f64::from(s[i]);
            }
            *o = (acc / n) as f32;
        }
    }

    fn naive_weighted(sources: &[&[f32]], weights: &[f64], out: &mut [f32]) {
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0_f64;
            for (s, &w) in sources.iter().zip(weights) {
                acc += w * f64::from(s[i]);
            }
            *o = acc as f32;
        }
    }

    #[test]
    fn chunked_average_matches_naive_bitwise() {
        // Lengths straddling the chunk width: below, at, just above, and
        // multiple chunks with a ragged tail.
        for n in [
            1usize,
            7,
            AVG_CHUNK - 1,
            AVG_CHUNK,
            AVG_CHUNK + 1,
            3 * AVG_CHUNK + 13,
        ] {
            let a = arb_vec(n, 1);
            let b = arb_vec(n, 2);
            let c = arb_vec(n, 3);
            let sources: Vec<&[f32]> = vec![&a, &b, &c];
            let mut got = vec![0.0_f32; n];
            let mut want = vec![0.0_f32; n];
            average_into(&sources, &mut got);
            naive_average(&sources, &mut want);
            assert!(
                got.iter()
                    .zip(&want)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "average_into diverged from naive at n={n}"
            );
            let w = [0.2_f64, 0.5, 0.3];
            weighted_average_into(&sources, &w, &mut got);
            naive_weighted(&sources, &w, &mut want);
            assert!(
                got.iter()
                    .zip(&want)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "weighted_average_into diverged from naive at n={n}"
            );
        }
    }

    #[test]
    fn average_present_matches_compacted_average() {
        // Slot array with holes: the fused path over Option slots must equal
        // compact-then-average bit for bit, for any hole pattern.
        let n = AVG_CHUNK + 37;
        let vecs: Vec<Vec<f32>> = (0..5).map(|s| arb_vec(n, 10 + s as u64)).collect();
        for mask in 1u32..32 {
            let slots: Vec<Option<Vec<f32>>> = vecs
                .iter()
                .enumerate()
                .map(|(j, v)| {
                    if (mask >> j) & 1 == 1 {
                        Some(v.clone())
                    } else {
                        None
                    }
                })
                .collect();
            let mut fused = vec![0.0_f32; n];
            let count = average_present_into(&slots, |s| s.as_deref(), &mut fused);
            assert_eq!(count as u32, mask.count_ones());
            let compact: Vec<&[f32]> = slots.iter().filter_map(|s| s.as_deref()).collect();
            let mut want = vec![0.0_f32; n];
            average_into(&compact, &mut want);
            assert_eq!(fused, want, "mask {mask:05b}");
        }
    }

    #[test]
    fn average_present_all_absent_leaves_out_untouched() {
        let slots: Vec<Option<Vec<f32>>> = vec![None, None];
        let mut out = vec![7.0_f32; 4];
        let count = average_present_into(&slots, |s| s.as_deref(), &mut out);
        assert_eq!(count, 0);
        assert_eq!(out, vec![7.0_f32; 4]);
    }
}
