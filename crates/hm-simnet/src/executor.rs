//! Order-fixed parallel execution of per-client work.
//!
//! The simulator's single concurrency rule (DESIGN.md §7): client work may
//! run on any thread, but (a) each work item draws only from its own keyed
//! RNG stream, and (b) results land in their input index slot, so every
//! downstream reduction folds them in a fixed order. Under that rule,
//! `Parallelism::Rayon` and `Parallelism::Sequential` produce bit-identical
//! results — asserted by `tests/determinism.rs` at the workspace level and
//! by the unit tests below.
//!
//! Because the rule constrains only *streams* and *slots* — never the
//! schedule — it also licenses coarser task shapes than a flat per-item
//! map: [`Parallelism::map_chains`] runs long-lived sequential chains (one
//! per edge, say) with nested fan-out inside, with no barrier between
//! chains. The round-level engine in `hm-core` uses this to remove the
//! per-block global joins of the barrier engine.

use rayon::prelude::*;

/// Which round-level execution engine an algorithm run uses.
///
/// Both engines obey the concurrency rule above and are bit-identical on
/// every algorithm and fault preset (asserted by `tests/determinism.rs`);
/// they differ only in task shape and allocation behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// Per-edge task chains: each participating edge runs its τ2 blocks as
    /// one sequential task with its clients fanned out inside, so there is
    /// no cross-edge join until the end of the round (the default).
    #[default]
    Chained,
    /// The pre-chain reference engine: all edges synchronise at every
    /// block boundary (τ2−1 global joins per round) and every client-block
    /// allocates fresh scratch. Kept as the measurement baseline for the
    /// `roundtime` bench and as the oracle for engine-equivalence tests.
    Barrier,
}

/// Whether client work runs sequentially or on the rayon pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded (reference semantics, useful for debugging).
    Sequential,
    /// Data-parallel over clients via rayon (the default).
    #[default]
    Rayon,
}

impl Parallelism {
    /// Resolve the mode from the `HM_PARALLELISM` environment variable:
    /// `"sequential"` (case-insensitive) selects [`Parallelism::Sequential`],
    /// anything else — including an unset variable — selects the default
    /// [`Parallelism::Rayon`]. CI uses this to run the whole test suite
    /// under both executors without code changes.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("HM_PARALLELISM").ok().as_deref())
    }

    /// Resolve the mode from an already-read `HM_PARALLELISM` value
    /// (`None` = unset). Pure function of its argument, so tests can cover
    /// every case without mutating the process-global environment.
    pub fn from_env_value(value: Option<&str>) -> Self {
        match value {
            Some(v) if v.eq_ignore_ascii_case("sequential") => Parallelism::Sequential,
            _ => Parallelism::Rayon,
        }
    }

    /// Map `f` over `items`, returning outputs in input order.
    pub fn map<T, U, F>(self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Send + Sync,
    {
        match self {
            Parallelism::Sequential => items.into_iter().map(f).collect(),
            Parallelism::Rayon => items.into_par_iter().map(f).collect(),
        }
    }

    /// Map `f` over index `0..n`, returning outputs in index order.
    pub fn map_indexed<U, F>(self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Send + Sync,
    {
        match self {
            Parallelism::Sequential => (0..n).map(f).collect(),
            Parallelism::Rayon => (0..n).into_par_iter().map(f).collect(),
        }
    }

    /// Map `f` over borrowed `items`, returning outputs in input order.
    ///
    /// Unlike [`Parallelism::map`] this does not consume the input, so call
    /// sites that reuse the same task list every block don't have to clone
    /// it just to satisfy the executor.
    pub fn map_ref<T, U, F>(self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Send + Sync,
    {
        match self {
            Parallelism::Sequential => items.iter().map(f).collect(),
            Parallelism::Rayon => items.par_iter().map(f).collect(),
        }
    }

    /// Run `n` independent sequential *chains* concurrently, returning each
    /// chain's output in index order.
    ///
    /// A chain is a long-lived task (e.g. one edge's τ2 client-edge blocks)
    /// that runs start to finish on one worker with no synchronisation
    /// against sibling chains. `with_max_len(1)` forces rayon to split the
    /// range down to one chain per task, so chains of very different cost
    /// (heterogeneous τ2, stragglers) never get glued into the same task.
    /// Nested rayon calls inside a chain (client fan-out) are fine: rayon's
    /// work-stealing lets idle workers pick up the inner jobs.
    pub fn map_chains<U, F>(self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Send + Sync,
    {
        match self {
            Parallelism::Sequential => (0..n).map(f).collect(),
            Parallelism::Rayon => (0..n).into_par_iter().with_max_len(1).map(f).collect(),
        }
    }

    /// Apply `f` to every element of `items` in place, passing the index.
    ///
    /// The in-place counterpart of [`Parallelism::map_ref`]: chains use it
    /// to fan client work out into pre-allocated result slots that persist
    /// across blocks, instead of collecting a fresh `Vec` per block.
    pub fn for_each_mut<T, F>(self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Send + Sync,
    {
        match self {
            Parallelism::Sequential => {
                for (i, item) in items.iter_mut().enumerate() {
                    f(i, item);
                }
            }
            Parallelism::Rayon => {
                items
                    .par_iter_mut()
                    .enumerate()
                    .for_each(|(i, item)| f(i, item));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        for mode in [Parallelism::Sequential, Parallelism::Rayon] {
            let out = mode.map((0..100).collect::<Vec<usize>>(), |x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_indexed_matches_sequential() {
        let work = |i: usize| -> u64 {
            // Hash-like deterministic work.
            let mut s = i as u64 + 1;
            for _ in 0..100 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            s
        };
        let seq = Parallelism::Sequential.map_indexed(64, work);
        let par = Parallelism::Rayon.map_indexed(64, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn from_env_value_selects_executor() {
        // Exercises the pure resolver rather than set_var/remove_var: env
        // vars are process-global, and mutating them here would race with
        // any parallel test that calls `from_env`.
        assert_eq!(Parallelism::from_env_value(None), Parallelism::Rayon);
        assert_eq!(
            Parallelism::from_env_value(Some("Sequential")),
            Parallelism::Sequential
        );
        assert_eq!(
            Parallelism::from_env_value(Some("sequential")),
            Parallelism::Sequential
        );
        assert_eq!(
            Parallelism::from_env_value(Some("rayon")),
            Parallelism::Rayon
        );
        assert_eq!(
            Parallelism::from_env_value(Some("garbage")),
            Parallelism::Rayon
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Parallelism::Rayon.map(Vec::<u8>::new(), |x| x);
        assert!(out.is_empty());
        let out2: Vec<u8> = Parallelism::Rayon.map_indexed(0, |_| 0);
        assert!(out2.is_empty());
        let out3: Vec<u8> = Parallelism::Rayon.map_ref(&[], |x: &u8| *x);
        assert!(out3.is_empty());
        let out4: Vec<u8> = Parallelism::Rayon.map_chains(0, |_| 0);
        assert!(out4.is_empty());
        Parallelism::Rayon.for_each_mut(&mut Vec::<u8>::new(), |_, _| {});
    }

    #[test]
    fn map_ref_does_not_consume_and_preserves_order() {
        let items: Vec<usize> = (0..64).collect();
        for mode in [Parallelism::Sequential, Parallelism::Rayon] {
            let out = mode.map_ref(&items, |&x| x * 3);
            assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>());
        }
        // `items` is still usable: the whole point of the borrowed variant.
        assert_eq!(items.len(), 64);
    }

    #[test]
    fn map_chains_matches_sequential_with_nested_fanout() {
        // Each chain runs several "blocks" sequentially, fanning inner work
        // out through the same Parallelism — the exact shape the round
        // engine uses (edges × blocks × clients).
        let run = |mode: Parallelism| -> Vec<u64> {
            mode.map_chains(6, |chain| {
                let mut acc = chain as u64;
                for block in 0..4 {
                    let inner = mode.map_indexed(3, |client| {
                        let mut s = (chain * 100 + block * 10 + client) as u64 + 1;
                        for _ in 0..50 {
                            s = s
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                        }
                        s
                    });
                    for v in inner {
                        acc = acc.wrapping_add(v);
                    }
                }
                acc
            })
        };
        assert_eq!(run(Parallelism::Sequential), run(Parallelism::Rayon));
    }

    #[test]
    fn for_each_mut_writes_every_slot() {
        for mode in [Parallelism::Sequential, Parallelism::Rayon] {
            let mut slots = vec![0usize; 40];
            mode.for_each_mut(&mut slots, |i, s| *s = i + 1);
            assert_eq!(slots, (1..=40).collect::<Vec<_>>());
        }
    }

    #[test]
    fn exec_engine_default_is_chained() {
        assert_eq!(ExecEngine::default(), ExecEngine::Chained);
    }
}
