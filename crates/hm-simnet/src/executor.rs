//! Order-fixed parallel execution of per-client work.
//!
//! The simulator's single concurrency rule (DESIGN.md §7): client work may
//! run on any thread, but (a) each work item draws only from its own keyed
//! RNG stream, and (b) results land in their input index slot, so every
//! downstream reduction folds them in a fixed order. Under that rule,
//! `Parallelism::Rayon` and `Parallelism::Sequential` produce bit-identical
//! results — asserted by `tests/determinism.rs` at the workspace level and
//! by the unit tests below.

use rayon::prelude::*;

/// Whether client work runs sequentially or on the rayon pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded (reference semantics, useful for debugging).
    Sequential,
    /// Data-parallel over clients via rayon (the default).
    #[default]
    Rayon,
}

impl Parallelism {
    /// Resolve the mode from the `HM_PARALLELISM` environment variable:
    /// `"sequential"` (case-insensitive) selects [`Parallelism::Sequential`],
    /// anything else — including an unset variable — selects the default
    /// [`Parallelism::Rayon`]. CI uses this to run the whole test suite
    /// under both executors without code changes.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("HM_PARALLELISM").ok().as_deref())
    }

    /// Resolve the mode from an already-read `HM_PARALLELISM` value
    /// (`None` = unset). Pure function of its argument, so tests can cover
    /// every case without mutating the process-global environment.
    pub fn from_env_value(value: Option<&str>) -> Self {
        match value {
            Some(v) if v.eq_ignore_ascii_case("sequential") => Parallelism::Sequential,
            _ => Parallelism::Rayon,
        }
    }

    /// Map `f` over `items`, returning outputs in input order.
    pub fn map<T, U, F>(self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Send + Sync,
    {
        match self {
            Parallelism::Sequential => items.into_iter().map(f).collect(),
            Parallelism::Rayon => items.into_par_iter().map(f).collect(),
        }
    }

    /// Map `f` over index `0..n`, returning outputs in index order.
    pub fn map_indexed<U, F>(self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Send + Sync,
    {
        match self {
            Parallelism::Sequential => (0..n).map(f).collect(),
            Parallelism::Rayon => (0..n).into_par_iter().map(f).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        for mode in [Parallelism::Sequential, Parallelism::Rayon] {
            let out = mode.map((0..100).collect::<Vec<usize>>(), |x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_indexed_matches_sequential() {
        let work = |i: usize| -> u64 {
            // Hash-like deterministic work.
            let mut s = i as u64 + 1;
            for _ in 0..100 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            s
        };
        let seq = Parallelism::Sequential.map_indexed(64, work);
        let par = Parallelism::Rayon.map_indexed(64, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn from_env_value_selects_executor() {
        // Exercises the pure resolver rather than set_var/remove_var: env
        // vars are process-global, and mutating them here would race with
        // any parallel test that calls `from_env`.
        assert_eq!(Parallelism::from_env_value(None), Parallelism::Rayon);
        assert_eq!(
            Parallelism::from_env_value(Some("Sequential")),
            Parallelism::Sequential
        );
        assert_eq!(
            Parallelism::from_env_value(Some("sequential")),
            Parallelism::Sequential
        );
        assert_eq!(
            Parallelism::from_env_value(Some("rayon")),
            Parallelism::Rayon
        );
        assert_eq!(
            Parallelism::from_env_value(Some("garbage")),
            Parallelism::Rayon
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Parallelism::Rayon.map(Vec::<u8>::new(), |x| x);
        assert!(out.is_empty());
        let out2: Vec<u8> = Parallelism::Rayon.map_indexed(0, |_| 0);
        assert!(out2.is_empty());
    }
}
