//! Deterministic membership churn: clients leave, clients join, edge
//! servers fail permanently and their clients are re-homed.
//!
//! Mirrors the fault-injection design (`fault.rs`): a validated
//! [`ChurnPlan`] of per-round rates, every stochastic decision a pure
//! function of `(plan, seed, round, entity)` drawn from its own keyed
//! [`StreamRng`] stream (`Purpose::Churn`), so churn is bit-reproducible
//! across executors and replayable by the conformance automaton. A
//! zero-rate plan makes **no draws**, keeping churn-off runs bit-identical
//! to pre-churn builds.
//!
//! The membership state lives in [`ActiveTopology`], a mutable view over
//! the frozen [`Topology`]: per-edge member lists of global client ids, an
//! up/down bit per edge, and the id counter for joiners. All *policy*
//! (which surviving edge an orphan lands on) is deterministic —
//! least-loaded, then lowest edge id — so the replayer re-derives every
//! transition from the keyed streams alone.

use crate::topology::Topology;
use hm_data::rng::{Purpose, StreamKey, StreamRng};

/// Mix a churn-decision class into a stream-entity id, exactly like the
/// fault module's level mixing: class 0 = client leaves, class 1 = edge
/// failures, class 2 = join slots. Distinct classes never share a stream
/// even when their ids collide.
#[inline]
fn entity(class: usize, id: usize) -> u64 {
    ((class as u64) << 32) | id as u64
}

/// Per-round membership-churn rates. All rates are probabilities in
/// `[0, 1]`; a plan with every rate zero is inert ([`ChurnPlan::is_none`])
/// and draws nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnPlan {
    /// Per-round probability that an active client permanently leaves.
    pub leave_rate: f32,
    /// Per-round probability that a join slot produces a new client.
    /// Every round offers one join slot per edge, so the expected arrival
    /// count is `join_rate × n_edges` per round.
    pub join_rate: f32,
    /// Per-round probability that an up edge server fails permanently.
    /// (Distinct from `FaultPlan::edge_outage`, which is transient.)
    pub edge_fail_rate: f32,
    /// `true`: a failed edge's clients are re-homed onto surviving edges
    /// (least-loaded, then lowest id). `false`: they stay stranded on the
    /// dead edge and never deliver again — the stale-fallback baseline
    /// the availability bench compares against.
    pub rehome: bool,
}

/// The inert plan: no churn, no draws.
pub const NO_CHURN: ChurnPlan = ChurnPlan {
    leave_rate: 0.0,
    join_rate: 0.0,
    edge_fail_rate: 0.0,
    rehome: true,
};

impl Default for ChurnPlan {
    fn default() -> Self {
        NO_CHURN
    }
}

/// Preset names accepted by [`ChurnPlan::preset`], in display order.
pub const CHURN_PRESETS: [&str; 5] = ["none", "mild", "flash-crowd", "edge-failover", "chaos-churn"];

impl ChurnPlan {
    /// True when every rate is zero: the plan draws nothing and the run
    /// is bit-identical to a pre-churn build. (`rehome` is policy, not a
    /// rate, so it does not affect inertness.)
    pub fn is_none(&self) -> bool {
        self.leave_rate == 0.0 && self.join_rate == 0.0 && self.edge_fail_rate == 0.0
    }

    /// Validate every knob: rates must be finite probabilities.
    ///
    /// # Errors
    /// Returns a human-readable description of the first bad knob.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, v: f32| -> Result<(), String> {
            if !v.is_finite() {
                return Err(format!("{name} must be finite, got {v}"));
            }
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1], got {v}"));
            }
            Ok(())
        };
        prob("leave_rate", self.leave_rate)?;
        prob("join_rate", self.join_rate)?;
        prob("edge_fail_rate", self.edge_fail_rate)?;
        Ok(())
    }

    /// Look up a named preset (see [`CHURN_PRESETS`]).
    pub fn preset(name: &str) -> Option<ChurnPlan> {
        match name {
            "none" => Some(NO_CHURN),
            "mild" => Some(ChurnPlan {
                leave_rate: 0.02,
                join_rate: 0.05,
                edge_fail_rate: 0.0,
                rehome: true,
            }),
            "flash-crowd" => Some(ChurnPlan {
                leave_rate: 0.01,
                join_rate: 0.6,
                edge_fail_rate: 0.0,
                rehome: true,
            }),
            "edge-failover" => Some(ChurnPlan {
                leave_rate: 0.0,
                join_rate: 0.0,
                edge_fail_rate: 0.15,
                rehome: true,
            }),
            "chaos-churn" => Some(ChurnPlan {
                leave_rate: 0.05,
                join_rate: 0.3,
                edge_fail_rate: 0.1,
                rehome: true,
            }),
            _ => None,
        }
    }

    // --- Pure decision functions -------------------------------------
    //
    // Pure functions of (plan, seed, round, id): the run loop and the
    // conformance replayer both call these. Streams are keyed, never
    // shared, so *draw order does not matter* — only the membership set
    // a decision is evaluated over, which both sides derive identically.

    /// Whether an active client permanently leaves at the start of the
    /// given round.
    pub fn client_leaves(&self, seed: u64, round: usize, client: usize) -> bool {
        if self.leave_rate == 0.0 {
            return false;
        }
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::Churn,
            round as u64,
            entity(0, client),
        ));
        rng.uniform() < f64::from(self.leave_rate)
    }

    /// Whether an up edge server fails permanently at the start of the
    /// given round.
    pub fn edge_fails(&self, seed: u64, round: usize, edge: usize) -> bool {
        if self.edge_fail_rate == 0.0 {
            return false;
        }
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::Churn,
            round as u64,
            entity(1, edge),
        ));
        rng.uniform() < f64::from(self.edge_fail_rate)
    }

    /// Whether join slot `slot` (0-based, one per edge) produces a new
    /// client at the start of the given round.
    pub fn client_joins(&self, seed: u64, round: usize, slot: usize) -> bool {
        if self.join_rate == 0.0 {
            return false;
        }
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::Churn,
            round as u64,
            entity(2, slot),
        ));
        rng.uniform() < f64::from(self.join_rate)
    }
}

/// Cumulative membership-churn accounting for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Clients that joined mid-run.
    pub joined: u64,
    /// Clients that permanently left.
    pub left: u64,
    /// Edge servers that failed permanently.
    pub edge_failures: u64,
    /// Clients re-homed off a failed edge onto a survivor.
    pub rehomed: u64,
    /// Clients stranded on a dead edge (re-homing off).
    pub stranded: u64,
}

impl ChurnStats {
    /// Total membership transitions.
    pub fn total(&self) -> u64 {
        self.joined + self.left + self.edge_failures + self.rehomed + self.stranded
    }

    /// Fold one round's transitions into the totals.
    pub fn absorb(&mut self, rc: &RoundChurn) {
        self.joined += rc.joined.len() as u64;
        self.left += rc.left.len() as u64;
        self.edge_failures += rc.failed_edges.len() as u64;
        self.rehomed += rc.rehomed.len() as u64;
        self.stranded += rc.stranded.len() as u64;
    }
}

/// The membership transitions one round of churn produced, in the order
/// they were applied. Everything here is re-derivable from the keyed
/// streams plus the deterministic policy, which is how the conformance
/// automaton rejects forged transitions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundChurn {
    /// Global ids of clients that left this round, ascending per edge.
    pub left: Vec<usize>,
    /// Edges that failed permanently this round, ascending.
    pub failed_edges: Vec<usize>,
    /// `(client, from_edge, to_edge)` re-homing moves, in assignment
    /// order (orphans ascending by global id).
    pub rehomed: Vec<(usize, usize, usize)>,
    /// Clients stranded on a dead edge (only when `rehome` is off).
    pub stranded: Vec<usize>,
    /// `(client, home_edge)` arrivals, in join-slot order.
    pub joined: Vec<(usize, usize)>,
}

impl RoundChurn {
    /// True when this round changed nothing.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
            && self.failed_edges.is_empty()
            && self.rehomed.is_empty()
            && self.stranded.is_empty()
            && self.joined.is_empty()
    }
}

/// Mutable membership view over a frozen [`Topology`]: which edges are
/// up, which global client ids each edge currently serves, and the id
/// counter for joiners. Global ids `< base_total` are the topology's
/// original clients (`gid = edge·n₀ + idx`); ids `≥ base_total` were
/// minted for mid-run joiners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveTopology {
    base_total: usize,
    edge_up: Vec<bool>,
    members: Vec<Vec<usize>>,
    next_join_id: usize,
}

impl ActiveTopology {
    /// The all-up, all-original-members view of a topology.
    pub fn new(topo: &Topology) -> Self {
        let members = (0..topo.num_edges())
            .map(|e| topo.clients_of(e).collect())
            .collect();
        Self {
            base_total: topo.total_clients(),
            edge_up: vec![true; topo.num_edges()],
            members,
            next_join_id: topo.total_clients(),
        }
    }

    /// Rebuild a view from checkpointed parts.
    ///
    /// # Panics
    /// Panics if `edge_up` and `members` disagree on the edge count.
    pub fn from_parts(
        base_total: usize,
        edge_up: Vec<bool>,
        members: Vec<Vec<usize>>,
        next_join_id: usize,
    ) -> Self {
        assert_eq!(edge_up.len(), members.len(), "edge count mismatch");
        Self {
            base_total,
            edge_up,
            members,
            next_join_id,
        }
    }

    /// The checkpointable parts: `(base_total, edge_up, members,
    /// next_join_id)`.
    pub fn parts(&self) -> (usize, &[bool], &[Vec<usize>], usize) {
        (
            self.base_total,
            &self.edge_up,
            &self.members,
            self.next_join_id,
        )
    }

    /// Number of edges in the underlying topology (up or down).
    pub fn num_edges(&self) -> usize {
        self.edge_up.len()
    }

    /// The topology's original client count; ids at or above this were
    /// minted for joiners.
    pub fn base_total(&self) -> usize {
        self.base_total
    }

    /// Whether edge `e` is still up.
    pub fn is_up(&self, edge: usize) -> bool {
        self.edge_up[edge]
    }

    /// Up edges, ascending.
    pub fn up_edges(&self) -> Vec<usize> {
        (0..self.edge_up.len()).filter(|&e| self.edge_up[e]).collect()
    }

    /// Number of up edges.
    pub fn num_up(&self) -> usize {
        self.edge_up.iter().filter(|&&u| u).count()
    }

    /// Active global client ids currently homed at edge `e`, in
    /// deterministic order (originals first, then arrivals in
    /// assignment order).
    pub fn members_of(&self, edge: usize) -> &[usize] {
        &self.members[edge]
    }

    /// Active clients across up edges.
    pub fn active_clients(&self) -> usize {
        (0..self.edge_up.len())
            .filter(|&e| self.edge_up[e])
            .map(|e| self.members[e].len())
            .sum()
    }

    /// Exclusive upper bound on every global client id seen so far.
    pub fn id_bound(&self) -> usize {
        self.next_join_id
    }

    /// Re-project fairness weights onto the simplex over up edges: dead
    /// edges' mass is zeroed and the survivors renormalized (in `f64`,
    /// then truncated — a fixed evaluation order, so the run loop and the
    /// conformance replayer compute bit-identical weights). If every
    /// weighted edge is down, fall back to uniform over the survivors.
    /// A no-op while every edge is up.
    pub fn reproject_weights(&self, p: &mut [f32]) {
        if p.is_empty() || self.num_up() == self.num_edges() {
            return;
        }
        let mut sum = 0.0_f64;
        for (e, x) in p.iter_mut().enumerate() {
            if !self.edge_up[e] {
                *x = 0.0;
            }
            sum += f64::from(*x);
        }
        if sum <= 0.0 {
            let share = 1.0 / self.num_up() as f32;
            for (e, x) in p.iter_mut().enumerate() {
                *x = if self.edge_up[e] { share } else { 0.0 };
            }
        } else {
            let inv = (1.0 / sum) as f32;
            for x in p.iter_mut() {
                *x *= inv;
            }
        }
    }

    /// The up edge with the fewest members, ties broken by lowest id.
    /// `None` when every edge is down (cannot happen via `apply_round`,
    /// which refuses to fail the last edge).
    fn least_loaded_up(&self) -> Option<usize> {
        (0..self.edge_up.len())
            .filter(|&e| self.edge_up[e])
            .min_by_key(|&e| (self.members[e].len(), e))
    }

    /// Apply one round of churn: leaves, then edge failures (with
    /// re-homing or stranding), then joins. Every coin is an
    /// independently keyed stream, so the transition set is a pure
    /// function of `(plan, seed, round, membership-before)` — the
    /// conformance replayer calls this same method on its mirror and
    /// compares. A failure that would leave zero up edges is ignored
    /// (the draw is still made, so later decisions are unaffected).
    pub fn apply_round(&mut self, plan: &ChurnPlan, seed: u64, round: usize) -> RoundChurn {
        let mut rc = RoundChurn::default();
        if plan.is_none() {
            return rc;
        }
        // 1. Leaves: evaluated over every active client on an up edge.
        for e in 0..self.edge_up.len() {
            if !self.edge_up[e] {
                continue;
            }
            self.members[e].retain(|&gid| {
                if plan.client_leaves(seed, round, gid) {
                    rc.left.push(gid);
                    false
                } else {
                    true
                }
            });
        }
        // 2. Permanent edge failures, ascending; never the last up edge.
        for e in 0..self.edge_up.len() {
            if !self.edge_up[e] {
                continue;
            }
            let fails = plan.edge_fails(seed, round, e);
            if fails && self.num_up() > 1 {
                self.edge_up[e] = false;
                rc.failed_edges.push(e);
            }
        }
        // Orphans of this round's failures: re-home or strand.
        for &e in &rc.failed_edges {
            if plan.rehome {
                let mut orphans = std::mem::take(&mut self.members[e]);
                orphans.sort_unstable();
                for gid in orphans {
                    let to = self.least_loaded_up().expect("at least one up edge");
                    self.members[to].push(gid);
                    rc.rehomed.push((gid, e, to));
                }
            } else {
                rc.stranded.extend(self.members[e].iter().copied());
            }
        }
        // 3. Joins: one slot per edge per round, each an independent coin.
        for slot in 0..self.edge_up.len() {
            if plan.client_joins(seed, round, slot) {
                let gid = self.next_join_id;
                self.next_join_id += 1;
                let to = self.least_loaded_up().expect("at least one up edge");
                self.members[to].push(gid);
                rc.joined.push((gid, to));
            }
        }
        rc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(4, 3)
    }

    #[test]
    fn presets_all_validate() {
        for name in CHURN_PRESETS {
            let plan = ChurnPlan::preset(name).unwrap();
            plan.validate().unwrap();
        }
        assert!(ChurnPlan::preset("bogus").is_none());
        assert!(ChurnPlan::preset("none").unwrap().is_none());
        assert!(!ChurnPlan::preset("mild").unwrap().is_none());
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let mut p = NO_CHURN;
        p.leave_rate = 1.5;
        assert!(p.validate().is_err());
        p.leave_rate = f32::NAN;
        assert!(p.validate().is_err());
        p.leave_rate = -0.1;
        assert!(p.validate().is_err());
        p.leave_rate = 1.0;
        p.validate().unwrap();
    }

    #[test]
    fn zero_rate_plan_changes_nothing() {
        let mut at = ActiveTopology::new(&topo());
        let before = at.clone();
        let rc = at.apply_round(&NO_CHURN, 7, 0);
        assert!(rc.is_empty());
        assert_eq!(at, before);
    }

    #[test]
    fn decisions_are_pure_functions_of_the_key() {
        let plan = ChurnPlan::preset("chaos-churn").unwrap();
        for round in 0..10 {
            for id in 0..12 {
                assert_eq!(
                    plan.client_leaves(3, round, id),
                    plan.client_leaves(3, round, id)
                );
                assert_eq!(plan.edge_fails(3, round, id), plan.edge_fails(3, round, id));
                assert_eq!(
                    plan.client_joins(3, round, id),
                    plan.client_joins(3, round, id)
                );
            }
        }
    }

    #[test]
    fn apply_round_is_deterministic_and_replayable() {
        let plan = ChurnPlan::preset("chaos-churn").unwrap();
        let mut a = ActiveTopology::new(&topo());
        let mut b = ActiveTopology::new(&topo());
        for round in 0..20 {
            let ra = a.apply_round(&plan, 11, round);
            let rb = b.apply_round(&plan, 11, round);
            assert_eq!(ra, rb);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rehoming_moves_orphans_to_least_loaded_survivor() {
        let plan = ChurnPlan {
            edge_fail_rate: 1.0,
            ..NO_CHURN
        };
        let mut at = ActiveTopology::new(&topo());
        let rc = at.apply_round(&plan, 1, 0);
        // Rate 1.0 fails edges 0..2; the guard keeps edge 3 up.
        assert_eq!(rc.failed_edges, vec![0, 1, 2]);
        assert_eq!(at.up_edges(), vec![3]);
        // Every orphan landed on the lone survivor; nobody was lost.
        assert_eq!(rc.rehomed.len(), 9);
        assert!(rc.rehomed.iter().all(|&(_, _, to)| to == 3));
        assert_eq!(at.members_of(3).len(), 12);
        assert_eq!(at.active_clients(), 12);
    }

    #[test]
    fn stranding_keeps_orphans_on_the_dead_edge() {
        let plan = ChurnPlan {
            edge_fail_rate: 1.0,
            rehome: false,
            ..NO_CHURN
        };
        let mut at = ActiveTopology::new(&topo());
        let rc = at.apply_round(&plan, 1, 0);
        assert_eq!(rc.failed_edges, vec![0, 1, 2]);
        assert!(rc.rehomed.is_empty());
        assert_eq!(rc.stranded.len(), 9);
        assert_eq!(at.active_clients(), 3);
        // Stranded members remain listed under their dead edge.
        assert_eq!(at.members_of(0).len(), 3);
    }

    #[test]
    fn joiners_get_fresh_ascending_ids() {
        let plan = ChurnPlan {
            join_rate: 1.0,
            ..NO_CHURN
        };
        let mut at = ActiveTopology::new(&topo());
        let r0 = at.apply_round(&plan, 1, 0);
        let r1 = at.apply_round(&plan, 1, 1);
        assert_eq!(r0.joined.len(), 4);
        assert_eq!(r1.joined.len(), 4);
        let ids: Vec<usize> = r0.joined.iter().chain(&r1.joined).map(|&(g, _)| g).collect();
        assert_eq!(ids, vec![12, 13, 14, 15, 16, 17, 18, 19]);
        assert_eq!(at.active_clients(), 20);
        assert_eq!(at.id_bound(), 20);
    }

    #[test]
    fn parts_round_trip() {
        let plan = ChurnPlan::preset("chaos-churn").unwrap();
        let mut at = ActiveTopology::new(&topo());
        for round in 0..10 {
            at.apply_round(&plan, 5, round);
        }
        let (base, up, members, next) = at.parts();
        let rebuilt =
            ActiveTopology::from_parts(base, up.to_vec(), members.to_vec(), next);
        assert_eq!(rebuilt, at);
        // And the rebuilt view continues identically.
        let mut cont = rebuilt.clone();
        let mut orig = at.clone();
        assert_eq!(
            cont.apply_round(&plan, 5, 10),
            orig.apply_round(&plan, 5, 10)
        );
        assert_eq!(cont, orig);
    }

    #[test]
    fn stats_absorb_counts_transitions() {
        let plan = ChurnPlan::preset("chaos-churn").unwrap();
        let mut at = ActiveTopology::new(&topo());
        let mut stats = ChurnStats::default();
        for round in 0..30 {
            let rc = at.apply_round(&plan, 9, round);
            stats.absorb(&rc);
        }
        assert!(stats.total() > 0);
        assert!(stats.joined > 0);
        assert!(stats.left > 0);
    }

    #[test]
    fn last_up_edge_never_fails() {
        let plan = ChurnPlan {
            edge_fail_rate: 1.0,
            ..NO_CHURN
        };
        let mut at = ActiveTopology::new(&topo());
        for round in 0..5 {
            at.apply_round(&plan, 2, round);
        }
        assert_eq!(at.num_up(), 1);
    }
}
