//! Simulated wall-clock cost model.
//!
//! The paper's motivation (§1) is that cloud connectivity is slow and
//! scarce while client-edge links are fast and local. This module turns the
//! metered communication of a run into simulated deployment time under a
//! configurable latency/bandwidth model, so "time to accuracy" can be
//! compared across two-layer and three-layer methods — the system-level
//! argument for the hierarchy, quantified.
//!
//! The model is synchronous (like the protocol): each synchronisation round
//! pays one round-trip on its link, every transferred float pays serial
//! bandwidth on its link, and every local SGD time slot pays one compute
//! step (clients within a slot run in parallel, so slots — not client-steps
//! — count).

use crate::comm::CommStats;
use crate::Link;

/// Latency/bandwidth parameters of the simulated deployment.
///
/// ```
/// use hm_simnet::{CommMeter, LatencyModel, Link};
///
/// let meter = CommMeter::new();
/// meter.record_round(Link::EdgeCloud);
/// meter.record_gather(Link::EdgeCloud, 1_000, 5);
/// let t = LatencyModel::mobile_edge().simulated_seconds(&meter.snapshot(), 10);
/// assert!(t > 0.1); // one WAN round-trip dominates
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Compute time of one local SGD step (seconds).
    pub client_step_s: f64,
    /// Round-trip latency per synchronisation round, per link (seconds).
    pub rtt_s: [f64; 3],
    /// Bandwidth per link (floats per second, aggregated over the link).
    pub floats_per_s: [f64; 3],
}

impl LatencyModel {
    /// A mobile-edge-computing preset: LAN-class client-edge links
    /// (5 ms RTT, 10⁹ floats/s ≈ 32 Gbit/s aggregate), WAN-class links to
    /// the cloud (100 ms RTT, 10⁷ floats/s ≈ 320 Mbit/s aggregate), and
    /// 1 ms compute per local step.
    pub fn mobile_edge() -> Self {
        Self {
            client_step_s: 1e-3,
            // [ClientEdge, EdgeCloud, ClientCloud]
            rtt_s: [5e-3, 100e-3, 100e-3],
            floats_per_s: [1e9, 1e7, 1e7],
        }
    }

    /// A uniform-network preset (all links equal) — the control case in
    /// which the hierarchy buys nothing.
    pub fn uniform(rtt_s: f64, floats_per_s: f64) -> Self {
        Self {
            client_step_s: 1e-3,
            rtt_s: [rtt_s; 3],
            floats_per_s: [floats_per_s; 3],
        }
    }

    fn idx(link: Link) -> usize {
        match link {
            Link::ClientEdge => 0,
            Link::EdgeCloud => 1,
            Link::ClientCloud => 2,
        }
    }

    /// Simulated seconds for a run (or run prefix) that executed
    /// `slots` local-SGD time slots and produced the communication
    /// counters `stats`.
    pub fn simulated_seconds(&self, stats: &CommStats, slots: usize) -> f64 {
        let mut t = slots as f64 * self.client_step_s;
        for link in Link::all() {
            let i = Self::idx(link);
            t += stats.rounds(link) as f64 * self.rtt_s[i];
            let floats = stats.uplink_floats(link) + stats.downlink_floats(link);
            t += floats as f64 / self.floats_per_s[i];
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommMeter;

    #[test]
    fn zero_stats_costs_only_compute() {
        let m = LatencyModel::mobile_edge();
        let s = CommMeter::new().snapshot();
        let t = m.simulated_seconds(&s, 100);
        assert!((t - 0.1).abs() < 1e-12); // 100 slots × 1 ms
    }

    #[test]
    fn cloud_rounds_dominate_edge_rounds() {
        let model = LatencyModel::mobile_edge();
        let edge_heavy = {
            let m = CommMeter::new();
            for _ in 0..10 {
                m.record_round(Link::ClientEdge);
            }
            m.snapshot()
        };
        let cloud_heavy = {
            let m = CommMeter::new();
            for _ in 0..10 {
                m.record_round(Link::EdgeCloud);
            }
            m.snapshot()
        };
        let te = model.simulated_seconds(&edge_heavy, 0);
        let tc = model.simulated_seconds(&cloud_heavy, 0);
        assert!(tc > 10.0 * te, "cloud rounds should dominate: {tc} vs {te}");
    }

    #[test]
    fn bandwidth_term_scales_with_floats() {
        let model = LatencyModel::uniform(0.0, 1e6);
        let m = CommMeter::new();
        m.record_uplink(Link::ClientCloud, 2_000_000);
        let t = model.simulated_seconds(&m.snapshot(), 0);
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_network_is_link_agnostic() {
        let model = LatencyModel::uniform(0.01, 1e6);
        let a = {
            let m = CommMeter::new();
            m.record_round(Link::ClientEdge);
            m.record_uplink(Link::ClientEdge, 500);
            m.snapshot()
        };
        let b = {
            let m = CommMeter::new();
            m.record_round(Link::EdgeCloud);
            m.record_uplink(Link::EdgeCloud, 500);
            m.snapshot()
        };
        let ta = model.simulated_seconds(&a, 3);
        let tb = model.simulated_seconds(&b, 3);
        assert!((ta - tb).abs() < 1e-12);
    }
}
