//! Simulated wall-clock cost model.
//!
//! The paper's motivation (§1) is that cloud connectivity is slow and
//! scarce while client-edge links are fast and local. This module turns the
//! metered communication of a run into simulated deployment time under a
//! configurable latency/bandwidth model, so "time to accuracy" can be
//! compared across two-layer and three-layer methods — the system-level
//! argument for the hierarchy, quantified.
//!
//! The model is synchronous (like the protocol): each synchronisation round
//! pays one round-trip on its link, transferred floats pay bandwidth on
//! their link, and every local SGD time slot pays one compute step (clients
//! within a slot run in parallel, so slots — not client-steps — count).
//!
//! Bandwidth semantics per link:
//!
//! - **EdgeCloud / ClientCloud** floats share one aggregate cloud pipe —
//!   the cloud's ingress is the bottleneck, so their transfer time is
//!   `floats / floats_per_s` over the link totals.
//! - **ClientEdge** floats flow over *distinct per-edge-area networks* that
//!   transfer concurrently in the synchronous protocol. The round waits for
//!   the bottleneck edge; with the meter's aggregate counters (no per-edge
//!   breakdown) the model approximates that bottleneck as `totals /
//!   edge_areas` — exact for balanced fleets, a lower bound under skew.
//!   [`LatencyModel::simulated_seconds`] takes the concurrency as an
//!   explicit argument; passing `1` reproduces the historical serial
//!   charge, which is what flat (two-layer) methods want, since they have
//!   no client-edge tier at all.

use crate::comm::CommStats;
use crate::Link;

/// Latency/bandwidth parameters of the simulated deployment.
///
/// ```
/// use hm_simnet::{CommMeter, LatencyModel, Link};
///
/// let meter = CommMeter::new();
/// meter.record_round(Link::EdgeCloud);
/// meter.record_gather(Link::EdgeCloud, 1_000, 5);
/// let t = LatencyModel::mobile_edge().simulated_seconds(&meter.snapshot(), 10);
/// assert!(t > 0.1); // one WAN round-trip dominates
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Compute time of one local SGD step (seconds).
    pub client_step_s: f64,
    /// Round-trip latency per synchronisation round, per link (seconds).
    pub rtt_s: [f64; 3],
    /// Bandwidth per link in floats per second. For the cloud links this
    /// is the aggregate pipe; for `ClientEdge` it is the bandwidth of *one*
    /// edge area's local network (areas transfer concurrently — see the
    /// module docs and [`LatencyModel::simulated_seconds_parallel`]).
    pub floats_per_s: [f64; 3],
}

impl LatencyModel {
    /// A mobile-edge-computing preset: LAN-class client-edge links
    /// (5 ms RTT, 10⁹ floats/s ≈ 32 Gbit/s aggregate), WAN-class links to
    /// the cloud (100 ms RTT, 10⁷ floats/s ≈ 320 Mbit/s aggregate), and
    /// 1 ms compute per local step.
    pub fn mobile_edge() -> Self {
        Self {
            client_step_s: 1e-3,
            // [ClientEdge, EdgeCloud, ClientCloud]
            rtt_s: [5e-3, 100e-3, 100e-3],
            floats_per_s: [1e9, 1e7, 1e7],
        }
    }

    /// A uniform-network preset (all links equal) — the control case in
    /// which the hierarchy buys nothing.
    pub fn uniform(rtt_s: f64, floats_per_s: f64) -> Self {
        Self {
            client_step_s: 1e-3,
            rtt_s: [rtt_s; 3],
            floats_per_s: [floats_per_s; 3],
        }
    }

    fn idx(link: Link) -> usize {
        match link {
            Link::ClientEdge => 0,
            Link::EdgeCloud => 1,
            Link::ClientCloud => 2,
        }
    }

    /// Simulated seconds for a run (or run prefix) that executed
    /// `slots` local-SGD time slots and produced the communication
    /// counters `stats`, with all `ClientEdge` floats charged against a
    /// single serial pipe (equivalent to
    /// [`LatencyModel::simulated_seconds_parallel`] with one edge area).
    ///
    /// Correct for flat two-layer methods (which never meter `ClientEdge`
    /// floats); hierarchical callers should pass their edge-area count to
    /// the parallel form instead, or simulated client-edge transfer time
    /// grows linearly in fleet size even though the areas are disjoint
    /// networks.
    pub fn simulated_seconds(&self, stats: &CommStats, slots: usize) -> f64 {
        self.simulated_seconds_parallel(stats, slots, 1)
    }

    /// Simulated seconds with `ClientEdge` floats transferred concurrently
    /// across `edge_areas` disjoint edge-area networks: the synchronous
    /// round waits for the bottleneck area, approximated as the aggregate
    /// float count divided by the area count (exact when traffic is
    /// balanced across areas). `edge_areas == 0` is treated as `1`.
    ///
    /// RTT and cloud-link terms are unchanged — synchronisation rounds
    /// overlap across areas already (one RTT per protocol round, not per
    /// area), and the cloud links share one aggregate pipe.
    pub fn simulated_seconds_parallel(
        &self,
        stats: &CommStats,
        slots: usize,
        edge_areas: usize,
    ) -> f64 {
        let mut t = slots as f64 * self.client_step_s;
        for link in Link::all() {
            let i = Self::idx(link);
            t += stats.rounds(link) as f64 * self.rtt_s[i];
            let floats = (stats.uplink_floats(link) + stats.downlink_floats(link)) as f64;
            let concurrency = match link {
                Link::ClientEdge => edge_areas.max(1) as f64,
                Link::EdgeCloud | Link::ClientCloud => 1.0,
            };
            t += floats / (self.floats_per_s[i] * concurrency);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommMeter;

    #[test]
    fn zero_stats_costs_only_compute() {
        let m = LatencyModel::mobile_edge();
        let s = CommMeter::new().snapshot();
        let t = m.simulated_seconds(&s, 100);
        assert!((t - 0.1).abs() < 1e-12); // 100 slots × 1 ms
    }

    #[test]
    fn cloud_rounds_dominate_edge_rounds() {
        let model = LatencyModel::mobile_edge();
        let edge_heavy = {
            let m = CommMeter::new();
            for _ in 0..10 {
                m.record_round(Link::ClientEdge);
            }
            m.snapshot()
        };
        let cloud_heavy = {
            let m = CommMeter::new();
            for _ in 0..10 {
                m.record_round(Link::EdgeCloud);
            }
            m.snapshot()
        };
        let te = model.simulated_seconds(&edge_heavy, 0);
        let tc = model.simulated_seconds(&cloud_heavy, 0);
        assert!(tc > 10.0 * te, "cloud rounds should dominate: {tc} vs {te}");
    }

    #[test]
    fn bandwidth_term_scales_with_floats() {
        let model = LatencyModel::uniform(0.0, 1e6);
        let m = CommMeter::new();
        m.record_uplink(Link::ClientCloud, 2_000_000);
        let t = model.simulated_seconds(&m.snapshot(), 0);
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn doubling_edges_at_fixed_per_edge_traffic_does_not_double_client_edge_time() {
        // Per-edge traffic fixed at 1M floats up the client-edge link;
        // 1e6 floats/s per area ⇒ each area needs exactly 1 s.
        let model = LatencyModel::uniform(0.0, 1e6);
        let fleet = |edges: u64| {
            let m = CommMeter::new();
            for _ in 0..edges {
                m.record_uplink(Link::ClientEdge, 1_000_000);
            }
            m.snapshot()
        };
        let one = model.simulated_seconds_parallel(&fleet(1), 0, 1);
        let two = model.simulated_seconds_parallel(&fleet(2), 0, 2);
        let four = model.simulated_seconds_parallel(&fleet(4), 0, 4);
        assert!((one - 1.0).abs() < 1e-9);
        assert!(
            (two - one).abs() < 1e-9 && (four - one).abs() < 1e-9,
            "disjoint areas transfer concurrently: {one} vs {two} vs {four}"
        );
        // The historical serial form still charges one shared pipe.
        assert!((model.simulated_seconds(&fleet(2), 0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cloud_links_stay_serial_under_edge_parallelism() {
        let model = LatencyModel::uniform(0.0, 1e6);
        let m = CommMeter::new();
        m.record_uplink(Link::EdgeCloud, 2_000_000);
        m.record_uplink(Link::ClientCloud, 1_000_000);
        let t = model.simulated_seconds_parallel(&m.snapshot(), 0, 8);
        assert!((t - 3.0).abs() < 1e-9, "cloud pipes are aggregate: {t}");
    }

    #[test]
    fn zero_edge_areas_is_treated_as_one() {
        let model = LatencyModel::uniform(0.0, 1e6);
        let m = CommMeter::new();
        m.record_uplink(Link::ClientEdge, 1_000_000);
        let s = m.snapshot();
        assert_eq!(
            model.simulated_seconds_parallel(&s, 5, 0),
            model.simulated_seconds_parallel(&s, 5, 1)
        );
    }

    #[test]
    fn uniform_network_is_link_agnostic() {
        let model = LatencyModel::uniform(0.01, 1e6);
        let a = {
            let m = CommMeter::new();
            m.record_round(Link::ClientEdge);
            m.record_uplink(Link::ClientEdge, 500);
            m.snapshot()
        };
        let b = {
            let m = CommMeter::new();
            m.record_round(Link::EdgeCloud);
            m.record_uplink(Link::EdgeCloud, 500);
            m.snapshot()
        };
        let ta = model.simulated_seconds(&a, 3);
        let tb = model.simulated_seconds(&b, 3);
        assert!((ta - tb).abs() < 1e-12);
    }
}
