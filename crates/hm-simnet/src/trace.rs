//! Structured protocol event log.
//!
//! Algorithms emit [`Event`]s describing protocol-level actions; integration
//! tests assert on the log (e.g. "Phase 2 sampled a uniform edge set each
//! round", "the checkpoint index was broadcast before any local step").
//! Recording is behind a [`Trace`] handle that defaults to disabled, so
//! production runs pay one branch per event.

use crate::comm::CommStats;
use crate::fault::FaultKind;
use parking_lot::Mutex;
use std::sync::Arc;

/// A protocol-level event in an algorithm run.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Cloud sampled the Phase-1 participation set `E^(k)`.
    Phase1EdgesSampled {
        /// Training round.
        round: usize,
        /// Sampled edge ids (with replacement; duplicates possible).
        edges: Vec<usize>,
    },
    /// Cloud broadcast the round-start global model to the participating
    /// edges (or clients, for flat methods).
    CloudBroadcast {
        /// Training round.
        round: usize,
        /// Distinct recipient ids, in first-seen sample order.
        recipients: Vec<usize>,
    },
    /// A surviving client finished its local SGD steps for one block.
    LocalSteps {
        /// Training round.
        round: usize,
        /// Aggregation-block index `t2` within the round.
        t2: usize,
        /// Edge id the client belongs to.
        edge: usize,
        /// Global client id.
        client: usize,
        /// Number of local SGD steps executed (`τ1`).
        steps: usize,
    },
    /// An edge server captured its aggregated checkpoint model in block
    /// `c2` (Phase 1, part (b)).
    CheckpointCaptured {
        /// Training round.
        round: usize,
        /// Edge id.
        edge: usize,
        /// The block index (`== c2`) in which the snapshot was taken.
        t2: usize,
    },
    /// Cloud sampled the checkpoint index `(c1, c2)`.
    CheckpointSampled {
        /// Training round.
        round: usize,
        /// Local-step index within an aggregation block.
        c1: usize,
        /// Aggregation-block index within the round.
        c2: usize,
    },
    /// An edge server completed one client-edge aggregation.
    ClientEdgeAggregation {
        /// Training round.
        round: usize,
        /// Edge id.
        edge: usize,
        /// Aggregation index `t2` within the round.
        t2: usize,
    },
    /// Cloud aggregated edge models into the new global model (eq. 5).
    GlobalAggregation {
        /// Training round.
        round: usize,
    },
    /// The global model produced by the cloud aggregation, in full — the
    /// hook the differential oracle compares against bit-for-bit.
    GlobalModel {
        /// Training round.
        round: usize,
        /// The aggregated global model `w^(k+1)`.
        w: Vec<f32>,
    },
    /// Cloud sampled the Phase-2 loss-estimation set `U^(k)`.
    Phase2EdgesSampled {
        /// Training round.
        round: usize,
        /// Sampled edge ids (distinct).
        edges: Vec<usize>,
    },
    /// Cloud updated the edge weights `p` (eq. 7).
    WeightUpdate {
        /// Training round.
        round: usize,
        /// The updated weight vector.
        p: Vec<f32>,
    },
    /// An injected edge-level fault took effect at a cloud-link protocol
    /// step (outage, retried delivery, or exhausted retries). Recorded in
    /// protocol order so the conformance automaton can validate injected
    /// faults against its own replay of the fault streams.
    EdgeFault {
        /// Training round.
        round: usize,
        /// Hierarchy level of the faulted entity (0 = the cloud's direct
        /// children).
        level: usize,
        /// Edge (or top-level group) id.
        edge: usize,
        /// Which fault class took effect.
        kind: FaultKind,
        /// Delivery attempts made (0 for outages, which transmit nothing).
        attempts: usize,
    },
    /// Per-round Byzantine-adversary accounting: how many client uploads
    /// the configured attack corrupted this round. Emitted once per round
    /// (immediately before [`Event::RoundComm`]) by runs whose fault plan
    /// has a non-zero corruption rate, so the conformance automaton can
    /// replay the adversary decision streams and reject forged or missing
    /// corruption claims.
    AdversaryRound {
        /// Training round.
        round: usize,
        /// Corrupted uploads this round (delta, not cumulative).
        corrupted: u64,
        /// Attack-model tag (`AttackModel::as_str`).
        attack: &'static str,
    },
    /// One round's membership-churn transitions (emitted at round start,
    /// before Phase-1 sampling, by runs with an active churn plan). The
    /// conformance automaton re-derives the same transitions from the
    /// keyed churn streams plus the deterministic re-homing policy and
    /// rejects any forged or missing move.
    ChurnRound {
        /// Training round.
        round: usize,
        /// Clients that permanently left.
        left: Vec<usize>,
        /// Edges that failed permanently, ascending.
        failed_edges: Vec<usize>,
        /// `(client, from_edge, to_edge)` re-homing moves.
        rehomed: Vec<(usize, usize, usize)>,
        /// `(client, home_edge)` arrivals.
        joined: Vec<(usize, usize)>,
    },
    /// Communication-meter delta accumulated over exactly one training
    /// round, validated against the closed-form accounting in `comm.rs`.
    RoundComm {
        /// Training round.
        round: usize,
        /// `snapshot_after.since(&snapshot_before)` for this round.
        delta: CommStats,
    },
}

/// Shared, optionally-enabled event log.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    inner: Option<Arc<Mutex<Vec<Event>>>>,
}

impl Trace {
    /// A disabled trace: `record` is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled trace collecting events.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record an event (no-op when disabled). The closure form avoids
    /// building event payloads on the disabled path.
    pub fn record(&self, make: impl FnOnce() -> Event) {
        if let Some(log) = &self.inner {
            log.lock().push(make());
        }
    }

    /// Snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map(|l| l.lock().clone())
            .unwrap_or_default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map(|l| l.lock().len()).unwrap_or(0)
    }

    /// True when no events have been recorded (or tracing is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        t.record(|| Event::GlobalAggregation { round: 0 });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_collects_in_order() {
        let t = Trace::enabled();
        t.record(|| Event::GlobalAggregation { round: 0 });
        t.record(|| Event::WeightUpdate {
            round: 0,
            p: vec![0.5, 0.5],
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0], Event::GlobalAggregation { round: 0 });
    }

    #[test]
    fn clones_share_the_log() {
        let t = Trace::enabled();
        let t2 = t.clone();
        t2.record(|| Event::GlobalAggregation { round: 7 });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn closure_not_called_when_disabled() {
        let t = Trace::disabled();
        let mut called = false;
        t.record(|| {
            called = true;
            Event::GlobalAggregation { round: 0 }
        });
        assert!(!called);
    }
}
