//! Deterministic fault injection.
//!
//! The paper's system model (§1) assumes flaky mobile clients and a slow,
//! unreliable WAN to the cloud, but the base protocol is failure-free.
//! This module injects four fault classes into the hierarchical run loops
//! — client crashes, edge-server outage windows, edge↔cloud message loss
//! with bounded retry + exponential backoff, and compute stragglers cut by
//! a per-block deadline — all driven by keyed [`StreamRng`] streams, the
//! same discipline as `Purpose::Dropout`:
//!
//! - every fault decision is a **pure function** of
//!   `(seed, plan, purpose, round/block, level, entity)`, so runs are
//!   bit-reproducible under rayon, across executors, and across reruns;
//! - the conformance automaton (hm-testkit) replays the same streams from
//!   the [`FaultPlan`] alone and validates survivor sets, retry
//!   communication deltas, and stale-round invariants;
//! - a plan whose rates are all zero makes **no draws at all**, so a
//!   fault-enabled run with zero rates is bit-identical to a fault-free
//!   run.
//!
//! The [`FaultInjector`] wraps the pure decision functions with atomic
//! occurrence counters and simulated-time accumulators (backoff waits,
//! straggler-stretched sync windows); the run loops surface those through
//! telemetry as `fault` / `fault_summary` events rather than panicking.

use hm_data::rng::{Purpose, StreamKey, StreamRng};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Mix a hierarchy level into a stream-entity id. Level 0 leaves the id
/// unchanged, so three-layer runs keep the exact streams of the legacy
/// `dropout` field (the pinned regression corpus depends on this).
#[inline]
fn entity(level: usize, id: usize) -> u64 {
    ((level as u64) << 32) | id as u64
}

/// Which edge↔cloud message a delivery attempt belongs to. Each channel
/// gets its own loss stream so e.g. a round's Phase-1 and Phase-2
/// downlinks to the same edge fail independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgChannel {
    /// Cloud → edge: round-start model (+ checkpoint index).
    Phase1Down,
    /// Edge → cloud: final model (+ checkpoint model).
    Phase1Up,
    /// Cloud → edge: Phase-2 checkpoint model for loss estimation.
    Phase2Down,
}

impl MsgChannel {
    fn tag(self) -> u64 {
        match self {
            MsgChannel::Phase1Down => 0,
            MsgChannel::Phase1Up => 1,
            MsgChannel::Phase2Down => 2,
        }
    }
}

/// The fault classes, as reported in traces and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A sampled edge server is down for the whole round.
    EdgeOutage,
    /// An edge↔cloud message needed retransmissions (but got through).
    MsgRetried,
    /// An edge↔cloud message was lost and retries were exhausted.
    MsgGaveUp,
}

impl FaultKind {
    /// Stable string tag used in telemetry events.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::EdgeOutage => "edge_outage",
            FaultKind::MsgRetried => "msg_retried",
            FaultKind::MsgGaveUp => "msg_gave_up",
        }
    }
}

/// How a Byzantine client corrupts the update it uploads. Every model is a
/// deterministic transform of `(honest update, block-start model)` plus, for
/// the stochastic variants, draws from `Purpose::AdversaryPayload` streams —
/// so corrupted runs replay bit-identically across executors and engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackModel {
    /// Upload `base − κ·(w − base)`: the honest delta reversed and scaled
    /// by `attack_scale` (κ = 1 is a pure sign flip).
    SignFlip,
    /// Upload `base + κ·(w − base)`: the honest delta inflated by κ.
    Scale,
    /// Add `κ·N(0, 1)` keyed noise per coordinate to the honest update.
    Noise,
    /// Upload the block-start model unchanged (a constant/zero update).
    Zero,
    /// Colluding block: every corrupted client in a block uploads
    /// `base + κ·dir` for one shared keyed direction `dir`, so the
    /// corruptions reinforce instead of cancelling.
    Collude,
}

/// Names accepted by [`AttackModel::parse`], in help order.
pub const ATTACK_MODELS: [&str; 5] = ["sign-flip", "scale", "noise", "zero", "collude"];

impl AttackModel {
    /// Stable string tag used in telemetry events and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            AttackModel::SignFlip => "sign-flip",
            AttackModel::Scale => "scale",
            AttackModel::Noise => "noise",
            AttackModel::Zero => "zero",
            AttackModel::Collude => "collude",
        }
    }

    /// Parse a CLI name (see [`ATTACK_MODELS`]).
    pub fn parse(name: &str) -> Option<AttackModel> {
        match name {
            "sign-flip" => Some(AttackModel::SignFlip),
            "scale" => Some(AttackModel::Scale),
            "noise" => Some(AttackModel::Noise),
            "zero" => Some(AttackModel::Zero),
            "collude" => Some(AttackModel::Collude),
            _ => None,
        }
    }
}

/// Outcome of one client's straggler draw for one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StragglerFate {
    /// Not a straggler this block.
    OnTime,
    /// Slowed by the given factor but inside the deadline: the client
    /// contributes, and the block's sync window stretches to wait for it.
    Slow(f64),
    /// Slowed past the deadline: the edge aggregates without the laggard.
    Missed,
}

/// Outcome of delivering one edge↔cloud message under loss + retry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Total transmissions (1 = first try succeeded; each retry adds one).
    pub attempts: u32,
    /// Whether any attempt got through before retries ran out.
    pub delivered: bool,
    /// Exponential-backoff wait accumulated before retries
    /// (`backoff_base_s · (2^retries − 1)`).
    pub backoff_s: f64,
}

/// Declarative fault configuration for a run. All decisions derived from a
/// plan are keyed off the run's master seed, so a `(plan, seed)` pair fully
/// determines every injected fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-block probability that a client crashes (neither computes nor
    /// uploads for that block). Generalises the legacy `dropout` field.
    pub client_crash: f32,
    /// Per-round probability that a sampled edge server is out for the
    /// whole round (never receives or reports anything, both phases).
    pub edge_outage: f32,
    /// Per-attempt loss probability of an edge↔cloud message.
    pub msg_loss: f32,
    /// Retransmissions allowed after the first attempt before the sender
    /// gives up on a lost message.
    pub max_retries: u32,
    /// Wait before the first retry (seconds of simulated time); doubles on
    /// every further retry.
    pub backoff_base_s: f64,
    /// Per-block probability that a client is a compute straggler.
    pub straggler_rate: f32,
    /// Maximum slowdown factor: a straggler's factor is drawn uniformly
    /// from `(1, straggler_slowdown]`.
    pub straggler_slowdown: f64,
    /// Per-block deadline as a multiple of the nominal block time: a
    /// straggler slower than this is cut from the block's aggregation.
    pub deadline_factor: f64,
    /// Per-block probability that a surviving client uploads a corrupted
    /// (Byzantine) update instead of its honest one.
    pub corrupt_rate: f32,
    /// Which corruption a Byzantine client applies (see [`AttackModel`]).
    pub attack: AttackModel,
    /// Attack magnitude κ: delta multiplier for `sign-flip`/`scale`/
    /// `collude`, per-coordinate noise stddev for `noise`; unused by
    /// `zero`.
    pub attack_scale: f64,
    /// Multiplicative jitter on retry-backoff waits, as a fraction in
    /// `[0, 1]`: each wait is scaled by `1 + jitter·(u − ½)` with `u`
    /// drawn from a per-message `Purpose::BackoffJitter` stream, so retry
    /// latencies desynchronise across edges. Zero makes no draws and
    /// keeps the exact doubling schedule.
    pub backoff_jitter: f64,
}

/// The failure-free plan.
pub const NO_FAULTS: FaultPlan = FaultPlan {
    client_crash: 0.0,
    edge_outage: 0.0,
    msg_loss: 0.0,
    max_retries: 2,
    backoff_base_s: 0.05,
    straggler_rate: 0.0,
    straggler_slowdown: 1.0,
    deadline_factor: 2.0,
    corrupt_rate: 0.0,
    attack: AttackModel::SignFlip,
    attack_scale: 1.0,
    backoff_jitter: 0.0,
};

impl Default for FaultPlan {
    fn default() -> Self {
        NO_FAULTS
    }
}

/// Names accepted by [`FaultPlan::preset`], in help order.
pub const FAULT_PRESETS: [&str; 7] = [
    "none",
    "flaky-clients",
    "edge-outages",
    "lossy-wan",
    "stragglers",
    "byzantine",
    "chaos",
];

impl FaultPlan {
    /// Whether every crash/outage/loss/straggler rate is zero (none of
    /// those streams are ever drawn). Deliberately ignores the adversary
    /// knobs: adversarial activity is gated by [`FaultPlan::has_adversary`]
    /// and reported through `QuarantineStats`, so the legacy
    /// `fault_summary` gating stays bit-identical.
    pub fn is_none(&self) -> bool {
        self.client_crash == 0.0
            && self.edge_outage == 0.0
            && self.msg_loss == 0.0
            && self.straggler_rate == 0.0
    }

    /// Whether the plan injects Byzantine clients (corruption streams are
    /// drawn for surviving clients).
    pub fn has_adversary(&self) -> bool {
        self.corrupt_rate > 0.0
    }

    /// Check parameter ranges, returning a description of the first
    /// violation. Non-finite values are rejected everywhere: NaN fails
    /// the explicit `is_finite` guard rather than sliding through a
    /// range comparison.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, v: f32| -> Result<(), String> {
            if v.is_finite() && (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must be finite in [0, 1], got {v}"))
            }
        };
        prob("client_crash", self.client_crash)?;
        prob("edge_outage", self.edge_outage)?;
        prob("msg_loss", self.msg_loss)?;
        prob("straggler_rate", self.straggler_rate)?;
        prob("corrupt_rate", self.corrupt_rate)?;
        if !(self.attack_scale >= 0.0 && self.attack_scale.is_finite()) {
            return Err(format!(
                "attack_scale must be finite and ≥ 0, got {}",
                self.attack_scale
            ));
        }
        if !(self.backoff_jitter.is_finite() && (0.0..=1.0).contains(&self.backoff_jitter)) {
            return Err(format!(
                "backoff_jitter must be finite in [0, 1], got {}",
                self.backoff_jitter
            ));
        }
        if !(self.backoff_base_s >= 0.0 && self.backoff_base_s.is_finite()) {
            return Err(format!(
                "backoff_base_s must be finite and ≥ 0, got {}",
                self.backoff_base_s
            ));
        }
        if !(self.straggler_slowdown >= 1.0 && self.straggler_slowdown.is_finite()) {
            return Err(format!(
                "straggler_slowdown must be finite and ≥ 1, got {}",
                self.straggler_slowdown
            ));
        }
        if !(self.deadline_factor >= 1.0 && self.deadline_factor.is_finite()) {
            return Err(format!(
                "deadline_factor must be finite and ≥ 1, got {}",
                self.deadline_factor
            ));
        }
        Ok(())
    }

    /// A named preset (the `--fault-plan` vocabulary), or `None` for an
    /// unknown name. See [`FAULT_PRESETS`].
    pub fn preset(name: &str) -> Option<FaultPlan> {
        match name {
            "none" => Some(NO_FAULTS),
            "flaky-clients" => Some(FaultPlan {
                client_crash: 0.2,
                ..NO_FAULTS
            }),
            "edge-outages" => Some(FaultPlan {
                edge_outage: 0.15,
                ..NO_FAULTS
            }),
            "lossy-wan" => Some(FaultPlan {
                msg_loss: 0.15,
                max_retries: 3,
                backoff_base_s: 0.1,
                ..NO_FAULTS
            }),
            "stragglers" => Some(FaultPlan {
                straggler_rate: 0.25,
                straggler_slowdown: 4.0,
                deadline_factor: 2.5,
                ..NO_FAULTS
            }),
            "byzantine" => Some(FaultPlan {
                corrupt_rate: 0.2,
                attack: AttackModel::SignFlip,
                attack_scale: 8.0,
                ..NO_FAULTS
            }),
            "chaos" => Some(FaultPlan {
                client_crash: 0.1,
                edge_outage: 0.1,
                msg_loss: 0.1,
                max_retries: 2,
                backoff_base_s: 0.1,
                straggler_rate: 0.15,
                straggler_slowdown: 3.0,
                deadline_factor: 2.0,
                ..NO_FAULTS
            }),
            _ => None,
        }
    }

    /// The legacy per-config `dropout` knob folded in: when the plan's
    /// `client_crash` is zero, `dropout` takes its place (the plan wins if
    /// both are set, so `--fault-plan` presets override `--dropout`).
    pub fn with_dropout(mut self, dropout: f32) -> FaultPlan {
        if self.client_crash == 0.0 {
            self.client_crash = dropout;
        }
        self
    }

    // --- Pure decision functions -------------------------------------
    //
    // Everything below is a pure function of (plan, seed, indices): the
    // injector and the conformance replayer both call these, which is
    // what makes the degraded-round protocol checkable.

    /// Whether a client crashed for the block keyed by `block_tag`
    /// (`round·τ2 + t2`). At `level == 0` this draws the exact stream of
    /// the legacy `dropout` field.
    pub fn client_crashed(&self, seed: u64, block_tag: u64, level: usize, client: usize) -> bool {
        if self.client_crash == 0.0 {
            return false;
        }
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::Dropout,
            block_tag,
            entity(level, client),
        ));
        rng.uniform() < f64::from(self.client_crash)
    }

    /// Whether an edge server is out for the given round.
    pub fn edge_out(&self, seed: u64, round: u64, level: usize, edge: usize) -> bool {
        if self.edge_outage == 0.0 {
            return false;
        }
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::EdgeOutage,
            round,
            entity(level, edge),
        ));
        rng.uniform() < f64::from(self.edge_outage)
    }

    /// A client's straggler fate for the block keyed by `block_tag`.
    pub fn straggler(
        &self,
        seed: u64,
        block_tag: u64,
        level: usize,
        client: usize,
    ) -> StragglerFate {
        if self.straggler_rate == 0.0 {
            return StragglerFate::OnTime;
        }
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::Straggler,
            block_tag,
            entity(level, client),
        ));
        if rng.uniform() >= f64::from(self.straggler_rate) {
            return StragglerFate::OnTime;
        }
        let slowdown = 1.0 + rng.uniform() * (self.straggler_slowdown - 1.0);
        if slowdown > self.deadline_factor {
            StragglerFate::Missed
        } else {
            StragglerFate::Slow(slowdown)
        }
    }

    /// Whether a surviving client is Byzantine for the block keyed by
    /// `block_tag`. Drawn from its own `Purpose::Adversary` stream, so
    /// corruption coins never shift crash/straggler draws (and a zero
    /// rate makes no draws at all).
    pub fn client_corrupt(&self, seed: u64, block_tag: u64, level: usize, client: usize) -> bool {
        if self.corrupt_rate == 0.0 {
            return false;
        }
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::Adversary,
            block_tag,
            entity(level, client),
        ));
        rng.uniform() < f64::from(self.corrupt_rate)
    }

    /// Apply the plan's attack to an update in place. `base` is the
    /// block-start model the honest update was computed from; `w` holds
    /// the honest update on entry and the corrupted upload on exit. Pure:
    /// stochastic attacks draw fresh `Purpose::AdversaryPayload` streams
    /// keyed by `(block_tag, level, client-or-block)`, so applying the
    /// same corruption twice (e.g. to a client's model and its
    /// checkpoint) yields the same transform and runs replay
    /// bit-identically from any executor.
    pub fn corrupt_update(
        &self,
        seed: u64,
        block_tag: u64,
        level: usize,
        client: usize,
        base: &[f32],
        w: &mut [f32],
    ) {
        debug_assert_eq!(base.len(), w.len());
        let k = self.attack_scale as f32;
        match self.attack {
            AttackModel::SignFlip => {
                for (wj, &bj) in w.iter_mut().zip(base) {
                    *wj = bj - k * (*wj - bj);
                }
            }
            AttackModel::Scale => {
                for (wj, &bj) in w.iter_mut().zip(base) {
                    *wj = bj + k * (*wj - bj);
                }
            }
            AttackModel::Noise => {
                let mut rng = StreamRng::for_key(StreamKey::new(
                    seed,
                    Purpose::AdversaryPayload,
                    block_tag,
                    entity(level, client),
                ));
                for wj in w.iter_mut() {
                    *wj += (self.attack_scale * rng.normal()) as f32;
                }
            }
            AttackModel::Zero => w.copy_from_slice(base),
            AttackModel::Collude => {
                // One shared direction per (block, level): every colluder
                // re-derives the same stream, so corruptions reinforce.
                let mut rng = StreamRng::for_key(StreamKey::new(
                    seed,
                    Purpose::AdversaryPayload,
                    block_tag,
                    entity(level, u32::MAX as usize),
                ));
                for (wj, &bj) in w.iter_mut().zip(base) {
                    *wj = bj + (self.attack_scale * rng.normal()) as f32;
                }
            }
        }
    }

    /// Replay the delivery of one edge↔cloud message: sequential loss
    /// draws from the message's own stream, up to `1 + max_retries`
    /// attempts, doubling backoff between attempts.
    pub fn delivery(
        &self,
        seed: u64,
        round: u64,
        level: usize,
        channel: MsgChannel,
        edge: usize,
    ) -> Delivery {
        if self.msg_loss == 0.0 {
            return Delivery {
                attempts: 1,
                delivered: true,
                backoff_s: 0.0,
            };
        }
        let link = ((level as u64) << 34) | (channel.tag() << 32) | edge as u64;
        let mut rng = StreamRng::for_key(StreamKey::new(seed, Purpose::MsgLoss, round, link));
        // Jitter draws come from their own per-message stream so enabling
        // jitter never shifts the loss coins (and zero jitter draws
        // nothing, keeping the exact doubling schedule bit-identical).
        let mut jrng = (self.backoff_jitter > 0.0)
            .then(|| StreamRng::for_key(StreamKey::new(seed, Purpose::BackoffJitter, round, link)));
        let loss = f64::from(self.msg_loss);
        let mut backoff_s = 0.0;
        let mut wait = self.backoff_base_s;
        for attempt in 1..=(1 + self.max_retries) {
            if rng.uniform() >= loss {
                return Delivery {
                    attempts: attempt,
                    delivered: true,
                    backoff_s,
                };
            }
            if attempt <= self.max_retries {
                let step = match jrng.as_mut() {
                    Some(j) => wait * (1.0 + self.backoff_jitter * (j.uniform() - 0.5)),
                    None => wait,
                };
                backoff_s += step;
                wait *= 2.0;
            }
        }
        Delivery {
            attempts: 1 + self.max_retries,
            delivered: false,
            backoff_s,
        }
    }
}

/// Snapshot of a run's fault bookkeeping (all counters cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Client-crash events (per block, per client).
    pub crashes: u64,
    /// Edge-outage observations (per phase that consulted the edge; an
    /// edge out in both phases of a round counts twice).
    pub outages: u64,
    /// Message retransmissions (attempts beyond the first).
    pub retries: u64,
    /// Messages whose retries were exhausted.
    pub gave_up: u64,
    /// Clients cut from a block by the straggler deadline.
    pub deadline_missed: u64,
    /// Simulated seconds spent in retry backoff waits.
    pub backoff_s: f64,
    /// Extra local-SGD time slots spent waiting for in-deadline
    /// stragglers (fractional; multiply by the latency model's
    /// `client_step_s` for seconds).
    pub straggler_slots: f64,
}

impl FaultStats {
    /// Counter-wise difference `self − earlier` (per-round deltas).
    pub fn since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            crashes: self.crashes - earlier.crashes,
            outages: self.outages - earlier.outages,
            retries: self.retries - earlier.retries,
            gave_up: self.gave_up - earlier.gave_up,
            deadline_missed: self.deadline_missed - earlier.deadline_missed,
            backoff_s: self.backoff_s - earlier.backoff_s,
            straggler_slots: self.straggler_slots - earlier.straggler_slots,
        }
    }

    /// Total fault occurrences of any class.
    pub fn total(&self) -> u64 {
        self.crashes + self.outages + self.retries + self.gave_up + self.deadline_missed
    }
}

/// Snapshot of a run's adversary/quarantine bookkeeping (cumulative).
/// Kept separate from [`FaultStats`] so the legacy snapshot layout,
/// `fault_summary` schema, and pinned corpus stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuarantineStats {
    /// Uploads replaced by an attack (per block, per corrupted client).
    pub corrupted_updates: u64,
    /// Quarantine sentences handed out by the z-score pass (a client
    /// re-quarantined after its window expires counts again).
    pub quarantined_clients: u64,
    /// Uploads suppressed because the client sat in quarantine
    /// (per block, per excluded client).
    pub excluded_uploads: u64,
}

impl QuarantineStats {
    /// Counter-wise difference `self − earlier` (per-round deltas).
    pub fn since(&self, earlier: &QuarantineStats) -> QuarantineStats {
        QuarantineStats {
            corrupted_updates: self.corrupted_updates - earlier.corrupted_updates,
            quarantined_clients: self.quarantined_clients - earlier.quarantined_clients,
            excluded_uploads: self.excluded_uploads - earlier.excluded_uploads,
        }
    }

    /// Total adversary-layer occurrences of any class.
    pub fn total(&self) -> u64 {
        self.corrupted_updates + self.quarantined_clients + self.excluded_uploads
    }
}

/// Run-scoped fault oracle: the pure [`FaultPlan`] decisions plus
/// thread-safe occurrence counting and simulated-time accumulation.
///
/// Counting uses relaxed atomics (the same argument as `CommMeter`: no
/// cross-counter invariant is read mid-run); the float accumulators sit
/// behind a mutex and are only touched in sequential protocol sections.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    plan: FaultPlan,
    crashes: AtomicU64,
    outages: AtomicU64,
    retries: AtomicU64,
    gave_up: AtomicU64,
    deadline_missed: AtomicU64,
    corrupted: AtomicU64,
    quarantined: AtomicU64,
    excluded: AtomicU64,
    seconds: Mutex<(f64, f64)>, // (backoff_s, straggler_slots)
}

impl FaultInjector {
    /// Bind a plan to a run's master seed.
    ///
    /// # Panics
    /// Panics on an invalid plan (see [`FaultPlan::validate`]).
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        Self {
            seed,
            plan,
            crashes: AtomicU64::new(0),
            outages: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            gave_up: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            excluded: AtomicU64::new(0),
            seconds: Mutex::new((0.0, 0.0)),
        }
    }

    /// An injector that never faults (for fault-free callers).
    pub fn none(seed: u64) -> Self {
        Self::new(seed, NO_FAULTS)
    }

    /// The bound plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any fault class has a nonzero rate.
    pub fn is_active(&self) -> bool {
        !self.plan.is_none()
    }

    /// Whether the plan injects Byzantine clients.
    pub fn has_adversary(&self) -> bool {
        self.plan.has_adversary()
    }

    /// Whether a surviving client is Byzantine this block; counts
    /// corrupted uploads.
    pub fn client_corrupt(&self, block_tag: u64, level: usize, client: usize) -> bool {
        let corrupt = self
            .plan
            .client_corrupt(self.seed, block_tag, level, client);
        if corrupt {
            self.corrupted.fetch_add(1, Ordering::Relaxed);
        }
        corrupt
    }

    /// Apply the plan's attack to an update in place (pure; callable from
    /// parallel tasks). See [`FaultPlan::corrupt_update`].
    pub fn corrupt_update(
        &self,
        block_tag: u64,
        level: usize,
        client: usize,
        base: &[f32],
        w: &mut [f32],
    ) {
        self.plan
            .corrupt_update(self.seed, block_tag, level, client, base, w);
    }

    /// Count quarantine sentences handed out by the z-score pass.
    pub fn add_quarantined(&self, n: u64) {
        if n > 0 {
            self.quarantined.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count uploads suppressed because a client sat in quarantine.
    pub fn add_excluded(&self, n: u64) {
        if n > 0 {
            self.excluded.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Whether a client survives the block (not crashed); counts crashes.
    pub fn client_alive(&self, block_tag: u64, level: usize, client: usize) -> bool {
        let crashed = self
            .plan
            .client_crashed(self.seed, block_tag, level, client);
        if crashed {
            self.crashes.fetch_add(1, Ordering::Relaxed);
        }
        !crashed
    }

    /// Whether an edge is out this round; counts the observation.
    pub fn edge_out(&self, round: u64, level: usize, edge: usize) -> bool {
        let out = self.plan.edge_out(self.seed, round, level, edge);
        if out {
            self.outages.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// A client's straggler fate for a block; counts deadline misses.
    pub fn straggler(&self, block_tag: u64, level: usize, client: usize) -> StragglerFate {
        let fate = self.plan.straggler(self.seed, block_tag, level, client);
        if fate == StragglerFate::Missed {
            self.deadline_missed.fetch_add(1, Ordering::Relaxed);
        }
        fate
    }

    /// Deliver one edge↔cloud message; counts retries/give-ups and
    /// accumulates backoff time.
    pub fn deliver(&self, round: u64, level: usize, channel: MsgChannel, edge: usize) -> Delivery {
        let d = self.plan.delivery(self.seed, round, level, channel, edge);
        if d.attempts > 1 {
            self.retries
                .fetch_add(u64::from(d.attempts - 1), Ordering::Relaxed);
        }
        if !d.delivered {
            self.gave_up.fetch_add(1, Ordering::Relaxed);
        }
        if d.backoff_s > 0.0 {
            self.seconds.lock().0 += d.backoff_s;
        }
        d
    }

    /// Charge extra time slots spent waiting for in-deadline stragglers.
    pub fn add_straggler_slots(&self, slots: f64) {
        if slots > 0.0 {
            self.seconds.lock().1 += slots;
        }
    }

    /// Overwrite every counter with the values of a [`FaultStats`]
    /// snapshot. Used when resuming a checkpointed run: the injector's
    /// decision streams are pure functions of `(seed, round, entity)` and
    /// need no restoration, but the cumulative bookkeeping must be
    /// fast-forwarded so per-round deltas and the final stats match an
    /// uninterrupted run bit-for-bit.
    pub fn restore(&self, stats: &FaultStats) {
        self.crashes.store(stats.crashes, Ordering::Relaxed);
        self.outages.store(stats.outages, Ordering::Relaxed);
        self.retries.store(stats.retries, Ordering::Relaxed);
        self.gave_up.store(stats.gave_up, Ordering::Relaxed);
        self.deadline_missed
            .store(stats.deadline_missed, Ordering::Relaxed);
        *self.seconds.lock() = (stats.backoff_s, stats.straggler_slots);
    }

    /// Overwrite the adversary counters from a [`QuarantineStats`]
    /// snapshot (resume path; same contract as [`FaultInjector::restore`]).
    pub fn restore_adversary(&self, stats: &QuarantineStats) {
        self.corrupted
            .store(stats.corrupted_updates, Ordering::Relaxed);
        self.quarantined
            .store(stats.quarantined_clients, Ordering::Relaxed);
        self.excluded
            .store(stats.excluded_uploads, Ordering::Relaxed);
    }

    /// Snapshot the adversary/quarantine counters.
    pub fn adversary_stats(&self) -> QuarantineStats {
        QuarantineStats {
            corrupted_updates: self.corrupted.load(Ordering::Relaxed),
            quarantined_clients: self.quarantined.load(Ordering::Relaxed),
            excluded_uploads: self.excluded.load(Ordering::Relaxed),
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> FaultStats {
        let (backoff_s, straggler_slots) = *self.seconds.lock();
        FaultStats {
            crashes: self.crashes.load(Ordering::Relaxed),
            outages: self.outages.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            gave_up: self.gave_up.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            backoff_s,
            straggler_slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_plan_is_none_and_decides_nothing() {
        assert!(NO_FAULTS.is_none());
        assert!(!NO_FAULTS.client_crashed(1, 2, 0, 3));
        assert!(!NO_FAULTS.edge_out(1, 2, 0, 3));
        assert_eq!(NO_FAULTS.straggler(1, 2, 0, 3), StragglerFate::OnTime);
        let d = NO_FAULTS.delivery(1, 2, 0, MsgChannel::Phase1Down, 3);
        assert_eq!(
            d,
            Delivery {
                attempts: 1,
                delivered: true,
                backoff_s: 0.0
            }
        );
    }

    #[test]
    fn presets_resolve_and_validate() {
        for name in FAULT_PRESETS {
            let p = FaultPlan::preset(name).expect(name);
            p.validate().expect(name);
        }
        assert!(FaultPlan::preset("nope").is_none());
        assert!(FaultPlan::preset("none").unwrap().is_none());
        assert!(!FaultPlan::preset("chaos").unwrap().is_none());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut p = NO_FAULTS;
        p.client_crash = 1.5;
        assert!(p.validate().is_err());
        let mut p = NO_FAULTS;
        p.straggler_slowdown = 0.5;
        assert!(p.validate().is_err());
        let mut p = NO_FAULTS;
        p.deadline_factor = 0.0;
        assert!(p.validate().is_err());
        let mut p = NO_FAULTS;
        p.backoff_base_s = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn client_crash_matches_legacy_dropout_stream_at_level_zero() {
        // The legacy hier_common draw was:
        //   uniform() >= dropout  ⇔  alive
        // from (seed, Dropout, block_tag, client). The plan must replicate
        // it bit-for-bit at level 0 so the pinned corpus stays valid.
        let plan = FaultPlan {
            client_crash: 0.45,
            ..NO_FAULTS
        };
        for (seed, tag, client) in [(42u64, 0u64, 0usize), (7, 13, 5), (9, 999, 31)] {
            let mut legacy =
                StreamRng::for_key(StreamKey::new(seed, Purpose::Dropout, tag, client as u64));
            let legacy_alive = legacy.uniform() >= 0.45;
            assert_eq!(!plan.client_crashed(seed, tag, 0, client), legacy_alive);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_key_sensitive() {
        let plan = FaultPlan::preset("chaos").unwrap();
        assert_eq!(
            plan.client_crashed(3, 5, 1, 7),
            plan.client_crashed(3, 5, 1, 7)
        );
        assert_eq!(
            plan.delivery(3, 5, 0, MsgChannel::Phase1Up, 7),
            plan.delivery(3, 5, 0, MsgChannel::Phase1Up, 7)
        );
        // Channels decorrelate: collect outcomes over many rounds and
        // check the two channels' loss patterns are not identical.
        let a: Vec<u32> = (0..64)
            .map(|r| plan.delivery(3, r, 0, MsgChannel::Phase1Down, 7).attempts)
            .collect();
        let b: Vec<u32> = (0..64)
            .map(|r| plan.delivery(3, r, 0, MsgChannel::Phase2Down, 7).attempts)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn levels_decorrelate_survival_bits() {
        // Satellite regression: two levels with equal block indices must
        // draw independent survival bits.
        let plan = FaultPlan {
            client_crash: 0.5,
            ..NO_FAULTS
        };
        let seed = 11;
        let l0: Vec<bool> = (0..256)
            .map(|c| plan.client_crashed(seed, 3, 0, c))
            .collect();
        let l1: Vec<bool> = (0..256)
            .map(|c| plan.client_crashed(seed, 3, 1, c))
            .collect();
        assert_ne!(l0, l1, "levels share a survival stream");
        // And both levels actually flip coins (≈ half crash).
        for v in [&l0, &l1] {
            let crashed = v.iter().filter(|&&b| b).count();
            assert!((64..192).contains(&crashed), "crashed {crashed}");
        }
    }

    #[test]
    fn delivery_respects_retry_bound_and_backoff_doubles() {
        let plan = FaultPlan {
            msg_loss: 1.0,
            max_retries: 3,
            backoff_base_s: 0.5,
            ..NO_FAULTS
        };
        let d = plan.delivery(1, 0, 0, MsgChannel::Phase1Down, 0);
        assert!(!d.delivered);
        assert_eq!(d.attempts, 4);
        // 0.5 + 1.0 + 2.0 (no wait after the final, abandoned attempt).
        assert!((d.backoff_s - 3.5).abs() < 1e-12);
    }

    #[test]
    fn delivery_statistics_track_loss_rate() {
        let plan = FaultPlan {
            msg_loss: 0.3,
            max_retries: 5,
            backoff_base_s: 0.0,
            ..NO_FAULTS
        };
        let n = 10_000;
        let first_try = (0..n)
            .filter(|&r| plan.delivery(21, r, 0, MsgChannel::Phase1Up, 0).attempts == 1)
            .count();
        let frac = first_try as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.02, "first-try rate {frac}");
    }

    #[test]
    fn straggler_fates_partition_by_deadline() {
        let plan = FaultPlan {
            straggler_rate: 1.0,
            straggler_slowdown: 4.0,
            deadline_factor: 2.5,
            ..NO_FAULTS
        };
        let mut slow = 0;
        let mut missed = 0;
        for c in 0..4_000 {
            match plan.straggler(5, 0, 0, c) {
                StragglerFate::OnTime => panic!("rate 1.0 cannot be on time"),
                StragglerFate::Slow(s) => {
                    assert!(s > 1.0 && s <= 2.5);
                    slow += 1;
                }
                StragglerFate::Missed => missed += 1,
            }
        }
        // Slowdown uniform on (1, 4]: P(≤ 2.5) = 0.5.
        let frac = slow as f64 / (slow + missed) as f64;
        assert!((frac - 0.5).abs() < 0.03, "in-deadline fraction {frac}");
    }

    #[test]
    fn injector_counts_and_accumulates() {
        let plan = FaultPlan {
            client_crash: 1.0,
            edge_outage: 1.0,
            msg_loss: 1.0,
            max_retries: 2,
            backoff_base_s: 0.25,
            ..NO_FAULTS
        };
        let fi = FaultInjector::new(9, plan);
        assert!(fi.is_active());
        assert!(!fi.client_alive(0, 0, 0));
        assert!(fi.edge_out(0, 0, 1));
        let d = fi.deliver(0, 0, MsgChannel::Phase1Down, 1);
        assert!(!d.delivered);
        fi.add_straggler_slots(1.5);
        let s = fi.stats();
        assert_eq!(s.crashes, 1);
        assert_eq!(s.outages, 1);
        assert_eq!(s.retries, 2);
        assert_eq!(s.gave_up, 1);
        assert!((s.backoff_s - 0.75).abs() < 1e-12);
        assert!((s.straggler_slots - 1.5).abs() < 1e-12);
        assert_eq!(s.total(), 5);
        // Deltas telescope.
        let d2 = fi.stats().since(&s);
        assert_eq!(d2, FaultStats::default());
    }

    #[test]
    fn with_dropout_fills_only_unset_crash_rate() {
        assert_eq!(NO_FAULTS.with_dropout(0.3).client_crash, 0.3);
        let plan = FaultPlan {
            client_crash: 0.2,
            ..NO_FAULTS
        };
        assert_eq!(plan.with_dropout(0.3).client_crash, 0.2);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn injector_rejects_invalid_plan() {
        let mut p = NO_FAULTS;
        p.msg_loss = -0.1;
        let _ = FaultInjector::new(0, p);
    }

    #[test]
    fn validate_rejects_non_finite_rates_everywhere() {
        // Satellite bugfix: every knob must reject NaN and ±∞ explicitly,
        // not rely on a range check that NaN can slip past.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            for field in 0..5 {
                let mut p = NO_FAULTS;
                match field {
                    0 => p.client_crash = bad,
                    1 => p.edge_outage = bad,
                    2 => p.msg_loss = bad,
                    3 => p.straggler_rate = bad,
                    _ => p.corrupt_rate = bad,
                }
                assert!(p.validate().is_err(), "field {field} accepted {bad}");
            }
        }
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for field in 0..5 {
                let mut p = NO_FAULTS;
                match field {
                    0 => p.backoff_base_s = bad,
                    1 => p.straggler_slowdown = bad,
                    2 => p.deadline_factor = bad,
                    3 => p.attack_scale = bad,
                    _ => p.backoff_jitter = bad,
                }
                assert!(p.validate().is_err(), "f64 field {field} accepted {bad}");
            }
        }
        assert!(NO_FAULTS.validate().is_ok());
    }

    #[test]
    fn zero_corrupt_rate_never_corrupts() {
        assert!(!NO_FAULTS.has_adversary());
        for c in 0..64 {
            assert!(!NO_FAULTS.client_corrupt(7, 3, 0, c));
        }
    }

    #[test]
    fn corrupt_decisions_are_deterministic_and_track_rate() {
        let plan = FaultPlan::preset("byzantine").unwrap();
        assert!(plan.has_adversary());
        assert!(plan.is_none(), "byzantine preset must not inject crashes");
        let bits: Vec<bool> = (0..4_000)
            .map(|c| plan.client_corrupt(11, 5, 0, c))
            .collect();
        let again: Vec<bool> = (0..4_000)
            .map(|c| plan.client_corrupt(11, 5, 0, c))
            .collect();
        assert_eq!(bits, again);
        let frac = bits.iter().filter(|&&b| b).count() as f64 / 4_000.0;
        assert!((frac - 0.2).abs() < 0.02, "corrupt fraction {frac}");
        // Corruption coins live on their own purpose stream: they must
        // not mirror the Dropout stream at equal indices.
        let crash_plan = FaultPlan {
            client_crash: 0.2,
            ..NO_FAULTS
        };
        let crash_bits: Vec<bool> = (0..4_000)
            .map(|c| crash_plan.client_crashed(11, 5, 0, c))
            .collect();
        assert_ne!(bits, crash_bits);
    }

    #[test]
    fn attack_models_transform_as_specified() {
        let base = [1.0_f32, -2.0, 0.5];
        let honest = [1.5_f32, -2.5, 0.5];
        let mk = |attack, k| FaultPlan {
            corrupt_rate: 1.0,
            attack,
            attack_scale: k,
            ..NO_FAULTS
        };

        let mut w = honest;
        mk(AttackModel::SignFlip, 2.0).corrupt_update(1, 2, 0, 3, &base, &mut w);
        assert_eq!(w, [0.0, -1.0, 0.5]); // base − 2·(honest − base)

        let mut w = honest;
        mk(AttackModel::Scale, 3.0).corrupt_update(1, 2, 0, 3, &base, &mut w);
        assert_eq!(w, [2.5, -3.5, 0.5]); // base + 3·(honest − base)

        let mut w = honest;
        mk(AttackModel::Zero, 1.0).corrupt_update(1, 2, 0, 3, &base, &mut w);
        assert_eq!(w, base);

        // Noise is keyed per client and repeatable.
        let noise = mk(AttackModel::Noise, 0.1);
        let mut a = honest;
        let mut b = honest;
        noise.corrupt_update(1, 2, 0, 3, &base, &mut a);
        noise.corrupt_update(1, 2, 0, 3, &base, &mut b);
        assert_eq!(a, b);
        assert_ne!(a, honest);
        let mut other = honest;
        noise.corrupt_update(1, 2, 0, 4, &base, &mut other);
        assert_ne!(a, other, "noise must decorrelate across clients");

        // Colluders in the same block share one direction.
        let collude = mk(AttackModel::Collude, 1.0);
        let mut c3 = honest;
        let mut c4 = [9.0_f32, 9.0, 9.0]; // honest update is irrelevant
        collude.corrupt_update(1, 2, 0, 3, &base, &mut c3);
        collude.corrupt_update(1, 2, 0, 4, &base, &mut c4);
        assert_eq!(c3, c4, "colluders must upload the same vector");
        let mut c5 = honest;
        collude.corrupt_update(1, 3, 0, 3, &base, &mut c5);
        assert_ne!(c3, c5, "collusion direction must change per block");
    }

    #[test]
    fn backoff_jitter_desynchronizes_but_preserves_outcomes() {
        let lossy = FaultPlan {
            msg_loss: 1.0,
            max_retries: 3,
            backoff_base_s: 0.5,
            ..NO_FAULTS
        };
        let jittered = FaultPlan {
            backoff_jitter: 0.5,
            ..lossy
        };
        let plain = lossy.delivery(1, 0, 0, MsgChannel::Phase1Down, 0);
        let jit = jittered.delivery(1, 0, 0, MsgChannel::Phase1Down, 0);
        // Same attempts and outcome: jitter only perturbs wait times.
        assert_eq!(plain.attempts, jit.attempts);
        assert_eq!(plain.delivered, jit.delivered);
        assert!((plain.backoff_s - 3.5).abs() < 1e-12, "default stays exact");
        assert!(jit.backoff_s != plain.backoff_s);
        // Each wait is scaled by at most 1 ± jitter/2.
        assert!(jit.backoff_s > 3.5 * 0.75 && jit.backoff_s < 3.5 * 1.25);
        // Deterministic, and desynchronized across edges.
        assert_eq!(jit, jittered.delivery(1, 0, 0, MsgChannel::Phase1Down, 0));
        let other = jittered.delivery(1, 0, 0, MsgChannel::Phase1Down, 1);
        assert_eq!(other.attempts, jit.attempts);
        assert_ne!(other.backoff_s, jit.backoff_s, "edges must desync");
        // Jitter draws never touch the loss stream: delivery patterns
        // match coin-for-coin with jitter on and off.
        let chatty = FaultPlan {
            msg_loss: 0.4,
            max_retries: 4,
            ..NO_FAULTS
        };
        let chatty_jit = FaultPlan {
            backoff_jitter: 1.0,
            ..chatty
        };
        for r in 0..256 {
            let a = chatty.delivery(9, r, 0, MsgChannel::Phase1Up, 2);
            let b = chatty_jit.delivery(9, r, 0, MsgChannel::Phase1Up, 2);
            assert_eq!((a.attempts, a.delivered), (b.attempts, b.delivered));
        }
    }

    #[test]
    fn injector_tracks_adversary_counters_and_restores() {
        let fi = FaultInjector::new(3, FaultPlan::preset("byzantine").unwrap());
        assert!(fi.has_adversary());
        assert!(
            !fi.is_active(),
            "adversary alone must not gate fault_summary"
        );
        let mut hits = 0;
        for c in 0..64 {
            if fi.client_corrupt(0, 0, c) {
                hits += 1;
            }
        }
        fi.add_quarantined(2);
        fi.add_excluded(5);
        let s = fi.adversary_stats();
        assert_eq!(s.corrupted_updates, hits);
        assert_eq!(s.quarantined_clients, 2);
        assert_eq!(s.excluded_uploads, 5);
        assert_eq!(s.total(), hits + 7);
        assert_eq!(s.since(&s), QuarantineStats::default());
        let fresh = FaultInjector::new(3, FaultPlan::preset("byzantine").unwrap());
        fresh.restore_adversary(&s);
        assert_eq!(fresh.adversary_stats(), s);
    }
}
