//! Deterministic fault injection.
//!
//! The paper's system model (§1) assumes flaky mobile clients and a slow,
//! unreliable WAN to the cloud, but the base protocol is failure-free.
//! This module injects four fault classes into the hierarchical run loops
//! — client crashes, edge-server outage windows, edge↔cloud message loss
//! with bounded retry + exponential backoff, and compute stragglers cut by
//! a per-block deadline — all driven by keyed [`StreamRng`] streams, the
//! same discipline as `Purpose::Dropout`:
//!
//! - every fault decision is a **pure function** of
//!   `(seed, plan, purpose, round/block, level, entity)`, so runs are
//!   bit-reproducible under rayon, across executors, and across reruns;
//! - the conformance automaton (hm-testkit) replays the same streams from
//!   the [`FaultPlan`] alone and validates survivor sets, retry
//!   communication deltas, and stale-round invariants;
//! - a plan whose rates are all zero makes **no draws at all**, so a
//!   fault-enabled run with zero rates is bit-identical to a fault-free
//!   run.
//!
//! The [`FaultInjector`] wraps the pure decision functions with atomic
//! occurrence counters and simulated-time accumulators (backoff waits,
//! straggler-stretched sync windows); the run loops surface those through
//! telemetry as `fault` / `fault_summary` events rather than panicking.

use hm_data::rng::{Purpose, StreamKey, StreamRng};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Mix a hierarchy level into a stream-entity id. Level 0 leaves the id
/// unchanged, so three-layer runs keep the exact streams of the legacy
/// `dropout` field (the pinned regression corpus depends on this).
#[inline]
fn entity(level: usize, id: usize) -> u64 {
    ((level as u64) << 32) | id as u64
}

/// Which edge↔cloud message a delivery attempt belongs to. Each channel
/// gets its own loss stream so e.g. a round's Phase-1 and Phase-2
/// downlinks to the same edge fail independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgChannel {
    /// Cloud → edge: round-start model (+ checkpoint index).
    Phase1Down,
    /// Edge → cloud: final model (+ checkpoint model).
    Phase1Up,
    /// Cloud → edge: Phase-2 checkpoint model for loss estimation.
    Phase2Down,
}

impl MsgChannel {
    fn tag(self) -> u64 {
        match self {
            MsgChannel::Phase1Down => 0,
            MsgChannel::Phase1Up => 1,
            MsgChannel::Phase2Down => 2,
        }
    }
}

/// The fault classes, as reported in traces and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A sampled edge server is down for the whole round.
    EdgeOutage,
    /// An edge↔cloud message needed retransmissions (but got through).
    MsgRetried,
    /// An edge↔cloud message was lost and retries were exhausted.
    MsgGaveUp,
}

impl FaultKind {
    /// Stable string tag used in telemetry events.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::EdgeOutage => "edge_outage",
            FaultKind::MsgRetried => "msg_retried",
            FaultKind::MsgGaveUp => "msg_gave_up",
        }
    }
}

/// Outcome of one client's straggler draw for one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StragglerFate {
    /// Not a straggler this block.
    OnTime,
    /// Slowed by the given factor but inside the deadline: the client
    /// contributes, and the block's sync window stretches to wait for it.
    Slow(f64),
    /// Slowed past the deadline: the edge aggregates without the laggard.
    Missed,
}

/// Outcome of delivering one edge↔cloud message under loss + retry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Total transmissions (1 = first try succeeded; each retry adds one).
    pub attempts: u32,
    /// Whether any attempt got through before retries ran out.
    pub delivered: bool,
    /// Exponential-backoff wait accumulated before retries
    /// (`backoff_base_s · (2^retries − 1)`).
    pub backoff_s: f64,
}

/// Declarative fault configuration for a run. All decisions derived from a
/// plan are keyed off the run's master seed, so a `(plan, seed)` pair fully
/// determines every injected fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-block probability that a client crashes (neither computes nor
    /// uploads for that block). Generalises the legacy `dropout` field.
    pub client_crash: f32,
    /// Per-round probability that a sampled edge server is out for the
    /// whole round (never receives or reports anything, both phases).
    pub edge_outage: f32,
    /// Per-attempt loss probability of an edge↔cloud message.
    pub msg_loss: f32,
    /// Retransmissions allowed after the first attempt before the sender
    /// gives up on a lost message.
    pub max_retries: u32,
    /// Wait before the first retry (seconds of simulated time); doubles on
    /// every further retry.
    pub backoff_base_s: f64,
    /// Per-block probability that a client is a compute straggler.
    pub straggler_rate: f32,
    /// Maximum slowdown factor: a straggler's factor is drawn uniformly
    /// from `(1, straggler_slowdown]`.
    pub straggler_slowdown: f64,
    /// Per-block deadline as a multiple of the nominal block time: a
    /// straggler slower than this is cut from the block's aggregation.
    pub deadline_factor: f64,
}

/// The failure-free plan.
pub const NO_FAULTS: FaultPlan = FaultPlan {
    client_crash: 0.0,
    edge_outage: 0.0,
    msg_loss: 0.0,
    max_retries: 2,
    backoff_base_s: 0.05,
    straggler_rate: 0.0,
    straggler_slowdown: 1.0,
    deadline_factor: 2.0,
};

impl Default for FaultPlan {
    fn default() -> Self {
        NO_FAULTS
    }
}

/// Names accepted by [`FaultPlan::preset`], in help order.
pub const FAULT_PRESETS: [&str; 6] = [
    "none",
    "flaky-clients",
    "edge-outages",
    "lossy-wan",
    "stragglers",
    "chaos",
];

impl FaultPlan {
    /// Whether every fault rate is zero (no streams are ever drawn).
    pub fn is_none(&self) -> bool {
        self.client_crash == 0.0
            && self.edge_outage == 0.0
            && self.msg_loss == 0.0
            && self.straggler_rate == 0.0
    }

    /// Check parameter ranges, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, v: f32| -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must lie in [0, 1], got {v}"))
            }
        };
        prob("client_crash", self.client_crash)?;
        prob("edge_outage", self.edge_outage)?;
        prob("msg_loss", self.msg_loss)?;
        prob("straggler_rate", self.straggler_rate)?;
        if !(self.backoff_base_s >= 0.0 && self.backoff_base_s.is_finite()) {
            return Err(format!(
                "backoff_base_s must be finite and ≥ 0, got {}",
                self.backoff_base_s
            ));
        }
        if !(self.straggler_slowdown >= 1.0 && self.straggler_slowdown.is_finite()) {
            return Err(format!(
                "straggler_slowdown must be finite and ≥ 1, got {}",
                self.straggler_slowdown
            ));
        }
        if !(self.deadline_factor >= 1.0 && self.deadline_factor.is_finite()) {
            return Err(format!(
                "deadline_factor must be finite and ≥ 1, got {}",
                self.deadline_factor
            ));
        }
        Ok(())
    }

    /// A named preset (the `--fault-plan` vocabulary), or `None` for an
    /// unknown name. See [`FAULT_PRESETS`].
    pub fn preset(name: &str) -> Option<FaultPlan> {
        match name {
            "none" => Some(NO_FAULTS),
            "flaky-clients" => Some(FaultPlan {
                client_crash: 0.2,
                ..NO_FAULTS
            }),
            "edge-outages" => Some(FaultPlan {
                edge_outage: 0.15,
                ..NO_FAULTS
            }),
            "lossy-wan" => Some(FaultPlan {
                msg_loss: 0.15,
                max_retries: 3,
                backoff_base_s: 0.1,
                ..NO_FAULTS
            }),
            "stragglers" => Some(FaultPlan {
                straggler_rate: 0.25,
                straggler_slowdown: 4.0,
                deadline_factor: 2.5,
                ..NO_FAULTS
            }),
            "chaos" => Some(FaultPlan {
                client_crash: 0.1,
                edge_outage: 0.1,
                msg_loss: 0.1,
                max_retries: 2,
                backoff_base_s: 0.1,
                straggler_rate: 0.15,
                straggler_slowdown: 3.0,
                deadline_factor: 2.0,
            }),
            _ => None,
        }
    }

    /// The legacy per-config `dropout` knob folded in: when the plan's
    /// `client_crash` is zero, `dropout` takes its place (the plan wins if
    /// both are set, so `--fault-plan` presets override `--dropout`).
    pub fn with_dropout(mut self, dropout: f32) -> FaultPlan {
        if self.client_crash == 0.0 {
            self.client_crash = dropout;
        }
        self
    }

    // --- Pure decision functions -------------------------------------
    //
    // Everything below is a pure function of (plan, seed, indices): the
    // injector and the conformance replayer both call these, which is
    // what makes the degraded-round protocol checkable.

    /// Whether a client crashed for the block keyed by `block_tag`
    /// (`round·τ2 + t2`). At `level == 0` this draws the exact stream of
    /// the legacy `dropout` field.
    pub fn client_crashed(&self, seed: u64, block_tag: u64, level: usize, client: usize) -> bool {
        if self.client_crash == 0.0 {
            return false;
        }
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::Dropout,
            block_tag,
            entity(level, client),
        ));
        rng.uniform() < f64::from(self.client_crash)
    }

    /// Whether an edge server is out for the given round.
    pub fn edge_out(&self, seed: u64, round: u64, level: usize, edge: usize) -> bool {
        if self.edge_outage == 0.0 {
            return false;
        }
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::EdgeOutage,
            round,
            entity(level, edge),
        ));
        rng.uniform() < f64::from(self.edge_outage)
    }

    /// A client's straggler fate for the block keyed by `block_tag`.
    pub fn straggler(
        &self,
        seed: u64,
        block_tag: u64,
        level: usize,
        client: usize,
    ) -> StragglerFate {
        if self.straggler_rate == 0.0 {
            return StragglerFate::OnTime;
        }
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::Straggler,
            block_tag,
            entity(level, client),
        ));
        if rng.uniform() >= f64::from(self.straggler_rate) {
            return StragglerFate::OnTime;
        }
        let slowdown = 1.0 + rng.uniform() * (self.straggler_slowdown - 1.0);
        if slowdown > self.deadline_factor {
            StragglerFate::Missed
        } else {
            StragglerFate::Slow(slowdown)
        }
    }

    /// Replay the delivery of one edge↔cloud message: sequential loss
    /// draws from the message's own stream, up to `1 + max_retries`
    /// attempts, doubling backoff between attempts.
    pub fn delivery(
        &self,
        seed: u64,
        round: u64,
        level: usize,
        channel: MsgChannel,
        edge: usize,
    ) -> Delivery {
        if self.msg_loss == 0.0 {
            return Delivery {
                attempts: 1,
                delivered: true,
                backoff_s: 0.0,
            };
        }
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::MsgLoss,
            round,
            ((level as u64) << 34) | (channel.tag() << 32) | edge as u64,
        ));
        let loss = f64::from(self.msg_loss);
        let mut backoff_s = 0.0;
        let mut wait = self.backoff_base_s;
        for attempt in 1..=(1 + self.max_retries) {
            if rng.uniform() >= loss {
                return Delivery {
                    attempts: attempt,
                    delivered: true,
                    backoff_s,
                };
            }
            if attempt <= self.max_retries {
                backoff_s += wait;
                wait *= 2.0;
            }
        }
        Delivery {
            attempts: 1 + self.max_retries,
            delivered: false,
            backoff_s,
        }
    }
}

/// Snapshot of a run's fault bookkeeping (all counters cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Client-crash events (per block, per client).
    pub crashes: u64,
    /// Edge-outage observations (per phase that consulted the edge; an
    /// edge out in both phases of a round counts twice).
    pub outages: u64,
    /// Message retransmissions (attempts beyond the first).
    pub retries: u64,
    /// Messages whose retries were exhausted.
    pub gave_up: u64,
    /// Clients cut from a block by the straggler deadline.
    pub deadline_missed: u64,
    /// Simulated seconds spent in retry backoff waits.
    pub backoff_s: f64,
    /// Extra local-SGD time slots spent waiting for in-deadline
    /// stragglers (fractional; multiply by the latency model's
    /// `client_step_s` for seconds).
    pub straggler_slots: f64,
}

impl FaultStats {
    /// Counter-wise difference `self − earlier` (per-round deltas).
    pub fn since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            crashes: self.crashes - earlier.crashes,
            outages: self.outages - earlier.outages,
            retries: self.retries - earlier.retries,
            gave_up: self.gave_up - earlier.gave_up,
            deadline_missed: self.deadline_missed - earlier.deadline_missed,
            backoff_s: self.backoff_s - earlier.backoff_s,
            straggler_slots: self.straggler_slots - earlier.straggler_slots,
        }
    }

    /// Total fault occurrences of any class.
    pub fn total(&self) -> u64 {
        self.crashes + self.outages + self.retries + self.gave_up + self.deadline_missed
    }
}

/// Run-scoped fault oracle: the pure [`FaultPlan`] decisions plus
/// thread-safe occurrence counting and simulated-time accumulation.
///
/// Counting uses relaxed atomics (the same argument as `CommMeter`: no
/// cross-counter invariant is read mid-run); the float accumulators sit
/// behind a mutex and are only touched in sequential protocol sections.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    plan: FaultPlan,
    crashes: AtomicU64,
    outages: AtomicU64,
    retries: AtomicU64,
    gave_up: AtomicU64,
    deadline_missed: AtomicU64,
    seconds: Mutex<(f64, f64)>, // (backoff_s, straggler_slots)
}

impl FaultInjector {
    /// Bind a plan to a run's master seed.
    ///
    /// # Panics
    /// Panics on an invalid plan (see [`FaultPlan::validate`]).
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        Self {
            seed,
            plan,
            crashes: AtomicU64::new(0),
            outages: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            gave_up: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            seconds: Mutex::new((0.0, 0.0)),
        }
    }

    /// An injector that never faults (for fault-free callers).
    pub fn none(seed: u64) -> Self {
        Self::new(seed, NO_FAULTS)
    }

    /// The bound plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any fault class has a nonzero rate.
    pub fn is_active(&self) -> bool {
        !self.plan.is_none()
    }

    /// Whether a client survives the block (not crashed); counts crashes.
    pub fn client_alive(&self, block_tag: u64, level: usize, client: usize) -> bool {
        let crashed = self
            .plan
            .client_crashed(self.seed, block_tag, level, client);
        if crashed {
            self.crashes.fetch_add(1, Ordering::Relaxed);
        }
        !crashed
    }

    /// Whether an edge is out this round; counts the observation.
    pub fn edge_out(&self, round: u64, level: usize, edge: usize) -> bool {
        let out = self.plan.edge_out(self.seed, round, level, edge);
        if out {
            self.outages.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// A client's straggler fate for a block; counts deadline misses.
    pub fn straggler(&self, block_tag: u64, level: usize, client: usize) -> StragglerFate {
        let fate = self.plan.straggler(self.seed, block_tag, level, client);
        if fate == StragglerFate::Missed {
            self.deadline_missed.fetch_add(1, Ordering::Relaxed);
        }
        fate
    }

    /// Deliver one edge↔cloud message; counts retries/give-ups and
    /// accumulates backoff time.
    pub fn deliver(&self, round: u64, level: usize, channel: MsgChannel, edge: usize) -> Delivery {
        let d = self.plan.delivery(self.seed, round, level, channel, edge);
        if d.attempts > 1 {
            self.retries
                .fetch_add(u64::from(d.attempts - 1), Ordering::Relaxed);
        }
        if !d.delivered {
            self.gave_up.fetch_add(1, Ordering::Relaxed);
        }
        if d.backoff_s > 0.0 {
            self.seconds.lock().0 += d.backoff_s;
        }
        d
    }

    /// Charge extra time slots spent waiting for in-deadline stragglers.
    pub fn add_straggler_slots(&self, slots: f64) {
        if slots > 0.0 {
            self.seconds.lock().1 += slots;
        }
    }

    /// Overwrite every counter with the values of a [`FaultStats`]
    /// snapshot. Used when resuming a checkpointed run: the injector's
    /// decision streams are pure functions of `(seed, round, entity)` and
    /// need no restoration, but the cumulative bookkeeping must be
    /// fast-forwarded so per-round deltas and the final stats match an
    /// uninterrupted run bit-for-bit.
    pub fn restore(&self, stats: &FaultStats) {
        self.crashes.store(stats.crashes, Ordering::Relaxed);
        self.outages.store(stats.outages, Ordering::Relaxed);
        self.retries.store(stats.retries, Ordering::Relaxed);
        self.gave_up.store(stats.gave_up, Ordering::Relaxed);
        self.deadline_missed
            .store(stats.deadline_missed, Ordering::Relaxed);
        *self.seconds.lock() = (stats.backoff_s, stats.straggler_slots);
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> FaultStats {
        let (backoff_s, straggler_slots) = *self.seconds.lock();
        FaultStats {
            crashes: self.crashes.load(Ordering::Relaxed),
            outages: self.outages.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            gave_up: self.gave_up.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            backoff_s,
            straggler_slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_plan_is_none_and_decides_nothing() {
        assert!(NO_FAULTS.is_none());
        assert!(!NO_FAULTS.client_crashed(1, 2, 0, 3));
        assert!(!NO_FAULTS.edge_out(1, 2, 0, 3));
        assert_eq!(NO_FAULTS.straggler(1, 2, 0, 3), StragglerFate::OnTime);
        let d = NO_FAULTS.delivery(1, 2, 0, MsgChannel::Phase1Down, 3);
        assert_eq!(
            d,
            Delivery {
                attempts: 1,
                delivered: true,
                backoff_s: 0.0
            }
        );
    }

    #[test]
    fn presets_resolve_and_validate() {
        for name in FAULT_PRESETS {
            let p = FaultPlan::preset(name).expect(name);
            p.validate().expect(name);
        }
        assert!(FaultPlan::preset("nope").is_none());
        assert!(FaultPlan::preset("none").unwrap().is_none());
        assert!(!FaultPlan::preset("chaos").unwrap().is_none());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut p = NO_FAULTS;
        p.client_crash = 1.5;
        assert!(p.validate().is_err());
        let mut p = NO_FAULTS;
        p.straggler_slowdown = 0.5;
        assert!(p.validate().is_err());
        let mut p = NO_FAULTS;
        p.deadline_factor = 0.0;
        assert!(p.validate().is_err());
        let mut p = NO_FAULTS;
        p.backoff_base_s = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn client_crash_matches_legacy_dropout_stream_at_level_zero() {
        // The legacy hier_common draw was:
        //   uniform() >= dropout  ⇔  alive
        // from (seed, Dropout, block_tag, client). The plan must replicate
        // it bit-for-bit at level 0 so the pinned corpus stays valid.
        let plan = FaultPlan {
            client_crash: 0.45,
            ..NO_FAULTS
        };
        for (seed, tag, client) in [(42u64, 0u64, 0usize), (7, 13, 5), (9, 999, 31)] {
            let mut legacy =
                StreamRng::for_key(StreamKey::new(seed, Purpose::Dropout, tag, client as u64));
            let legacy_alive = legacy.uniform() >= 0.45;
            assert_eq!(!plan.client_crashed(seed, tag, 0, client), legacy_alive);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_key_sensitive() {
        let plan = FaultPlan::preset("chaos").unwrap();
        assert_eq!(
            plan.client_crashed(3, 5, 1, 7),
            plan.client_crashed(3, 5, 1, 7)
        );
        assert_eq!(
            plan.delivery(3, 5, 0, MsgChannel::Phase1Up, 7),
            plan.delivery(3, 5, 0, MsgChannel::Phase1Up, 7)
        );
        // Channels decorrelate: collect outcomes over many rounds and
        // check the two channels' loss patterns are not identical.
        let a: Vec<u32> = (0..64)
            .map(|r| plan.delivery(3, r, 0, MsgChannel::Phase1Down, 7).attempts)
            .collect();
        let b: Vec<u32> = (0..64)
            .map(|r| plan.delivery(3, r, 0, MsgChannel::Phase2Down, 7).attempts)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn levels_decorrelate_survival_bits() {
        // Satellite regression: two levels with equal block indices must
        // draw independent survival bits.
        let plan = FaultPlan {
            client_crash: 0.5,
            ..NO_FAULTS
        };
        let seed = 11;
        let l0: Vec<bool> = (0..256)
            .map(|c| plan.client_crashed(seed, 3, 0, c))
            .collect();
        let l1: Vec<bool> = (0..256)
            .map(|c| plan.client_crashed(seed, 3, 1, c))
            .collect();
        assert_ne!(l0, l1, "levels share a survival stream");
        // And both levels actually flip coins (≈ half crash).
        for v in [&l0, &l1] {
            let crashed = v.iter().filter(|&&b| b).count();
            assert!((64..192).contains(&crashed), "crashed {crashed}");
        }
    }

    #[test]
    fn delivery_respects_retry_bound_and_backoff_doubles() {
        let plan = FaultPlan {
            msg_loss: 1.0,
            max_retries: 3,
            backoff_base_s: 0.5,
            ..NO_FAULTS
        };
        let d = plan.delivery(1, 0, 0, MsgChannel::Phase1Down, 0);
        assert!(!d.delivered);
        assert_eq!(d.attempts, 4);
        // 0.5 + 1.0 + 2.0 (no wait after the final, abandoned attempt).
        assert!((d.backoff_s - 3.5).abs() < 1e-12);
    }

    #[test]
    fn delivery_statistics_track_loss_rate() {
        let plan = FaultPlan {
            msg_loss: 0.3,
            max_retries: 5,
            backoff_base_s: 0.0,
            ..NO_FAULTS
        };
        let n = 10_000;
        let first_try = (0..n)
            .filter(|&r| plan.delivery(21, r, 0, MsgChannel::Phase1Up, 0).attempts == 1)
            .count();
        let frac = first_try as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.02, "first-try rate {frac}");
    }

    #[test]
    fn straggler_fates_partition_by_deadline() {
        let plan = FaultPlan {
            straggler_rate: 1.0,
            straggler_slowdown: 4.0,
            deadline_factor: 2.5,
            ..NO_FAULTS
        };
        let mut slow = 0;
        let mut missed = 0;
        for c in 0..4_000 {
            match plan.straggler(5, 0, 0, c) {
                StragglerFate::OnTime => panic!("rate 1.0 cannot be on time"),
                StragglerFate::Slow(s) => {
                    assert!(s > 1.0 && s <= 2.5);
                    slow += 1;
                }
                StragglerFate::Missed => missed += 1,
            }
        }
        // Slowdown uniform on (1, 4]: P(≤ 2.5) = 0.5.
        let frac = slow as f64 / (slow + missed) as f64;
        assert!((frac - 0.5).abs() < 0.03, "in-deadline fraction {frac}");
    }

    #[test]
    fn injector_counts_and_accumulates() {
        let plan = FaultPlan {
            client_crash: 1.0,
            edge_outage: 1.0,
            msg_loss: 1.0,
            max_retries: 2,
            backoff_base_s: 0.25,
            straggler_rate: 0.0,
            straggler_slowdown: 1.0,
            deadline_factor: 2.0,
        };
        let fi = FaultInjector::new(9, plan);
        assert!(fi.is_active());
        assert!(!fi.client_alive(0, 0, 0));
        assert!(fi.edge_out(0, 0, 1));
        let d = fi.deliver(0, 0, MsgChannel::Phase1Down, 1);
        assert!(!d.delivered);
        fi.add_straggler_slots(1.5);
        let s = fi.stats();
        assert_eq!(s.crashes, 1);
        assert_eq!(s.outages, 1);
        assert_eq!(s.retries, 2);
        assert_eq!(s.gave_up, 1);
        assert!((s.backoff_s - 0.75).abs() < 1e-12);
        assert!((s.straggler_slots - 1.5).abs() < 1e-12);
        assert_eq!(s.total(), 5);
        // Deltas telescope.
        let d2 = fi.stats().since(&s);
        assert_eq!(d2, FaultStats::default());
    }

    #[test]
    fn with_dropout_fills_only_unset_crash_rate() {
        assert_eq!(NO_FAULTS.with_dropout(0.3).client_crash, 0.3);
        let plan = FaultPlan {
            client_crash: 0.2,
            ..NO_FAULTS
        };
        assert_eq!(plan.with_dropout(0.3).client_crash, 0.2);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn injector_rejects_invalid_plan() {
        let mut p = NO_FAULTS;
        p.msg_loss = -0.1;
        let _ = FaultInjector::new(0, p);
    }
}
