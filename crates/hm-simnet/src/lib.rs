//! Hierarchical client-edge-cloud network simulator.
//!
//! The paper's system model (Fig. 1) is a hub-and-spoke hierarchy: a cloud
//! server, `N_E` edge servers, and `N_0` clients per edge. All experiments
//! in the paper run this topology in simulation (PyTorch on one machine);
//! this crate is the equivalent substrate in Rust:
//!
//! - [`topology`] — the static structure and id spaces.
//! - [`comm`] — per-link-type communication metering (floats, messages,
//!   synchronisation rounds). The evaluation's x-axis ("communication
//!   rounds") and Table 1's edge-cloud communication complexity both come
//!   from these counters, so they are first-class and conservation-checked.
//! - [`executor`] — the order-fixed parallel map used to run client work
//!   concurrently (rayon) while keeping results bit-deterministic.
//! - [`sampling`] — partial-participation samplers: weighted-by-`p` with
//!   replacement (Phase 1) and uniform without replacement (Phase 2).
//! - [`latency`] — a wall-clock cost model turning metered communication
//!   into simulated deployment time (fast local links, slow cloud links).
//! - [`quantize`] — unbiased stochastic model quantization (the
//!   Hier-Local-QSGD extension of the paper's reference \[22\]) with the
//!   matching wire-cost model.
//! - [`trace`] — an optional structured event log used by integration
//!   tests to assert protocol-level behaviour (who was sampled, what was
//!   aggregated when).
//! - [`fault`] — deterministic fault injection (client crashes, edge
//!   outages, message loss with retry/backoff, stragglers, Byzantine
//!   update corruption), keyed off the
//!   same RNG-stream discipline so faulty runs stay bit-reproducible and
//!   conformance-checkable.

//! - [`churn`] — deterministic membership churn (clients leave/join, edge
//!   servers fail permanently with client re-homing), same keyed-stream
//!   discipline as [`fault`].

pub mod churn;
pub mod comm;
pub mod executor;
pub mod fault;
pub mod latency;
pub mod quantize;
pub mod sampling;
pub mod topology;
pub mod trace;

pub use churn::{ActiveTopology, ChurnPlan, ChurnStats, RoundChurn, CHURN_PRESETS, NO_CHURN};
pub use comm::{CommMeter, CommStats, Link};
pub use executor::{ExecEngine, Parallelism};
pub use fault::{
    AttackModel, Delivery, FaultInjector, FaultKind, FaultPlan, FaultStats, MsgChannel,
    QuarantineStats, StragglerFate, ATTACK_MODELS, FAULT_PRESETS, NO_FAULTS,
};
pub use latency::LatencyModel;
pub use quantize::Quantizer;
pub use topology::Topology;
