//! The static client-edge-cloud hierarchy.
//!
//! Matches the paper's system model: `N_E` edge servers, each serving the
//! same number `N_0` of clients (the paper assumes `|N_e| = N_0` for
//! notational convenience; like the paper, the algorithms generalise, but
//! the concrete topology type enforces the symmetric case used throughout
//! the evaluation).

/// Identifier of an edge server (`0..num_edges`).
pub type EdgeId = usize;

/// Identifier of a client (`0..total_clients`), globally unique.
pub type ClientId = usize;

/// The three-layer hub-and-spoke topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    num_edges: usize,
    clients_per_edge: usize,
}

impl Topology {
    /// Build a topology with `num_edges` edge areas of `clients_per_edge`
    /// clients each.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn new(num_edges: usize, clients_per_edge: usize) -> Self {
        assert!(num_edges > 0, "need at least one edge server");
        assert!(clients_per_edge > 0, "need at least one client per edge");
        Self {
            num_edges,
            clients_per_edge,
        }
    }

    /// Number of edge areas `N_E`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Clients per edge area `N_0`.
    pub fn clients_per_edge(&self) -> usize {
        self.clients_per_edge
    }

    /// Total number of clients `N = N_0 · N_E`.
    pub fn total_clients(&self) -> usize {
        self.num_edges * self.clients_per_edge
    }

    /// The edge server a client is associated with.
    ///
    /// # Panics
    /// Panics if the client id is out of range.
    pub fn edge_of(&self, client: ClientId) -> EdgeId {
        assert!(
            client < self.total_clients(),
            "client {client} out of range"
        );
        client / self.clients_per_edge
    }

    /// Global client id of the `idx`-th client of an edge.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn client_id(&self, edge: EdgeId, idx: usize) -> ClientId {
        assert!(edge < self.num_edges, "edge {edge} out of range");
        assert!(
            idx < self.clients_per_edge,
            "client index {idx} out of range"
        );
        edge * self.clients_per_edge + idx
    }

    /// Iterator over the global client ids of an edge area.
    ///
    /// # Panics
    /// Panics if the edge id is out of range.
    pub fn clients_of(&self, edge: EdgeId) -> impl Iterator<Item = ClientId> + '_ {
        assert!(edge < self.num_edges, "edge {edge} out of range");
        let start = edge * self.clients_per_edge;
        start..start + self.clients_per_edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let t = Topology::new(10, 3);
        assert_eq!(t.num_edges(), 10);
        assert_eq!(t.clients_per_edge(), 3);
        assert_eq!(t.total_clients(), 30);
    }

    #[test]
    fn edge_of_inverts_client_id() {
        let t = Topology::new(4, 5);
        for e in 0..4 {
            for i in 0..5 {
                let c = t.client_id(e, i);
                assert_eq!(t.edge_of(c), e);
            }
        }
    }

    #[test]
    fn clients_of_is_contiguous_and_disjoint() {
        let t = Topology::new(3, 4);
        let mut all: Vec<ClientId> = Vec::new();
        for e in 0..3 {
            all.extend(t.clients_of(e));
        }
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_client_panics() {
        Topology::new(2, 2).edge_of(4);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_edges_panics() {
        Topology::new(0, 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `edge_of` inverts `client_id` for every in-range pair, and
            /// the result indexes a real edge.
            #[test]
            fn edge_of_client_id_round_trip(
                ne in 1usize..64,
                n0 in 1usize..64,
                e_pick in 0usize..64,
                i_pick in 0usize..64,
            ) {
                let t = Topology::new(ne, n0);
                let e = e_pick % ne;
                let i = i_pick % n0;
                let gid = t.client_id(e, i);
                prop_assert!(gid < t.total_clients());
                prop_assert_eq!(t.edge_of(gid), e);
                // And the inverse direction: gid decomposes back.
                prop_assert_eq!(gid / n0, e);
                prop_assert_eq!(gid % n0, i);
            }

            /// `clients_of` enumerates exactly the ids whose `edge_of`
            /// maps back, contiguously, and the edges partition `0..N`.
            #[test]
            fn clients_of_partitions_the_id_space(
                ne in 1usize..32,
                n0 in 1usize..32,
            ) {
                let t = Topology::new(ne, n0);
                let mut all = Vec::new();
                for e in 0..ne {
                    let ids: Vec<ClientId> = t.clients_of(e).collect();
                    prop_assert_eq!(ids.len(), n0);
                    for &gid in &ids {
                        prop_assert_eq!(t.edge_of(gid), e);
                    }
                    all.extend(ids);
                }
                prop_assert_eq!(all, (0..t.total_clients()).collect::<Vec<_>>());
            }

            /// Out-of-range lookups panic rather than aliasing a
            /// neighbouring edge or client.
            #[test]
            fn out_of_range_lookups_panic(
                ne in 1usize..16,
                n0 in 1usize..16,
                past in 0usize..8,
            ) {
                let t = Topology::new(ne, n0);
                prop_assert!(std::panic::catch_unwind(|| {
                    t.edge_of(t.total_clients() + past)
                }).is_err());
                prop_assert!(std::panic::catch_unwind(|| {
                    t.client_id(ne + past, 0)
                }).is_err());
                prop_assert!(std::panic::catch_unwind(|| {
                    t.client_id(0, n0 + past)
                }).is_err());
                prop_assert!(std::panic::catch_unwind(|| {
                    t.clients_of(ne + past).count()
                }).is_err());
            }
        }
    }
}
