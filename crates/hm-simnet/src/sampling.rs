//! Partial-participation samplers.
//!
//! HierMinimax samples edges two different ways each round (Algorithm 1):
//!
//! - **Phase 1** (`E^(k)`): `m_E` edges drawn i.i.d. proportionally to the
//!   current weights `p^(k)` (with replacement, as in DRFA — this is what
//!   makes the averaged model an unbiased estimate of the `p`-mixture).
//! - **Phase 2** (`U^(k)`): `m_E` edges drawn *uniformly without
//!   replacement*; the importance weight `N_E/m_E` in the loss-gradient
//!   estimator `v` (eq. after Alg. 1) is exactly the inverse inclusion
//!   probability `m_E/N_E`, which makes `v` unbiased.

use hm_data::StreamRng;

/// Sample `m` edge indices i.i.d. proportional to `p` (with replacement).
///
/// # Panics
/// Panics if `p` is empty, has negative entries, or sums to ≤ 0.
pub fn sample_edges_weighted(p: &[f64], m: usize, rng: &mut StreamRng) -> Vec<usize> {
    assert!(!p.is_empty(), "empty weight vector");
    assert!(p.iter().all(|&w| w >= 0.0), "negative weight");
    rng.sample_weighted_with_replacement(p, m)
}

/// Sample `m` distinct edges uniformly from `0..n` (without replacement).
///
/// # Panics
/// Panics if `m > n`.
pub fn sample_edges_uniform(n: usize, m: usize, rng: &mut StreamRng) -> Vec<usize> {
    rng.sample_without_replacement(n, m)
}

/// Sample the checkpoint index `(c1, c2)` uniformly from `[τ1] × [τ2]`
/// (0-based: `c1 ∈ {0..τ1−1}`, `c2 ∈ {0..τ2−1}`).
///
/// The returned pair addresses "the model after `c1` further local steps
/// within the `c2`-th aggregation block", so `(0, 0)` is the round's
/// starting model and sampling covers all `τ1·τ2` intermediate models with
/// equal probability — the property the Phase-2 gradient estimator's
/// unbiasedness over time slots rests on (Appendix A).
///
/// # Panics
/// Panics if either period is zero.
pub fn sample_checkpoint(tau1: usize, tau2: usize, rng: &mut StreamRng) -> (usize, usize) {
    assert!(tau1 > 0 && tau2 > 0, "checkpoint periods must be positive");
    (rng.below(tau1), rng.below(tau2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::rng::Purpose;

    #[test]
    fn weighted_matches_distribution() {
        let p = [0.1, 0.2, 0.3, 0.4];
        let mut rng = StreamRng::new(1, Purpose::EdgeSampling, 0, 0);
        let mut counts = [0usize; 4];
        let n = 100_000;
        for idx in sample_edges_weighted(&p, n, &mut rng) {
            counts[idx] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - p[i]).abs() < 0.01,
                "edge {i}: freq {freq} vs {}",
                p[i]
            );
        }
    }

    #[test]
    fn weighted_allows_duplicates() {
        // A point mass must produce all-duplicates.
        let p = [0.0, 1.0, 0.0];
        let mut rng = StreamRng::new(2, Purpose::EdgeSampling, 0, 0);
        let s = sample_edges_weighted(&p, 5, &mut rng);
        assert_eq!(s, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn point_mass_on_boundary_edges() {
        // Degenerate weights at the first and last index exercise the
        // inverse-CDF fallback paths (rounding can push the scan past the
        // last positive weight).
        for (p, want) in [
            (vec![1.0, 0.0, 0.0, 0.0], 0usize),
            (vec![0.0, 0.0, 0.0, 1.0], 3usize),
        ] {
            let mut rng = StreamRng::new(6, Purpose::EdgeSampling, 0, 0);
            let s = sample_edges_weighted(&p, 64, &mut rng);
            assert!(s.iter().all(|&e| e == want), "{p:?} -> {s:?}");
        }
    }

    #[test]
    fn zero_weight_entries_are_never_sampled() {
        let p = [0.5, 0.0, 0.25, 0.0, 0.25];
        let mut rng = StreamRng::new(7, Purpose::EdgeSampling, 0, 0);
        let s = sample_edges_weighted(&p, 10_000, &mut rng);
        assert!(s.iter().all(|&e| p[e] > 0.0), "zero-weight edge sampled");
        // All positive-weight edges show up over a large sample.
        for e in [0usize, 2, 4] {
            assert!(s.contains(&e), "edge {e} never sampled");
        }
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn negative_weight_panics() {
        let mut rng = StreamRng::new(8, Purpose::EdgeSampling, 0, 0);
        let _ = sample_edges_weighted(&[0.5, -0.1], 1, &mut rng);
    }

    #[test]
    fn uniform_inclusion_probability() {
        // Every edge should appear with probability m/n.
        let (n, m) = (10usize, 4usize);
        let trials = 20_000;
        let mut counts = vec![0usize; n];
        for t in 0..trials {
            let mut rng = StreamRng::new(3, Purpose::LossEstSampling, t as u64, 0);
            for idx in sample_edges_uniform(n, m, &mut rng) {
                counts[idx] += 1;
            }
        }
        let expect = m as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!((freq - expect).abs() < 0.02, "edge {i}: {freq} vs {expect}");
        }
    }

    #[test]
    fn uniform_is_without_replacement() {
        let mut rng = StreamRng::new(4, Purpose::LossEstSampling, 0, 0);
        for _ in 0..100 {
            let mut s = sample_edges_uniform(6, 6, &mut rng);
            s.sort_unstable();
            assert_eq!(s, (0..6).collect::<Vec<_>>());
        }
    }

    #[test]
    fn checkpoint_is_uniform_over_grid() {
        let (t1, t2) = (3usize, 4usize);
        let mut counts = vec![0usize; t1 * t2];
        let trials = 60_000;
        for t in 0..trials {
            let mut rng = StreamRng::new(5, Purpose::Checkpoint, t as u64, 0);
            let (c1, c2) = sample_checkpoint(t1, t2, &mut rng);
            assert!(c1 < t1 && c2 < t2);
            counts[c2 * t1 + c1] += 1;
        }
        let expect = trials as f64 / (t1 * t2) as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.1, "{counts:?}");
        }
    }

    #[test]
    fn checkpoint_with_unit_periods_is_pinned() {
        // τ = 1 leaves a single legal value on that axis; the draw must be
        // exactly 0, never 1 (an off-by-one here would index past the
        // block/step arrays).
        for t in 0..200u64 {
            let mut rng = StreamRng::new(9, Purpose::Checkpoint, t, 0);
            let (c1, c2) = sample_checkpoint(1, 1, &mut rng);
            assert_eq!((c1, c2), (0, 0));
            let mut rng = StreamRng::new(10, Purpose::Checkpoint, t, 0);
            let (c1, c2) = sample_checkpoint(1, 5, &mut rng);
            assert_eq!(c1, 0);
            assert!(c2 < 5);
            let mut rng = StreamRng::new(11, Purpose::Checkpoint, t, 0);
            let (c1, c2) = sample_checkpoint(5, 1, &mut rng);
            assert!(c1 < 5);
            assert_eq!(c2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tau_panics() {
        let mut rng = StreamRng::new(0, Purpose::Checkpoint, 0, 0);
        let _ = sample_checkpoint(0, 1, &mut rng);
    }
}
