//! Stochastic model quantization — the Hier-Local-QSGD extension.
//!
//! The paper's companion work (Liu et al., *Hierarchical Federated Learning
//! with Quantization*, IEEE TWC 2023 — reference \[22\]) extends HierFAVG
//! with quantized model uploads. This module provides the same capability
//! for every algorithm here: an unbiased stochastic uniform quantizer in
//! the QSGD family, plus the wire-cost model the communication meters use.
//!
//! Quantization of `v`: transmit `scale = max|v_i|` at full precision and,
//! per coordinate, a sign and a level `l ∈ {0..s}` with `s = 2^bits − 1`,
//! where `l` is `|v_i|/scale·s` stochastically rounded so that
//! `E[dequantized] = v` (unbiasedness is what keeps SGD convergent).

use crate::comm::CommMeter;
use crate::Link;
use hm_data::StreamRng;

/// Message codec for model uploads.
///
/// ```
/// use hm_data::rng::{Purpose, StreamRng};
/// use hm_simnet::Quantizer;
///
/// let q = Quantizer::Stochastic { bits: 8 };
/// let mut v = vec![0.5_f32, -0.125, 0.75];
/// let mut rng = StreamRng::new(1, Purpose::Quantize, 0, 0);
/// q.apply(&mut v, &mut rng);
/// // On-wire cost shrinks ~3.5x vs f32 at 8 bits:
/// assert!(q.wire_floats(10_000) < 10_000 / 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Quantizer {
    /// Full-precision floats (the base algorithms).
    #[default]
    Exact,
    /// Unbiased stochastic uniform quantization at `bits` bits per
    /// coordinate (1 ≤ bits ≤ 16), plus one full-precision scale.
    Stochastic {
        /// Bits per coordinate on the wire.
        bits: u8,
    },
}

impl Quantizer {
    fn validate_bits(bits: u8) {
        assert!((1..=16).contains(&bits), "bits must lie in 1..=16");
    }

    /// Equivalent float32 count for transmitting `d` coordinates (the unit
    /// the communication meters count).
    ///
    /// # Panics
    /// Panics if `bits` is 0 or above 16 (same contract as
    /// [`Quantizer::apply`], so a misconfigured codec cannot silently meter
    /// a cost it could never encode).
    pub fn wire_floats(&self, d: usize) -> u64 {
        match *self {
            Quantizer::Exact => d as u64,
            Quantizer::Stochastic { bits } => {
                Self::validate_bits(bits);
                // sign+level bits per coordinate, rounded up to whole
                // f32-equivalents, plus the scale.
                let payload_bits = d as u64 * (u64::from(bits) + 1);
                payload_bits.div_ceil(32) + 1
            }
        }
    }

    /// Apply the codec in place (no-op for [`Quantizer::Exact`]), using
    /// `rng` for the stochastic rounding.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or above 16.
    pub fn apply(&self, v: &mut [f32], rng: &mut StreamRng) {
        match *self {
            Quantizer::Exact => {}
            Quantizer::Stochastic { bits } => {
                Self::validate_bits(bits);
                let scale = v.iter().map(|x| x.abs()).fold(0.0_f32, f32::max);
                if scale == 0.0 {
                    return;
                }
                let s = ((1u32 << bits) - 1) as f32;
                // The normalized position u and its fraction must be
                // computed in f64: at bits = 16, u approaches 65535 where
                // f32 spacing is ~2⁻⁷, so an f32 `u - floor(u)` is itself
                // quantized and the codec becomes measurably biased.
                let s64 = f64::from(s);
                let scale64 = f64::from(scale);
                for x in v.iter_mut() {
                    let sign = x.signum();
                    let u = f64::from(x.abs()) / scale64 * s64;
                    let lo = u.floor();
                    // Round up with probability equal to the fraction, so
                    // the expectation equals u.
                    let frac = u - lo;
                    let level = if rng.uniform() < frac { lo + 1.0 } else { lo };
                    *x = sign * (level as f32 / s) * scale;
                }
            }
        }
    }

    /// Record a quantized gather on a meter (uplink of `senders` messages
    /// of `d` logical coordinates each).
    pub fn record_gather(&self, meter: &CommMeter, link: Link, d: usize, senders: u64) {
        meter.record_gather(link, self.wire_floats(d), senders);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::rng::{Purpose, StreamKey};

    #[test]
    fn exact_is_identity_and_full_cost() {
        let q = Quantizer::Exact;
        let mut v = vec![0.5, -0.25, 1.0];
        let orig = v.clone();
        let mut rng = StreamRng::new(1, Purpose::Misc, 0, 0);
        q.apply(&mut v, &mut rng);
        assert_eq!(v, orig);
        assert_eq!(q.wire_floats(1000), 1000);
    }

    #[test]
    fn wire_cost_shrinks_with_bits() {
        let d = 10_000;
        let full = Quantizer::Exact.wire_floats(d);
        let q8 = Quantizer::Stochastic { bits: 8 }.wire_floats(d);
        let q4 = Quantizer::Stochastic { bits: 4 }.wire_floats(d);
        let q1 = Quantizer::Stochastic { bits: 1 }.wire_floats(d);
        assert!(full > q8 && q8 > q4 && q4 > q1);
        // 8-bit: (8+1 bits)/32 per coordinate ≈ 0.28 floats.
        assert_eq!(q8, (d as u64 * 9).div_ceil(32) + 1);
    }

    #[test]
    fn quantized_values_are_on_the_grid() {
        let q = Quantizer::Stochastic { bits: 2 }; // levels 0..3
        let mut v: Vec<f32> = vec![0.9, -0.5, 0.1, 0.3333];
        let mut rng = StreamRng::new(2, Purpose::Misc, 0, 0);
        q.apply(&mut v, &mut rng);
        let scale = 0.9_f32;
        for &x in &v {
            let level = (x.abs() / scale) * 3.0;
            assert!(
                (level - level.round()).abs() < 1e-5,
                "{x} is not on the 2-bit grid"
            );
        }
    }

    #[test]
    fn quantization_is_unbiased() {
        let q = Quantizer::Stochastic { bits: 3 };
        let orig = [0.77_f32, -0.31, 0.05, 0.5];
        let trials = 30_000;
        let mut sums = [0.0_f64; 4];
        for t in 0..trials {
            let mut v = orig.to_vec();
            let mut rng = StreamRng::for_key(StreamKey::new(t, Purpose::Misc, 0, 0));
            q.apply(&mut v, &mut rng);
            for (s, &x) in sums.iter_mut().zip(&v) {
                *s += f64::from(x);
            }
        }
        for (i, &s) in sums.iter().enumerate() {
            let mean = s / trials as f64;
            assert!(
                (mean - f64::from(orig[i])).abs() < 0.005,
                "coordinate {i}: mean {mean} vs {}",
                orig[i]
            );
        }
    }

    #[test]
    fn error_bounded_by_one_level() {
        let q = Quantizer::Stochastic { bits: 4 }; // 15 levels
        let orig: Vec<f32> = (0..100).map(|i| (i as f32 / 50.0) - 1.0).collect();
        let mut v = orig.clone();
        let mut rng = StreamRng::new(3, Purpose::Misc, 0, 0);
        q.apply(&mut v, &mut rng);
        let scale = 1.0_f32; // max |orig| = 1.0 (within fp rounding: 1.0 or 0.98)
        let step = scale / 15.0 + 1e-6;
        for (a, b) in orig.iter().zip(&v) {
            assert!(
                (a - b).abs() <= step,
                "error {} exceeds one level",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn zero_vector_is_fixed_point() {
        let q = Quantizer::Stochastic { bits: 4 };
        let mut v = vec![0.0_f32; 8];
        let mut rng = StreamRng::new(4, Purpose::Misc, 0, 0);
        q.apply(&mut v, &mut rng);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn quantization_is_unbiased_at_16_bits() {
        // Regression for the f32-fraction bug: at bits = 16 the normalized
        // position u approaches 65535, where f32 spacing exceeds the
        // fraction's resolution; computing the rounding probability in f32
        // biased the codec. With f64 arithmetic the mean must match.
        let q = Quantizer::Stochastic { bits: 16 };
        let orig = [0.762_939_45_f32, -0.31, 0.05, 1.0];
        let trials = 30_000;
        let mut sums = [0.0_f64; 4];
        for t in 0..trials {
            let mut v = orig.to_vec();
            let mut rng = StreamRng::for_key(StreamKey::new(t, Purpose::Misc, 1, 0));
            q.apply(&mut v, &mut rng);
            for (s, &x) in sums.iter_mut().zip(&v) {
                *s += f64::from(x);
            }
        }
        // One 16-bit level is ~1.5e-5; the empirical mean over 30k trials
        // must land well inside one level of the input.
        for (i, &s) in sums.iter().enumerate() {
            let mean = s / trials as f64;
            assert!(
                (mean - f64::from(orig[i])).abs() < 1e-5,
                "coordinate {i}: mean {mean} vs {}",
                orig[i]
            );
        }
    }

    #[test]
    fn high_bit_fraction_survives_f32_collapse() {
        // At bits = 16 and u ≈ 50000, f32 spacing is 2⁻⁸, so any true
        // fraction below half a ULP (~2⁻⁹) collapses to exactly 0 in the
        // old f32 computation — the codec then *never* rounds that
        // coordinate up, even though the true rate is ~2⁻⁹. Find such an
        // input and assert the f64 codec still rounds up at the true rate.
        let s32 = ((1u32 << 16) - 1) as f32;
        let s64 = f64::from(s32);
        let mut found = None;
        'search: for k in 50_000..50_200u32 {
            for j in 1..20 {
                let x = ((f64::from(k) + f64::from(j) * 1e-4) / s64) as f32;
                let f32_frac = {
                    let u = x * s32; // the old code path
                    f64::from(u - u.floor())
                };
                let u = f64::from(x) * s64; // exact: 24-bit × 16-bit mantissas
                let f64_frac = u - u.floor();
                if f32_frac == 0.0 && (1e-3..1.95e-3).contains(&f64_frac) {
                    found = Some((x, u.floor(), f64_frac));
                    break 'search;
                }
            }
        }
        let (x, lo, frac) = found.expect("an f32-collapse example exists in 50000..50200");

        let q = Quantizer::Stochastic { bits: 16 };
        let trials = 30_000;
        let mut ups = 0usize;
        for t in 0..trials {
            // 1.0 pins the scale so x itself is the normalized value.
            let mut v = vec![x, 1.0];
            let mut rng = StreamRng::for_key(StreamKey::new(t, Purpose::Misc, 2, 0));
            q.apply(&mut v, &mut rng);
            let level = f64::from(v[0]) * s64;
            if level > lo + 0.5 {
                ups += 1;
            }
        }
        // Expectation ≈ trials·frac ≥ 30; the old code gives exactly 0.
        assert!(
            ups >= 5,
            "expected ~{:.0} round-ups at true fraction {frac}, got {ups}",
            trials as f64 * frac
        );
        let rate = ups as f64 / trials as f64;
        assert!(
            rate < frac * 3.0,
            "round-up rate {rate} far above the true fraction {frac}"
        );
    }

    #[test]
    #[should_panic(expected = "bits must lie in 1..=16")]
    fn zero_bits_panics() {
        let q = Quantizer::Stochastic { bits: 0 };
        let mut v = vec![1.0_f32];
        let mut rng = StreamRng::new(5, Purpose::Misc, 0, 0);
        q.apply(&mut v, &mut rng);
    }

    #[test]
    #[should_panic(expected = "bits must lie in 1..=16")]
    fn seventeen_bits_panics() {
        let q = Quantizer::Stochastic { bits: 17 };
        let mut v = vec![1.0_f32];
        let mut rng = StreamRng::new(5, Purpose::Misc, 0, 0);
        q.apply(&mut v, &mut rng);
    }

    #[test]
    #[should_panic(expected = "bits must lie in 1..=16")]
    fn wire_floats_rejects_zero_bits() {
        // Regression: wire_floats used to accept configurations that
        // apply() panics on, silently metering an unencodable codec.
        let _ = Quantizer::Stochastic { bits: 0 }.wire_floats(100);
    }

    #[test]
    #[should_panic(expected = "bits must lie in 1..=16")]
    fn wire_floats_rejects_oversized_bits() {
        let _ = Quantizer::Stochastic { bits: 17 }.wire_floats(100);
    }
}
