//! Communication metering.
//!
//! Every model broadcast, model upload, and scalar loss report in an
//! algorithm run is recorded here, per link type. Two aggregates matter for
//! the paper:
//!
//! - **cloud rounds** — synchronisation rounds on links that terminate at
//!   the cloud (`EdgeCloud` for hierarchical methods, `ClientCloud` for
//!   two-layer ones). This is the x-axis of Figs. 3–4 and the quantity
//!   Theorems 1–2 bound as `Θ(T^{1−α})`: cloud connectivity is the scarce
//!   resource in the client-edge-cloud motivation (§1), while client-edge
//!   links are cheap and local.
//! - **floats transferred** — a bandwidth-level measure used by the
//!   tradeoff bench and reported alongside rounds in EXPERIMENTS.md.
//!
//! A [`CommMeter`] is the shared, thread-safe recorder (atomic counters, so
//! rayon-parallel client work can meter without locks); [`CommStats`] is a
//! plain snapshot for history recording and assertions.

use std::sync::atomic::{AtomicU64, Ordering};

/// The three link types of the hierarchy. Two-layer baselines use
/// `ClientCloud`; hierarchical methods use `ClientEdge` + `EdgeCloud`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Link {
    /// Client ↔ edge server (cheap, local).
    ClientEdge,
    /// Edge server ↔ cloud (expensive, scarce).
    EdgeCloud,
    /// Client ↔ cloud directly (two-layer architectures).
    ClientCloud,
}

impl Link {
    const COUNT: usize = 3;

    fn idx(self) -> usize {
        match self {
            Link::ClientEdge => 0,
            Link::EdgeCloud => 1,
            Link::ClientCloud => 2,
        }
    }

    /// All link types, in index order.
    pub fn all() -> [Link; 3] {
        [Link::ClientEdge, Link::EdgeCloud, Link::ClientCloud]
    }
}

/// Immutable snapshot of communication counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommStats {
    uplink_floats: [u64; Link::COUNT],
    downlink_floats: [u64; Link::COUNT],
    uplink_msgs: [u64; Link::COUNT],
    downlink_msgs: [u64; Link::COUNT],
    rounds: [u64; Link::COUNT],
}

impl CommStats {
    /// Floats sent towards the hub on a link.
    pub fn uplink_floats(&self, link: Link) -> u64 {
        self.uplink_floats[link.idx()]
    }

    /// Floats sent away from the hub on a link.
    pub fn downlink_floats(&self, link: Link) -> u64 {
        self.downlink_floats[link.idx()]
    }

    /// Uplink message count on a link.
    pub fn uplink_msgs(&self, link: Link) -> u64 {
        self.uplink_msgs[link.idx()]
    }

    /// Downlink message count on a link.
    pub fn downlink_msgs(&self, link: Link) -> u64 {
        self.downlink_msgs[link.idx()]
    }

    /// Synchronisation rounds recorded on a link.
    pub fn rounds(&self, link: Link) -> u64 {
        self.rounds[link.idx()]
    }

    /// Rounds on cloud-terminating links (`EdgeCloud + ClientCloud`) — the
    /// paper's "communication rounds" axis.
    pub fn cloud_rounds(&self) -> u64 {
        self.rounds(Link::EdgeCloud) + self.rounds(Link::ClientCloud)
    }

    /// Total rounds on every link.
    pub fn total_rounds(&self) -> u64 {
        self.rounds.iter().sum()
    }

    /// Total floats moved in either direction over all links.
    pub fn total_floats(&self) -> u64 {
        self.uplink_floats.iter().sum::<u64>() + self.downlink_floats.iter().sum::<u64>()
    }

    /// Floats moved on cloud-terminating links only.
    pub fn cloud_floats(&self) -> u64 {
        let e = Link::EdgeCloud.idx();
        let c = Link::ClientCloud.idx();
        self.uplink_floats[e]
            + self.downlink_floats[e]
            + self.uplink_floats[c]
            + self.downlink_floats[c]
    }

    /// Decompose into the five raw counter arrays, ordered
    /// `[uplink_floats, downlink_floats, uplink_msgs, downlink_msgs,
    /// rounds]` with [`Link::idx`] ordering inside each. The inverse of
    /// [`CommStats::from_parts`]; used by `hm-checkpoint` to serialise a
    /// snapshot without exposing the private fields.
    pub fn parts(&self) -> [[u64; Link::COUNT]; 5] {
        [
            self.uplink_floats,
            self.downlink_floats,
            self.uplink_msgs,
            self.downlink_msgs,
            self.rounds,
        ]
    }

    /// Rebuild a snapshot from [`CommStats::parts`].
    pub fn from_parts(parts: [[u64; Link::COUNT]; 5]) -> Self {
        CommStats {
            uplink_floats: parts[0],
            downlink_floats: parts[1],
            uplink_msgs: parts[2],
            downlink_msgs: parts[3],
            rounds: parts[4],
        }
    }

    /// Counter-wise difference `self − earlier` (for per-round deltas).
    ///
    /// # Panics
    /// Panics if any counter of `earlier` exceeds the corresponding one
    /// here (snapshots must be ordered).
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        let sub = |a: &[u64; 3], b: &[u64; 3]| -> [u64; 3] {
            [
                a[0].checked_sub(b[0]).expect("snapshot order"),
                a[1].checked_sub(b[1]).expect("snapshot order"),
                a[2].checked_sub(b[2]).expect("snapshot order"),
            ]
        };
        CommStats {
            uplink_floats: sub(&self.uplink_floats, &earlier.uplink_floats),
            downlink_floats: sub(&self.downlink_floats, &earlier.downlink_floats),
            uplink_msgs: sub(&self.uplink_msgs, &earlier.uplink_msgs),
            downlink_msgs: sub(&self.downlink_msgs, &earlier.downlink_msgs),
            rounds: sub(&self.rounds, &earlier.rounds),
        }
    }
}

/// Thread-safe communication recorder.
///
/// Counters are relaxed atomics: totals are exact because every increment
/// is independent (no cross-counter invariants are read mid-run), and
/// snapshots are taken only at round boundaries when client work has been
/// joined.
#[derive(Debug, Default)]
pub struct CommMeter {
    uplink_floats: [AtomicU64; Link::COUNT],
    downlink_floats: [AtomicU64; Link::COUNT],
    uplink_msgs: [AtomicU64; Link::COUNT],
    downlink_msgs: [AtomicU64; Link::COUNT],
    rounds: [AtomicU64; Link::COUNT],
}

impl CommMeter {
    /// New meter with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one uplink message of `floats` payload on a link.
    pub fn record_uplink(&self, link: Link, floats: u64) {
        self.uplink_floats[link.idx()].fetch_add(floats, Ordering::Relaxed);
        self.uplink_msgs[link.idx()].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one downlink message of `floats` payload on a link.
    pub fn record_downlink(&self, link: Link, floats: u64) {
        self.downlink_floats[link.idx()].fetch_add(floats, Ordering::Relaxed);
        self.downlink_msgs[link.idx()].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a broadcast: one downlink message to each of `recipients`.
    pub fn record_broadcast(&self, link: Link, floats_each: u64, recipients: u64) {
        self.downlink_floats[link.idx()].fetch_add(floats_each * recipients, Ordering::Relaxed);
        self.downlink_msgs[link.idx()].fetch_add(recipients, Ordering::Relaxed);
    }

    /// Record a gather: one uplink message from each of `senders`.
    pub fn record_gather(&self, link: Link, floats_each: u64, senders: u64) {
        self.uplink_floats[link.idx()].fetch_add(floats_each * senders, Ordering::Relaxed);
        self.uplink_msgs[link.idx()].fetch_add(senders, Ordering::Relaxed);
    }

    /// Record one synchronisation round on a link.
    pub fn record_round(&self, link: Link) {
        self.rounds[link.idx()].fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` synchronisation rounds at once — for callers that know
    /// the round count in closed form (e.g. `τ2` aggregation blocks) and
    /// want one atomic update instead of `n`. Equivalent to calling
    /// [`CommMeter::record_round`] `n` times.
    pub fn record_rounds(&self, link: Link, n: u64) {
        self.rounds[link.idx()].fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite every counter with the values of a [`CommStats`]
    /// snapshot. Used when resuming a checkpointed run: the fresh meter is
    /// fast-forwarded to the totals the interrupted run had accumulated, so
    /// subsequent deltas and final totals are bit-identical to an
    /// uninterrupted run.
    ///
    /// Callers must ensure no concurrent recording is in flight (resume
    /// happens before any client work is spawned).
    pub fn restore(&self, stats: &CommStats) {
        let parts = stats.parts();
        let arrays = [
            &self.uplink_floats,
            &self.downlink_floats,
            &self.uplink_msgs,
            &self.downlink_msgs,
            &self.rounds,
        ];
        for (dst, src) in arrays.iter().zip(&parts) {
            for (d, &s) in dst.iter().zip(src) {
                d.store(s, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> CommStats {
        let read = |a: &[AtomicU64; 3]| -> [u64; 3] {
            [
                a[0].load(Ordering::Relaxed),
                a[1].load(Ordering::Relaxed),
                a[2].load(Ordering::Relaxed),
            ]
        };
        CommStats {
            uplink_floats: read(&self.uplink_floats),
            downlink_floats: read(&self.downlink_floats),
            uplink_msgs: read(&self.uplink_msgs),
            downlink_msgs: read(&self.downlink_msgs),
            rounds: read(&self.rounds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Abstract operations for the model-based meter test.
    #[derive(Debug, Clone)]
    enum Op {
        Up(Link, u64),
        Down(Link, u64),
        Broadcast(Link, u64, u64),
        Gather(Link, u64, u64),
        Round(Link),
    }

    fn arb_link() -> impl Strategy<Value = Link> {
        prop_oneof![
            Just(Link::ClientEdge),
            Just(Link::EdgeCloud),
            Just(Link::ClientCloud)
        ]
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (arb_link(), 0u64..1000).prop_map(|(l, f)| Op::Up(l, f)),
            (arb_link(), 0u64..1000).prop_map(|(l, f)| Op::Down(l, f)),
            (arb_link(), 0u64..100, 0u64..20).prop_map(|(l, f, r)| Op::Broadcast(l, f, r)),
            (arb_link(), 0u64..100, 0u64..20).prop_map(|(l, f, r)| Op::Gather(l, f, r)),
            arb_link().prop_map(Op::Round),
        ]
    }

    proptest! {
        /// Model-based check: the atomic meter agrees with a plain
        /// sequential model over arbitrary operation sequences.
        #[test]
        fn prop_meter_matches_reference_model(ops in prop::collection::vec(arb_op(), 0..64)) {
            let meter = CommMeter::new();
            let mut up = [0u64; 3];
            let mut down = [0u64; 3];
            let mut up_msgs = [0u64; 3];
            let mut down_msgs = [0u64; 3];
            let mut rounds = [0u64; 3];
            for op in &ops {
                match *op {
                    Op::Up(l, f) => {
                        meter.record_uplink(l, f);
                        up[l.idx()] += f;
                        up_msgs[l.idx()] += 1;
                    }
                    Op::Down(l, f) => {
                        meter.record_downlink(l, f);
                        down[l.idx()] += f;
                        down_msgs[l.idx()] += 1;
                    }
                    Op::Broadcast(l, f, r) => {
                        meter.record_broadcast(l, f, r);
                        down[l.idx()] += f * r;
                        down_msgs[l.idx()] += r;
                    }
                    Op::Gather(l, f, r) => {
                        meter.record_gather(l, f, r);
                        up[l.idx()] += f * r;
                        up_msgs[l.idx()] += r;
                    }
                    Op::Round(l) => {
                        meter.record_round(l);
                        rounds[l.idx()] += 1;
                    }
                }
            }
            let s = meter.snapshot();
            for link in Link::all() {
                let i = link.idx();
                prop_assert_eq!(s.uplink_floats(link), up[i]);
                prop_assert_eq!(s.downlink_floats(link), down[i]);
                prop_assert_eq!(s.uplink_msgs(link), up_msgs[i]);
                prop_assert_eq!(s.downlink_msgs(link), down_msgs[i]);
                prop_assert_eq!(s.rounds(link), rounds[i]);
            }
            prop_assert_eq!(s.total_rounds(), rounds.iter().sum::<u64>());
            prop_assert_eq!(
                s.cloud_rounds(),
                rounds[Link::EdgeCloud.idx()] + rounds[Link::ClientCloud.idx()]
            );
        }
    }

    #[test]
    fn fresh_meter_is_zero() {
        let m = CommMeter::new();
        let s = m.snapshot();
        assert_eq!(s.total_floats(), 0);
        assert_eq!(s.total_rounds(), 0);
        assert_eq!(s.cloud_rounds(), 0);
    }

    #[test]
    fn broadcast_and_gather_accounting() {
        let m = CommMeter::new();
        m.record_broadcast(Link::EdgeCloud, 100, 5);
        m.record_gather(Link::EdgeCloud, 100, 5);
        m.record_round(Link::EdgeCloud);
        let s = m.snapshot();
        assert_eq!(s.downlink_floats(Link::EdgeCloud), 500);
        assert_eq!(s.uplink_floats(Link::EdgeCloud), 500);
        assert_eq!(s.downlink_msgs(Link::EdgeCloud), 5);
        assert_eq!(s.uplink_msgs(Link::EdgeCloud), 5);
        assert_eq!(s.rounds(Link::EdgeCloud), 1);
        assert_eq!(s.cloud_rounds(), 1);
        assert_eq!(s.cloud_floats(), 1000);
    }

    #[test]
    fn cloud_rounds_ignore_client_edge() {
        let m = CommMeter::new();
        m.record_round(Link::ClientEdge);
        m.record_round(Link::ClientEdge);
        m.record_round(Link::ClientCloud);
        let s = m.snapshot();
        assert_eq!(s.cloud_rounds(), 1);
        assert_eq!(s.total_rounds(), 3);
    }

    #[test]
    fn since_computes_deltas() {
        let m = CommMeter::new();
        m.record_uplink(Link::ClientEdge, 10);
        let a = m.snapshot();
        m.record_uplink(Link::ClientEdge, 7);
        m.record_round(Link::EdgeCloud);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.uplink_floats(Link::ClientEdge), 7);
        assert_eq!(d.rounds(Link::EdgeCloud), 1);
    }

    #[test]
    #[should_panic(expected = "snapshot order")]
    fn since_rejects_reversed_snapshots() {
        let m = CommMeter::new();
        let a = m.snapshot();
        m.record_uplink(Link::ClientEdge, 1);
        let b = m.snapshot();
        let _ = a.since(&b);
    }

    #[test]
    fn concurrent_metering_is_exact() {
        use std::sync::Arc;
        let m = Arc::new(CommMeter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record_uplink(Link::ClientEdge, 3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.uplink_floats(Link::ClientEdge), 8 * 1000 * 3);
        assert_eq!(s.uplink_msgs(Link::ClientEdge), 8 * 1000);
    }
}
