//! Non-convex stationarity measure: the Moreau-envelope gradient norm of
//! Theorem 2.
//!
//! For non-convex losses the paper measures optimality by
//! `‖∇Φ_λ(w)‖` with `Φ(w) = max_{p∈P} F(w, p)` and the λ-Moreau envelope
//! `Φ_λ(w) = min_x { Φ(x) + ‖x − w‖²/(2λ) }` at `λ = 1/2L` (eq. 9).
//!
//! Two standard facts make this computable:
//! - the envelope gradient is `∇Φ_λ(w) = (w − x̂)/λ` where `x̂` is the
//!   proximal point `argmin_x Φ(x) + ‖x − w‖²/(2λ)`, and
//! - for `P = Δ`, `Φ(x) = max_e f_e(x)`, so a subgradient of `Φ` at `x` is
//!   `∇f_{e*}(x)` for any maximising edge `e*` (Danskin), which lets the
//!   inner problem be solved by (sub)gradient descent.
//!
//! The prox subproblem is strongly convex when `1/λ` dominates the local
//! curvature, so the descent solve is well behaved; like the duality-gap
//! evaluator, the result is an empirical diagnostic, not a certified bound.

use crate::problem::FederatedProblem;
use hm_data::Dataset;
use hm_optim::sgd::projected_sgd_step;
use hm_tensor::vecops;

/// Parameters of the Moreau-envelope gradient estimate.
#[derive(Debug, Clone)]
pub struct MoreauConfig {
    /// Envelope parameter λ (the paper uses `1/2L`; pass your smoothness
    /// estimate).
    pub lambda: f64,
    /// Gradient steps for the prox subproblem.
    pub prox_iters: usize,
    /// Step size for the prox subproblem.
    pub prox_lr: f32,
}

impl Default for MoreauConfig {
    fn default() -> Self {
        Self {
            lambda: 0.05,
            prox_iters: 150,
            prox_lr: 0.02,
        }
    }
}

/// Estimate `‖∇Φ_λ(w)‖ = ‖w − x̂‖ / λ` by solving the prox subproblem with
/// full-batch subgradient descent on `max_e f_e(x) + ‖x − w‖²/(2λ)`.
///
/// # Panics
/// Panics if `lambda <= 0`.
pub fn moreau_grad_norm(problem: &FederatedProblem, w: &[f32], cfg: &MoreauConfig) -> f64 {
    assert!(cfg.lambda > 0.0, "lambda must be positive");
    let edge_data: Vec<Dataset> = (0..problem.num_edges())
        .map(|e| problem.scenario.edges[e].train_concat())
        .collect();
    let model = &problem.model;
    let d = problem.num_params();
    let mut x = w.to_vec();
    let mut grad = vec![0.0_f32; d];
    let mut step = vec![0.0_f32; d];
    let mut ws = hm_nn::Workspace::new();
    let inv_lambda = (1.0 / cfg.lambda) as f32;
    let mut best_obj = f64::INFINITY;
    let mut best_x = x.clone();
    for _ in 0..cfg.prox_iters {
        // Φ subgradient at x: gradient of the max-loss edge (Danskin).
        let losses: Vec<f64> = edge_data.iter().map(|data| model.loss(&x, data)).collect();
        let (e_star, &phi) = losses
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("at least one edge");
        let obj = phi + vecops::dist2_sq(&x, w) / (2.0 * cfg.lambda);
        if obj < best_obj {
            best_obj = obj;
            best_x.copy_from_slice(&x);
        }
        model.loss_grad_ws(&x, &edge_data[e_star], &mut grad, &mut ws);
        // step = ∇f_{e*}(x) + (x − w)/λ
        step.copy_from_slice(&grad);
        for ((s, &xi), &wi) in step.iter_mut().zip(&x).zip(w) {
            *s += inv_lambda * (xi - wi);
        }
        projected_sgd_step(&mut x, &step, cfg.prox_lr, &problem.w_domain);
    }
    vecops::dist2_sq(&best_x, w).sqrt() / cfg.lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::rng::{Purpose, StreamKey, StreamRng};
    use hm_data::scenarios::tiny_problem;

    #[test]
    fn near_minimiser_has_small_norm() {
        // Train a model to (near) optimality on the max-loss objective and
        // verify the envelope gradient norm is small there, and large at a
        // bad point.
        let sc = tiny_problem(3, 2, 41);
        let fp = FederatedProblem::mlp_from_scenario(&sc, &[8]);
        let mut w = fp.model.init_params(&mut StreamRng::for_key(StreamKey::new(
            1,
            Purpose::Init,
            0,
            0,
        )));
        let cfg = MoreauConfig::default();
        let before = moreau_grad_norm(&fp, &w, &cfg);
        // Subgradient descent on max_e f_e directly.
        let mut grad = vec![0.0_f32; fp.num_params()];
        for _ in 0..400 {
            let losses = fp.edge_losses(&w);
            let e_star = losses
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            let data = fp.scenario.edges[e_star].train_concat();
            fp.model.loss_grad(&w, &data, &mut grad);
            hm_tensor::vecops::axpy(-0.05, &grad, &mut w);
        }
        let after = moreau_grad_norm(&fp, &w, &cfg);
        assert!(
            after < before * 0.5,
            "envelope norm did not drop near a minimiser: {before:.4} -> {after:.4}"
        );
    }

    #[test]
    fn scales_with_distance_from_prox_point() {
        // For a fixed problem, the norm should be continuous-ish: two
        // nearby points give similar values.
        let sc = tiny_problem(3, 2, 42);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w0 = vec![0.0_f32; fp.num_params()];
        let mut w1 = w0.clone();
        w1[0] += 1e-3;
        let cfg = MoreauConfig::default();
        let a = moreau_grad_norm(&fp, &w0, &cfg);
        let b = moreau_grad_norm(&fp, &w1, &cfg);
        assert!(
            (a - b).abs() < 0.5 * (a + b).max(1e-6),
            "unstable: {a} vs {b}"
        );
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_panics() {
        let sc = tiny_problem(2, 2, 43);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w = vec![0.0_f32; fp.num_params()];
        let _ = moreau_grad_norm(
            &fp,
            &w,
            &MoreauConfig {
                lambda: 0.0,
                ..Default::default()
            },
        );
    }
}
