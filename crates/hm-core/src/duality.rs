//! Duality-gap estimation for convex problems (Theorem 1's optimality
//! measure):
//!
//! `gap(ŵ, p̂) = max_{p ∈ P} F(ŵ, p) − min_{w ∈ W} F(w, p̂)`.
//!
//! The max term is solved exactly for `P = Δ` (`max_e f_e(ŵ)`) and by
//! projected gradient ascent for general `P` (the objective is linear in
//! `p`, so ascent converges to the boundary). The min term is approximated
//! by full-batch projected gradient descent on the `p̂`-weighted loss,
//! warm-started at `ŵ`. The descent solve only *upper-bounds* the inner
//! minimum, so the reported `gap = primal − dual` can **under-estimate**
//! the true duality gap by the solver's own suboptimality; runs therefore
//! use enough inner iterations that the residual is small relative to the
//! gaps being compared, and cross-`T` comparisons (the Theorem 1 shape)
//! share the same solver budget so the bias cancels.

use crate::problem::FederatedProblem;
use hm_data::Dataset;
use hm_optim::projection::Projection;
use hm_optim::sgd::{projected_ascent_step, projected_sgd_step};
use hm_optim::ProjectionOp;
use hm_tensor::vecops;

/// Parameters of the gap estimation.
#[derive(Debug, Clone)]
pub struct GapConfig {
    /// Full-batch GD iterations for the inner minimisation.
    pub gd_iters: usize,
    /// GD learning rate.
    pub gd_lr: f32,
    /// Ascent iterations for the max over general `P` (unused when
    /// `P = Δ`, which is solved in closed form).
    pub ascent_iters: usize,
    /// Ascent learning rate.
    pub ascent_lr: f32,
}

impl Default for GapConfig {
    fn default() -> Self {
        Self {
            gd_iters: 300,
            gd_lr: 0.5,
            ascent_iters: 200,
            ascent_lr: 0.5,
        }
    }
}

/// The two terms and their difference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualityGap {
    /// `max_{p ∈ P} F(ŵ, p)`.
    pub primal: f64,
    /// Approximation of `min_{w ∈ W} F(w, p̂)` (an upper bound on it).
    pub dual: f64,
    /// `primal − dual`; under-estimates the true gap by the inner
    /// solver's suboptimality (see module docs).
    pub gap: f64,
}

/// Estimate the duality gap of `(w_hat, p_hat)`.
///
/// # Panics
/// Panics if `p_hat` has the wrong length.
pub fn duality_gap(
    problem: &FederatedProblem,
    w_hat: &[f32],
    p_hat: &[f32],
    cfg: &GapConfig,
) -> DualityGap {
    assert_eq!(
        p_hat.len(),
        problem.num_edges(),
        "weight vector length mismatch"
    );
    let losses = problem.edge_losses(w_hat);

    // max over p.
    let primal = match problem.p_domain {
        ProjectionOp::Simplex => losses.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        _ => {
            // Linear objective: projected gradient ascent from uniform.
            let grad: Vec<f32> = losses.iter().map(|&l| l as f32).collect();
            let mut p = problem.initial_p();
            for _ in 0..cfg.ascent_iters {
                projected_ascent_step(&mut p, &grad, cfg.ascent_lr, &problem.p_domain);
            }
            debug_assert!(problem.p_domain.contains(&p, 1e-3));
            losses
                .iter()
                .zip(&p)
                .map(|(&l, &pe)| l * f64::from(pe))
                .sum()
        }
    };

    // min over w: full-batch GD on the p̂-weighted objective.
    let edge_data: Vec<Dataset> = (0..problem.num_edges())
        .map(|e| problem.scenario.edges[e].train_concat())
        .collect();
    let model = &problem.model;
    let d = problem.num_params();
    let mut w = w_hat.to_vec();
    let mut grad = vec![0.0_f32; d];
    let mut weighted_grad = vec![0.0_f32; d];
    let mut ws = hm_nn::Workspace::new();
    let mut best = f64::INFINITY;
    for _ in 0..cfg.gd_iters {
        weighted_grad.iter_mut().for_each(|g| *g = 0.0);
        let mut obj = 0.0_f64;
        for (e, data) in edge_data.iter().enumerate() {
            let pe = f64::from(p_hat[e]);
            if pe == 0.0 {
                continue;
            }
            let loss = model.loss_grad_ws(&w, data, &mut grad, &mut ws);
            obj += pe * loss;
            vecops::axpy(pe as f32, &grad, &mut weighted_grad);
        }
        best = best.min(obj);
        projected_sgd_step(&mut w, &weighted_grad, cfg.gd_lr, &problem.w_domain);
    }
    // Account for the final iterate too.
    let final_obj: f64 = edge_data
        .iter()
        .enumerate()
        .map(|(e, data)| f64::from(p_hat[e]) * model.loss(&w, data))
        .sum();
    let dual = best.min(final_obj);

    DualityGap {
        primal,
        dual,
        gap: primal - dual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;

    #[test]
    fn primal_is_max_edge_loss_on_simplex() {
        let sc = tiny_problem(3, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w = vec![0.05; fp.num_params()];
        let p = fp.initial_p();
        let g = duality_gap(
            &fp,
            &w,
            &p,
            &GapConfig {
                gd_iters: 5,
                ..Default::default()
            },
        );
        let max_loss = fp
            .edge_losses(&w)
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((g.primal - max_loss).abs() < 1e-12);
    }

    #[test]
    fn gap_is_nonnegative_for_convex() {
        let sc = tiny_problem(3, 2, 2);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w = vec![0.0; fp.num_params()];
        let p = fp.initial_p();
        let g = duality_gap(&fp, &w, &p, &GapConfig::default());
        assert!(g.gap >= -1e-9, "gap {g:?}");
        assert!(g.primal >= g.dual - 1e-9);
    }

    #[test]
    fn better_iterates_have_smaller_gap() {
        let sc = tiny_problem(3, 2, 3);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let cfg = GapConfig::default();
        let w0 = vec![0.0; fp.num_params()];
        let p0 = fp.initial_p();
        let g0 = duality_gap(&fp, &w0, &p0, &cfg);
        // Crude training: full-batch GD on the uniform objective shrinks
        // the dual term's distance and the primal max.
        let mut w = w0.clone();
        let mut grad = vec![0.0_f32; fp.num_params()];
        let mut buf = vec![0.0_f32; fp.num_params()];
        for _ in 0..100 {
            buf.iter_mut().for_each(|g| *g = 0.0);
            for e in 0..3 {
                let data = fp.scenario.edges[e].train_concat();
                fp.model.loss_grad(&w, &data, &mut grad);
                vecops::axpy(1.0 / 3.0, &grad, &mut buf);
            }
            vecops::axpy(-0.5, &buf, &mut w);
        }
        let g1 = duality_gap(&fp, &w, &p0, &cfg);
        assert!(
            g1.gap < g0.gap,
            "gap did not shrink: {} -> {}",
            g0.gap,
            g1.gap
        );
    }

    #[test]
    fn capped_simplex_primal_below_full_simplex() {
        let sc = tiny_problem(4, 2, 4);
        let mut fp = FederatedProblem::logistic_from_scenario(&sc);
        let w = vec![0.02; fp.num_params()];
        let p = fp.initial_p();
        let cfg = GapConfig {
            gd_iters: 3,
            ..Default::default()
        };
        let full = duality_gap(&fp, &w, &p, &cfg).primal;
        fp.p_domain = ProjectionOp::CappedSimplex { lo: 0.0, hi: 0.5 };
        let capped = duality_gap(&fp, &w, &p, &cfg).primal;
        // Constraining P can only reduce the max.
        assert!(capped <= full + 1e-6, "capped {capped} full {full}");
        // And must stay at least the uniform mixture.
        let uniform: f64 = fp.edge_losses(&w).iter().sum::<f64>() / 4.0;
        assert!(capped >= uniform - 1e-6);
    }
}
