//! Evaluation metrics: per-edge test accuracy and the fairness statistics
//! of Table 2 (average, worst, variance over edge areas).

use crate::problem::FederatedProblem;
use hm_simnet::Parallelism;

/// Test-accuracy report over edge areas.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Test accuracy per edge area, in `[0, 1]`.
    pub per_edge_accuracy: Vec<f64>,
    /// Unweighted mean over edge areas ("Average" in Table 2).
    pub average: f64,
    /// Minimum over edge areas ("Worst" in Table 2).
    pub worst: f64,
    /// Variance of accuracies *in percentage points squared* — the unit
    /// Table 2 reports (e.g. 21.05 for accuracies around 0.90 ± 4.6pp).
    pub variance_pp: f64,
}

impl EvalReport {
    /// Build a report from per-edge accuracies.
    ///
    /// # Panics
    /// Panics on an empty accuracy vector.
    pub fn from_accuracies(per_edge_accuracy: Vec<f64>) -> Self {
        assert!(!per_edge_accuracy.is_empty(), "no edges to evaluate");
        let n = per_edge_accuracy.len() as f64;
        let average = per_edge_accuracy.iter().sum::<f64>() / n;
        let worst = per_edge_accuracy
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        // Population variance in percentage points (×100).
        let variance_pp = per_edge_accuracy
            .iter()
            .map(|&a| {
                let d = (a - average) * 100.0;
                d * d
            })
            .sum::<f64>()
            / n;
        Self {
            per_edge_accuracy,
            average,
            worst,
            variance_pp,
        }
    }

    /// Mean accuracy of the worst `frac` fraction of edges (e.g. `0.1` for
    /// the "worst 10%" metric the paper uses on the Synthetic dataset,
    /// following Li et al.). At least one edge is always included.
    pub fn worst_fraction(&self, frac: f64) -> f64 {
        assert!((0.0..=1.0).contains(&frac), "fraction out of range");
        let mut sorted = self.per_edge_accuracy.clone();
        sorted.sort_by(f64::total_cmp);
        let k = ((sorted.len() as f64 * frac).ceil() as usize).max(1);
        sorted[..k].iter().sum::<f64>() / k as f64
    }
}

/// Evaluate a model on every edge's test set.
pub fn evaluate(problem: &FederatedProblem, w: &[f32], par: Parallelism) -> EvalReport {
    let model = &problem.model;
    let accs = par.map_indexed(problem.num_edges(), |e| {
        model.accuracy(w, &problem.scenario.edges[e].test)
    });
    EvalReport::from_accuracies(accs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FederatedProblem;
    use hm_data::scenarios::tiny_problem;

    #[test]
    fn report_statistics() {
        let r = EvalReport::from_accuracies(vec![0.9, 0.8, 1.0]);
        assert!((r.average - 0.9).abs() < 1e-12);
        assert_eq!(r.worst, 0.8);
        // pp deviations: 0, -10, +10 → variance (0+100+100)/3.
        assert!((r.variance_pp - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn worst_fraction_selects_bottom() {
        let r = EvalReport::from_accuracies(vec![0.5, 0.9, 0.2, 0.8, 0.1]);
        assert!((r.worst_fraction(0.2) - 0.1).abs() < 1e-12);
        assert!((r.worst_fraction(0.4) - 0.15).abs() < 1e-12);
        assert!((r.worst_fraction(1.0) - 0.5).abs() < 1e-12);
        // Degenerate fraction still includes one edge.
        assert!((r.worst_fraction(0.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no edges")]
    fn empty_report_panics() {
        let _ = EvalReport::from_accuracies(vec![]);
    }

    #[test]
    fn evaluate_runs_and_is_deterministic_across_parallelism() {
        let sc = tiny_problem(3, 2, 5);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w = vec![0.01; fp.num_params()];
        let seq = evaluate(&fp, &w, Parallelism::Sequential);
        let par = evaluate(&fp, &w, Parallelism::Rayon);
        assert_eq!(seq, par);
        assert_eq!(seq.per_edge_accuracy.len(), 3);
    }

    #[test]
    fn uniform_variance_is_zero() {
        let r = EvalReport::from_accuracies(vec![0.7; 5]);
        assert_eq!(r.variance_pp, 0.0);
        assert_eq!(r.worst, 0.7);
    }
}
