//! HierMinimax and baselines: distributed minimax fair optimization over
//! hierarchical client-edge-cloud networks.
//!
//! This crate is the core of the reproduction of *Distributed Minimax Fair
//! Optimization over Hierarchical Networks* (ICPP 2024). It contains:
//!
//! - [`problem`] — the problem instance type (scenario + model + domains),
//!   realising eq. (3): `min_{w∈W} max_{p∈P} Σ_e p_e f_e(w)`.
//! - [`algorithms`] — [`algorithms::HierMinimax`] (Algorithm 1) and the
//!   four baselines of §6 (FedAvg, Stochastic-AFL, DRFA, HierFAVG), all
//!   behind one [`algorithms::Algorithm`] trait.
//! - [`localsgd`] — the client-side projected local SGD of eq. (4), with
//!   checkpoint capture.
//! - [`metrics`] — per-edge test accuracy and the Table 2 fairness
//!   statistics (average / worst / variance).
//! - [`history`] — per-round records and the headline "communication
//!   rounds to reach a worst-accuracy target" queries.
//! - [`duality`] — the duality-gap estimator used to check Theorem 1's
//!   convex convergence behaviour empirically.
//! - [`stationarity`] — the Moreau-envelope gradient-norm estimator of
//!   Theorem 2's non-convex optimality measure.
//! - [`diagnostics`] — empirical verification of Lemma 1's model-divergence
//!   bound (lockstep instrumentation + problem-constant estimation).

pub mod algorithms;
pub mod checkpoint;
pub mod diagnostics;
pub mod duality;
pub mod history;
pub mod localsgd;
pub mod metrics;
pub mod problem;
pub mod stationarity;

pub use algorithms::{Algorithm, RunError, RunOpts, RunResult};
pub use checkpoint::CheckpointOpts;
pub use history::History;
pub use metrics::EvalReport;
pub use problem::FederatedProblem;
