//! HierMinimax — Algorithm 1 of the paper.
//!
//! Per training round `k`:
//!
//! **Phase 1 (model update).** The cloud samples `m_E` edges i.i.d. by the
//! current weights `p^(k)` and a checkpoint index `(c1, c2)` uniform on
//! `[τ1] × [τ2]`, and broadcasts `w^(k)` and `(c1, c2)`. Each sampled edge
//! runs `ModelUpdate`: `τ2` client-edge aggregation blocks of `τ1` local
//! projected-SGD steps (eq. 4), capturing the checkpoint model after `c1`
//! steps of block `c2`. Edges upload `w_e^{(k,τ2)}` and the checkpoint; the
//! cloud averages both (eqs. 5–6).
//!
//! **Phase 2 (weight update).** The cloud samples a *uniform* edge set
//! `U^(k)` of size `m_E`, broadcasts the checkpoint model, and collects
//! mini-batch loss estimates `f_e`. It forms the importance-weighted
//! estimate `v_e = (N_E/m_E)·f_e` for sampled edges (zero otherwise) —
//! unbiased for `∇_p F(w^{(k,c2,c1)}, ·)` — and updates
//! `p^{(k+1)} = Π_P(p^(k) + η_p τ1 τ2 v)` (eq. 7).

use super::churnctl::ChurnCtl;
use super::hier_common::{
    multiplicities, robust_reduce_into, run_edge_blocks, EdgeBlockParams, QuarantineCtl,
};
use super::{finish_round, Algorithm, IterateAverage, RunError, RunOpts, RunResult};
use crate::checkpoint::{emit_preamble, CheckpointCtx, ResumedRun};
use crate::history::History;
use crate::localsgd::estimate_loss;
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_optim::sgd::projected_ascent_step;
use hm_simnet::sampling::{sample_checkpoint, sample_edges_uniform, sample_edges_weighted};
use hm_simnet::trace::{Event, Trace};
use hm_simnet::{CommMeter, FaultInjector, FaultKind, FaultStats, Link, MsgChannel, Quantizer};
use hm_telemetry::{Phase, Telemetry, TelemetryEvent};

/// Record one edge-level fault occurrence in both the protocol trace and
/// the telemetry stream (shared by all hierarchical run loops).
pub(crate) fn record_edge_fault(
    trace: &Trace,
    tel: &Telemetry,
    round: usize,
    level: usize,
    edge: usize,
    kind: FaultKind,
    attempts: usize,
) {
    trace.record(|| Event::EdgeFault {
        round,
        level,
        edge,
        kind,
        attempts,
    });
    tel.record(|| TelemetryEvent::Fault {
        round,
        kind: kind.as_str().into(),
        level,
        edge,
        attempts,
    });
}

/// Split a delivered-message outcome into its fault record (if any).
pub(crate) fn delivery_fault_kind(delivered: bool, attempts: u32) -> Option<FaultKind> {
    if !delivered {
        Some(FaultKind::MsgGaveUp)
    } else if attempts > 1 {
        Some(FaultKind::MsgRetried)
    } else {
        None
    }
}

/// Which model Phase 2 estimates losses on — the paper's randomly-indexed
/// checkpoint, or two biased ablation variants used by the
/// `ablation_checkpoint` bench to show why the checkpoint matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightUpdateModel {
    /// The paper's mechanism: the aggregated model at the uniformly random
    /// checkpoint index `(c1, c2)` — an unbiased sample of the round's
    /// iterate trajectory.
    #[default]
    RandomCheckpoint,
    /// Ablation: the round's *final* aggregated model `w^(k+1)` (biased
    /// toward the end of the trajectory).
    FinalModel,
    /// Ablation: the round's *starting* model `w^(k)` (one full round
    /// stale).
    RoundStart,
}

/// Configuration of a HierMinimax run.
#[derive(Debug, Clone)]
pub struct HierMinimaxConfig {
    /// Training rounds `K`.
    pub rounds: usize,
    /// Local SGD steps per client-edge aggregation (`τ1`).
    pub tau1: usize,
    /// Client-edge aggregations per round (`τ2`).
    pub tau2: usize,
    /// Participating edges per phase (`m_E`).
    pub m_edges: usize,
    /// Model learning rate `η_w`.
    pub eta_w: f32,
    /// Weight learning rate `η_p` (the update applies `η_p τ1 τ2`).
    pub eta_p: f32,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// Mini-batch size for Phase-2 loss estimation (a larger batch lowers
    /// the variance σ_p² of the weight-gradient estimate).
    pub loss_batch: usize,
    /// Which model Phase 2 evaluates (ablation hook; the paper's mechanism
    /// is the default).
    pub weight_update_model: WeightUpdateModel,
    /// Uplink codec for model uploads (the Hier-Local-QSGD extension;
    /// `Quantizer::Exact` reproduces the paper's algorithm).
    pub quantizer: Quantizer,
    /// Per-block client dropout probability (crash/straggler simulation;
    /// `0.0` = the paper's failure-free protocol).
    pub dropout: f32,
    /// Heterogeneous operating rates (the "flexible communication
    /// frequencies" the paper highlights, cf. Castiglia et al. \[5\]):
    /// when set, edge `e` performs `tau2_per_edge[e]` client-edge
    /// aggregations per round instead of the uniform `tau2`. Slot
    /// accounting uses the maximum (the synchronous round ends when the
    /// slowest edge finishes).
    pub tau2_per_edge: Option<Vec<usize>>,
    /// Shared runner options.
    pub opts: RunOpts,
}

impl Default for HierMinimaxConfig {
    fn default() -> Self {
        Self {
            rounds: 50,
            tau1: 2,
            tau2: 2,
            m_edges: 2,
            eta_w: 0.05,
            eta_p: 0.05,
            batch_size: 4,
            loss_batch: 16,
            weight_update_model: WeightUpdateModel::default(),
            quantizer: Quantizer::Exact,
            dropout: 0.0,
            tau2_per_edge: None,
            opts: RunOpts::default(),
        }
    }
}

/// The HierMinimax algorithm (Algorithm 1).
#[derive(Debug, Clone)]
pub struct HierMinimax {
    cfg: HierMinimaxConfig,
}

impl HierMinimax {
    /// Build a runner from a config.
    pub fn new(cfg: HierMinimaxConfig) -> Self {
        assert!(cfg.rounds > 0 && cfg.tau1 > 0 && cfg.tau2 > 0);
        assert!(cfg.m_edges > 0, "need at least one participating edge");
        assert!(cfg.batch_size > 0);
        Self { cfg }
    }

    /// The configuration of this runner.
    pub fn config(&self) -> &HierMinimaxConfig {
        &self.cfg
    }
}

impl Algorithm for HierMinimax {
    fn name(&self) -> &'static str {
        "HierMinimax"
    }

    fn run(&self, problem: &FederatedProblem, seed: u64) -> RunResult {
        self.try_run(problem, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_run(&self, problem: &FederatedProblem, seed: u64) -> Result<RunResult, RunError> {
        let cfg = &self.cfg;
        let n_edges = problem.num_edges();
        let n0 = problem.clients_per_edge();
        assert!(
            cfg.m_edges <= n_edges,
            "m_edges {} exceeds {} edges",
            cfg.m_edges,
            n_edges
        );
        if let Some(rates) = &cfg.tau2_per_edge {
            assert_eq!(rates.len(), n_edges, "one tau2 per edge");
            assert!(rates.iter().all(|&t| t > 0), "tau2 rates must be positive");
        }
        let max_tau2 = cfg
            .tau2_per_edge
            .as_ref()
            .map_or(cfg.tau2, |r| r.iter().copied().max().expect("non-empty"));
        let d = problem.num_params();
        let meter = CommMeter::new();
        let trace = cfg.opts.make_trace();
        let mut history = History::default();
        let mut avg_w = IterateAverage::new(d);
        let mut avg_p = IterateAverage::new(n_edges);

        let mut w = problem
            .model
            .init_params(&mut StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::Init,
                0,
                0,
            )));
        let mut p = problem.initial_p();
        // Fault oracle: the run's plan with the legacy `dropout` knob
        // folded into `client_crash`. An all-zero plan makes no RNG draws,
        // so this path is bit-identical to the fault-free seed runs.
        let fault = FaultInjector::new(seed, cfg.opts.fault.clone().with_dropout(cfg.dropout));
        let mut faults_prev = FaultStats::default();
        let mut adv_prev = hm_simnet::QuarantineStats::default();
        // Update-norm quarantine pass (inert at the default z = 0).
        let mut quarantine = QuarantineCtl::new(
            cfg.opts.quarantine_z,
            cfg.opts.quarantine_window,
            problem.topology().total_clients(),
        );
        // Membership churn (inert at the default all-zero plan, in which
        // case every churn branch below is skipped and the loop is
        // bit-identical to the pre-churn build).
        let mut churn = ChurnCtl::new(problem, &cfg.opts.churn, seed);
        let churn_active = churn.active();
        // Consecutive all-failed (stale) rounds; `max_stale_rounds > 0`
        // turns the streak into a typed abort.
        let mut stale_rounds: u64 = 0;

        // Resuming restores every piece of round-boundary state; all
        // randomness is keyed by (seed, round), so re-entering the loop at
        // `start_round` replays the uninterrupted run bit for bit.
        let resumed = ResumedRun::from_opts(&cfg.opts, "HierMinimax", seed, cfg.rounds);
        let start_round = match &resumed {
            Some(rr) => {
                w.clone_from(&rr.w);
                p.clone_from(&rr.p);
                avg_w = rr.avg_w.clone();
                avg_p = rr.avg_p.clone();
                history = rr.history.clone();
                meter.restore(&rr.comm);
                fault.restore(&rr.faults);
                faults_prev = rr.faults;
                if let Some(bytes) = rr.snap.extra(crate::checkpoint::QUARANTINE_SECTION) {
                    let (until, adv) = crate::checkpoint::decode_quarantine(bytes)
                        .unwrap_or_else(|e| panic!("cannot resume: {e}"));
                    quarantine.restore(until);
                    fault.restore_adversary(&adv);
                    adv_prev = adv;
                }
                if churn_active {
                    let bytes = rr
                        .snap
                        .extra(crate::checkpoint::CHURN_SECTION)
                        .unwrap_or_else(|| {
                            panic!("cannot resume a churn run: snapshot has no churn section")
                        });
                    stale_rounds = churn.restore(problem, bytes);
                }
                rr.start_round
            }
            None => 0,
        };
        let mut comm_prev = meter.snapshot();

        let tel = &cfg.opts.telemetry;
        let run_timer = tel.timer();
        emit_preamble(
            tel,
            resumed.as_ref(),
            "HierMinimax",
            cfg.rounds,
            n_edges,
            d,
            seed,
        );
        cfg.opts.emit_aggregator_summary();
        let ckpt = CheckpointCtx::new(&cfg.opts, "HierMinimax", seed, cfg.rounds, true);

        let prof = &cfg.opts.profile;
        for k in start_round..cfg.rounds {
            tel.record(|| TelemetryEvent::RoundStart { round: k });
            let round_timer = tel.timer();
            let phase1_timer = tel.timer();
            let round_span = prof.start();
            // Membership churn is resolved at the round boundary, before
            // any Phase-1 draw: leaves, edge failures (with orphan
            // re-homing), joins — and, when an edge died, the fairness
            // weights re-projected onto the surviving simplex so the
            // Phase-1 sampler below never picks a dead edge.
            churn.begin_round(problem, k, &mut p, &mut quarantine, &trace, tel);
            let sampling_span = prof.start();
            // ---- Phase 1: model parameter update --------------------------
            let mut e_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
            let p64: Vec<f64> = p.iter().map(|&x| f64::from(x).max(0.0)).collect();
            let sampled = sample_edges_weighted(&p64, cfg.m_edges, &mut e_rng);
            trace.record(|| Event::Phase1EdgesSampled {
                round: k,
                edges: sampled.clone(),
            });

            let mut c_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::Checkpoint, k as u64, 0));
            let (c1, c2) = sample_checkpoint(cfg.tau1, cfg.tau2, &mut c_rng);
            trace.record(|| Event::CheckpointSampled { round: k, c1, c2 });
            // Under heterogeneous rates each edge resamples its own block
            // index; the shared (c1, c2) reported here is the base draw.
            tel.record(|| TelemetryEvent::Phase1Sampled {
                round: k,
                edges: sampled.clone(),
                checkpoint: Some((c1, c2)),
            });
            prof.record(tel, Phase::Phase1Sampling, Some(k), None, sampling_span);

            // Cloud → sampled edges: the global model and the (scalar)
            // checkpoint index. Duplicated samples transmit once. A
            // sampled edge that is out this round never receives or
            // reports anything; the cloud proceeds with the others.
            let (distinct, counts) = multiplicities(&sampled);
            let mut active: Vec<usize> = Vec::with_capacity(distinct.len());
            let mut active_counts: Vec<usize> = Vec::with_capacity(distinct.len());
            for (&e, &c) in distinct.iter().zip(&counts) {
                if fault.edge_out(k as u64, 0, e) {
                    record_edge_fault(&trace, tel, k, 0, e, FaultKind::EdgeOutage, 0);
                } else {
                    active.push(e);
                    active_counts.push(c);
                }
            }
            meter.record_broadcast(Link::EdgeCloud, d as u64 + 2, active.len() as u64);
            trace.record(|| Event::CloudBroadcast {
                round: k,
                recipients: active.clone(),
            });

            // Phase-1 downlink deliveries: each retry retransmits the full
            // payload (metered); an edge whose downlink never arrives sits
            // the round out.
            let mut participants: Vec<usize> = Vec::with_capacity(active.len());
            let mut part_counts: Vec<usize> = Vec::with_capacity(active.len());
            let mut retries = 0u64;
            let retry_span = prof.start();
            for (&e, &c) in active.iter().zip(&active_counts) {
                let dv = fault.deliver(k as u64, 0, MsgChannel::Phase1Down, e);
                retries += u64::from(dv.attempts - 1);
                if let Some(kind) = delivery_fault_kind(dv.delivered, dv.attempts) {
                    record_edge_fault(&trace, tel, k, 0, e, kind, dv.attempts as usize);
                }
                if dv.delivered {
                    participants.push(e);
                    part_counts.push(c);
                }
            }
            // Retried downlinks, metered once for the whole loop (every
            // retry carries the same payload, so the totals are exact).
            if retries > 0 {
                meter.record_broadcast(Link::EdgeCloud, d as u64 + 2, retries);
                prof.record(tel, Phase::FaultRetry, Some(k), None, retry_span);
            }

            // Round-start model, kept for the RoundStart ablation variant.
            let w_start = if cfg.weight_update_model == WeightUpdateModel::RoundStart {
                w.clone()
            } else {
                Vec::new()
            };

            quarantine.begin_round();
            let outputs = match &cfg.tau2_per_edge {
                None => run_edge_blocks(EdgeBlockParams {
                    problem,
                    w_start: &w,
                    edges: &participants,
                    tau1: cfg.tau1,
                    tau2: cfg.tau2,
                    eta_w: cfg.eta_w,
                    batch_size: cfg.batch_size,
                    checkpoint: Some((c1, c2)),
                    quantizer: cfg.quantizer,
                    fault: &fault,
                    level: 0,
                    record_rounds: true,
                    round: k,
                    seed,
                    meter: &meter,
                    par: cfg.opts.parallelism,
                    engine: cfg.opts.engine,
                    trace: &trace,
                    telemetry: tel,
                    profile: prof,
                    aggregator: cfg.opts.aggregator,
                    quarantined: quarantine.exclusions(),
                    track_norms: quarantine.active(),
                    roster: churn.roster(),
                }),
                Some(rates) => {
                    // Heterogeneous rates: each edge runs its own block
                    // count and samples its own uniform checkpoint block
                    // (clamping a shared index would bias slow edges toward
                    // late blocks and never reach fast edges' extra blocks).
                    // Local (client-edge) rounds are metered per edge here,
                    // since each edge genuinely runs its own aggregations.
                    let mut outs = Vec::with_capacity(participants.len());
                    for &e in &participants {
                        let tau2_e = rates[e];
                        let c2_e = StreamRng::for_key(StreamKey::new(
                            seed,
                            Purpose::Checkpoint,
                            k as u64,
                            1 + e as u64,
                        ))
                        .below(tau2_e);
                        let mut o = run_edge_blocks(EdgeBlockParams {
                            problem,
                            w_start: &w,
                            edges: std::slice::from_ref(&e),
                            tau1: cfg.tau1,
                            tau2: tau2_e,
                            eta_w: cfg.eta_w,
                            batch_size: cfg.batch_size,
                            checkpoint: Some((c1, c2_e)),
                            quantizer: cfg.quantizer,
                            fault: &fault,
                            level: 0,
                            record_rounds: false,
                            round: k,
                            seed,
                            meter: &meter,
                            par: cfg.opts.parallelism,
                            engine: cfg.opts.engine,
                            trace: &trace,
                            telemetry: tel,
                            profile: prof,
                            aggregator: cfg.opts.aggregator,
                            quarantined: quarantine.exclusions(),
                            track_norms: quarantine.active(),
                            roster: churn.roster(),
                        });
                        outs.push(o.pop().expect("one edge per call"));
                    }
                    // Concurrent edges share synchronisation windows: the
                    // round's local sync count is the slowest participating
                    // edge's block count, not the per-edge sum (zero when
                    // every sampled edge failed before computing).
                    let max_sampled = participants.iter().map(|&e| rates[e]).max().unwrap_or(0);
                    for _ in 0..max_sampled {
                        meter.record_round(Link::ClientEdge);
                    }
                    outs
                }
            };

            debug_assert!(
                outputs.iter().zip(&participants).all(|(o, &e)| o.edge == e),
                "edge outputs out of order"
            );
            quarantine.observe(problem, churn.roster(), &outputs);

            // Edges → cloud: final model + checkpoint model (quantized
            // when the codec is active), one round.
            let mut outputs = outputs;
            if cfg.quantizer != Quantizer::Exact {
                // Edge→cloud codec: deltas against the round's broadcast
                // model, which the cloud already holds.
                for o in outputs.iter_mut() {
                    let mut qrng = StreamRng::for_key(StreamKey::new(
                        seed,
                        Purpose::Quantize,
                        k as u64,
                        1_000_000 + o.edge as u64,
                    ));
                    super::hier_common::quantize_delta(
                        &cfg.quantizer,
                        &w,
                        &mut o.w_final,
                        &mut qrng,
                    );
                    if let Some(cp) = o.checkpoint.as_mut() {
                        super::hier_common::quantize_delta(&cfg.quantizer, &w, cp, &mut qrng);
                    }
                }
            }
            // Phase-1 uplink deliveries: every attempt transmits the full
            // payload (metered below: first attempts in the base gather,
            // retries here); only delivered reports reach the aggregation.
            let wire_up = 2 * cfg.quantizer.wire_floats(d);
            let mut reported: Vec<usize> = Vec::with_capacity(outputs.len());
            let mut retries = 0u64;
            let retry_span = prof.start();
            for (i, o) in outputs.iter().enumerate() {
                let dv = fault.deliver(k as u64, 0, MsgChannel::Phase1Up, o.edge);
                retries += u64::from(dv.attempts - 1);
                if let Some(kind) = delivery_fault_kind(dv.delivered, dv.attempts) {
                    record_edge_fault(&trace, tel, k, 0, o.edge, kind, dv.attempts as usize);
                }
                if dv.delivered {
                    reported.push(i);
                }
            }
            if retries > 0 {
                meter.record_gather(Link::EdgeCloud, wire_up, retries);
                prof.record(tel, Phase::FaultRetry, Some(k), None, retry_span);
            }
            meter.record_gather(Link::EdgeCloud, wire_up, outputs.len() as u64);
            meter.record_round(Link::EdgeCloud);

            // Cloud aggregation over the surviving reports (eqs. 5–6):
            // duplicates in the with-replacement sample weight their edge,
            // and the weights renormalize over the reports that actually
            // arrived (fault-free, the denominator is exactly m_E).
            // Stale-round accounting: a round where no sampled edge
            // reported leaves the model untouched. `max_stale_rounds`
            // caps the tolerated consecutive streak; one more aborts with
            // a typed error instead of silently treading water forever.
            if reported.is_empty() {
                stale_rounds += 1;
                if cfg.opts.max_stale_rounds > 0 && stale_rounds > cfg.opts.max_stale_rounds as u64
                {
                    return Err(RunError::StaleRoundsExceeded {
                        round: k,
                        consecutive: stale_rounds as usize,
                        limit: cfg.opts.max_stale_rounds,
                    });
                }
            } else {
                stale_rounds = 0;
            }

            let agg_span = prof.start();
            let mut w_checkpoint = vec![0.0_f32; d];
            if reported.is_empty() {
                // Every sampled edge failed: the round is stale. The cloud
                // keeps w^(k) bit-identically and Phase 2 evaluates it.
                w_checkpoint.copy_from_slice(&w);
            } else {
                let m_reported: usize = reported.iter().map(|&i| part_counts[i]).sum();
                let weights: Vec<f64> = reported
                    .iter()
                    .map(|&i| part_counts[i] as f64 / m_reported as f64)
                    .collect();
                let finals: Vec<&[f32]> = reported
                    .iter()
                    .map(|&i| outputs[i].w_final.as_slice())
                    .collect();
                let base_w = if cfg.opts.aggregator.needs_base() {
                    w.clone()
                } else {
                    Vec::new()
                };
                let mut agg_scratch: Vec<f32> = Vec::new();
                robust_reduce_into(
                    &cfg.opts.aggregator,
                    &finals,
                    Some(&weights),
                    &base_w,
                    &mut agg_scratch,
                    &mut w,
                );
                let cps: Vec<&[f32]> = reported
                    .iter()
                    .map(|&i| {
                        outputs[i]
                            .checkpoint
                            .as_deref()
                            .expect("phase 1 captures checkpoints")
                    })
                    .collect();
                robust_reduce_into(
                    &cfg.opts.aggregator,
                    &cps,
                    Some(&weights),
                    &base_w,
                    &mut agg_scratch,
                    &mut w_checkpoint,
                );
            }
            prof.record(tel, Phase::Aggregation, Some(k), None, agg_span);
            trace.record(|| Event::GlobalAggregation { round: k });
            trace.record(|| Event::GlobalModel {
                round: k,
                w: w.clone(),
            });
            tel.record(|| TelemetryEvent::Phase1Done {
                round: k,
                elapsed_s: phase1_timer.elapsed_s(),
            });
            // Ablation hook: optionally estimate Phase-2 losses on a biased
            // model instead of the unbiased random checkpoint.
            let w_phase2: &[f32] = match cfg.weight_update_model {
                WeightUpdateModel::RandomCheckpoint => &w_checkpoint,
                WeightUpdateModel::FinalModel => &w,
                WeightUpdateModel::RoundStart => &w_start,
            };

            // ---- Phase 2: edge weight update ------------------------------
            let phase2_timer = tel.timer();
            let dual_span = prof.start();
            let mut u_rng = StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::LossEstSampling,
                k as u64,
                u64::MAX,
            ));
            // Under churn, U^(k) is uniform over the *surviving* edges
            // (m clamped to their count) — a permanently failed edge can
            // never report a loss, so keeping it in the pool would bias
            // the estimate toward zero on every survivor.
            let (p2_pool, p2_m, u_set) = if churn_active {
                let up = churn.up_edges();
                let m = cfg.m_edges.min(up.len());
                let idx = sample_edges_uniform(up.len(), m, &mut u_rng);
                (up.len(), m, idx.into_iter().map(|i| up[i]).collect())
            } else {
                (
                    n_edges,
                    cfg.m_edges,
                    sample_edges_uniform(n_edges, cfg.m_edges, &mut u_rng),
                )
            };
            trace.record(|| Event::Phase2EdgesSampled {
                round: k,
                edges: u_set.clone(),
            });

            // Cloud → U^(k): checkpoint model; edges relay to clients. An
            // edge that is out, or whose downlink is lost after retries,
            // contributes v_e = 0 (graceful degradation: the estimate
            // shrinks toward zero instead of aborting the update).
            let mut live: Vec<usize> = Vec::with_capacity(u_set.len());
            for &e in &u_set {
                if fault.edge_out(k as u64, 0, e) {
                    record_edge_fault(&trace, tel, k, 0, e, FaultKind::EdgeOutage, 0);
                } else {
                    live.push(e);
                }
            }
            meter.record_broadcast(Link::EdgeCloud, d as u64, live.len() as u64);
            let mut est: Vec<usize> = Vec::with_capacity(live.len());
            let mut retries = 0u64;
            let retry_span = prof.start();
            for &e in &live {
                let dv = fault.deliver(k as u64, 0, MsgChannel::Phase2Down, e);
                retries += u64::from(dv.attempts - 1);
                if let Some(kind) = delivery_fault_kind(dv.delivered, dv.attempts) {
                    record_edge_fault(&trace, tel, k, 0, e, kind, dv.attempts as usize);
                }
                if dv.delivered {
                    est.push(e);
                }
            }
            if retries > 0 {
                meter.record_broadcast(Link::EdgeCloud, d as u64, retries);
                prof.record(tel, Phase::FaultRetry, Some(k), None, retry_span);
            }
            // Under churn the estimating population is each edge's
            // current member list (re-homed arrivals included, leavers
            // gone), so both the meter and the estimate see the same set.
            let est_clients: u64 = if churn_active {
                est.iter().map(|&e| churn.members_of(e).len() as u64).sum()
            } else {
                (est.len() * n0) as u64
            };
            meter.record_broadcast(Link::ClientEdge, d as u64, est_clients);

            let topo = problem.topology();
            let model = &problem.model;
            let churn_ref = &churn;
            let edge_losses: Vec<f64> = cfg.opts.parallelism.map_ref(&est, |&e| {
                // f_e = (1/N_0) Σ_n f_n(checkpoint; ξ_n).
                let mut total = 0.0_f64;
                if churn_active {
                    let members = churn_ref.members_of(e);
                    for &client in members {
                        let mut rng = StreamRng::for_key(StreamKey::new(
                            seed,
                            Purpose::LossEstSampling,
                            k as u64,
                            client as u64,
                        ));
                        total += estimate_loss(
                            &**model,
                            churn_ref.data(problem, client),
                            w_phase2,
                            cfg.loss_batch,
                            &mut rng,
                        );
                    }
                    if members.is_empty() {
                        0.0
                    } else {
                        total / members.len() as f64
                    }
                } else {
                    for c in 0..n0 {
                        let client = topo.client_id(e, c);
                        let mut rng = StreamRng::for_key(StreamKey::new(
                            seed,
                            Purpose::LossEstSampling,
                            k as u64,
                            client as u64,
                        ));
                        total += estimate_loss(
                            &**model,
                            problem.client_data(e, c),
                            w_phase2,
                            cfg.loss_batch,
                            &mut rng,
                        );
                    }
                    total / n0 as f64
                }
            });

            // Clients → edges: scalar losses; edges → cloud: scalar f_e.
            // Scalars ride the reliable control channel (loss injection
            // models the bulky model transfers), so every estimating edge
            // reports.
            meter.record_gather(Link::ClientEdge, 1, est_clients);
            meter.record_round(Link::ClientEdge);
            // Phase 2 piggybacks on the round's cloud exchange window: its
            // floats/messages are metered above, but it does not count as a
            // separate communication round (the paper's Table-1 complexity
            // is O(1) edge-cloud rounds per training round covering both
            // phases).
            meter.record_gather(Link::EdgeCloud, 1, est.len() as u64);

            // Unbiased gradient estimate v and projected ascent (eq. 7).
            let mut v = vec![0.0_f32; n_edges];
            let scale = p2_pool as f64 / p2_m as f64;
            for (&e, &fe) in est.iter().zip(&edge_losses) {
                v[e] = (scale * fe) as f32;
            }
            // Theorem 1's update applies η_p × (slots per round); under
            // heterogeneous rates the round spans τ1 · max τ2_e slots.
            let lr = cfg.eta_p * (cfg.tau1 * max_tau2) as f32;
            projected_ascent_step(&mut p, &v, lr, &problem.p_domain);
            // The domain projection may hand mass back to a dead edge;
            // re-project so p^{(k+1)} lives on the surviving simplex
            // (a no-op while every edge is up).
            churn.reproject_weights(&mut p);
            prof.record(tel, Phase::DualUpdate, Some(k), None, dual_span);
            trace.record(|| Event::WeightUpdate {
                round: k,
                p: p.clone(),
            });
            tel.record(|| TelemetryEvent::DualUpdate {
                round: k,
                edges: est.clone(),
                losses: edge_losses.clone(),
                p: p.clone(),
                elapsed_s: phase2_timer.elapsed_s(),
            });
            // Per-round fault deltas, only when a fault class is live — a
            // zero-rate plan leaves the stream byte-identical to fault-off.
            let fstats = fault.stats();
            if fault.is_active() {
                let fd = fstats.since(&faults_prev);
                tel.record(|| TelemetryEvent::FaultSummary {
                    round: k,
                    crashes: fd.crashes,
                    outages: fd.outages,
                    retries: fd.retries,
                    gave_up: fd.gave_up,
                    deadline_missed: fd.deadline_missed,
                    backoff_s: fd.backoff_s,
                    straggler_slots: fd.straggler_slots,
                });
            }
            faults_prev = fstats;
            // Adversary delta + quarantine sweep, only when the plan has a
            // live adversary — zero-rate plans emit nothing (bit-compat).
            let adv_now = fault.adversary_stats();
            if fault.has_adversary() {
                let ad = adv_now.since(&adv_prev);
                trace.record(|| Event::AdversaryRound {
                    round: k,
                    corrupted: ad.corrupted_updates,
                    attack: cfg.opts.fault.attack.as_str(),
                });
                tel.record_unsequenced(|| TelemetryEvent::Adversary {
                    round: k,
                    corrupted: ad.corrupted_updates,
                    attack: cfg.opts.fault.attack.as_str().to_string(),
                });
            }
            quarantine.end_round(k, &fault, tel);
            adv_prev = adv_now;
            let comm_now = meter.snapshot();
            trace.record(|| Event::RoundComm {
                round: k,
                delta: comm_now.since(&comm_prev),
            });
            let slots_done = (k + 1) * cfg.tau1 * max_tau2;
            tel.record(|| TelemetryEvent::RoundEnd {
                round: k,
                slots: slots_done,
                comm_delta: comm_now.since(&comm_prev),
                comm_total: comm_now,
                sim_s: tel.sim_seconds(&comm_now, slots_done, cfg.m_edges.max(1))
                    + tel.fault_seconds(fstats.straggler_slots, fstats.backoff_s),
                elapsed_s: round_timer.elapsed_s(),
            });
            comm_prev = comm_now;
            prof.record(tel, Phase::Round, Some(k), None, round_span);

            finish_round(
                problem,
                &cfg.opts,
                &mut history,
                &mut avg_w,
                &mut avg_p,
                k,
                cfg.rounds,
                cfg.tau1 * max_tau2,
                comm_now,
                &w,
                p.clone(),
            );
            ckpt.after_round(
                k,
                &w,
                &p,
                &avg_w,
                &avg_p,
                &history,
                comm_now,
                fstats,
                {
                    let mut extra = Vec::new();
                    if quarantine.active() || fault.has_adversary() {
                        extra.push((
                            crate::checkpoint::QUARANTINE_SECTION.to_string(),
                            // Read the counters fresh: `end_round` has added
                            // this round's quarantine sentences since `adv_now`
                            // was captured for the telemetry delta.
                            crate::checkpoint::encode_quarantine(
                                quarantine.state(),
                                &fault.adversary_stats(),
                            ),
                        ));
                    }
                    if churn_active {
                        extra.push((
                            crate::checkpoint::CHURN_SECTION.to_string(),
                            churn.checkpoint_bytes(stale_rounds),
                        ));
                    }
                    extra
                },
            );
        }

        let comm_final = meter.snapshot();
        let faults_final = fault.stats();
        let total_slots = cfg.rounds * cfg.tau1 * max_tau2;
        prof.emit_summary(tel);
        tel.record(|| TelemetryEvent::RunEnd {
            rounds: cfg.rounds,
            slots: total_slots,
            comm_total: comm_final,
            sim_s: tel.sim_seconds(&comm_final, total_slots, cfg.m_edges.max(1))
                + tel.fault_seconds(faults_final.straggler_slots, faults_final.backoff_s),
            elapsed_s: run_timer.elapsed_s(),
        });
        tel.flush();

        Ok(RunResult {
            final_w: w,
            avg_w: avg_w.mean(),
            final_p: p.clone(),
            avg_p: avg_p.mean(),
            history,
            comm: comm_final,
            trace,
            faults: faults_final,
            quarantine: fault.adversary_stats(),
            churn: churn.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;
    use hm_simnet::Parallelism;

    fn quick_cfg(rounds: usize) -> HierMinimaxConfig {
        HierMinimaxConfig {
            rounds,
            tau1: 2,
            tau2: 2,
            m_edges: 2,
            eta_w: 0.1,
            eta_p: 0.1,
            batch_size: 2,
            loss_batch: 4,
            weight_update_model: WeightUpdateModel::default(),
            quantizer: Quantizer::Exact,
            dropout: 0.0,
            tau2_per_edge: None,
            opts: RunOpts {
                eval_every: 1,
                parallelism: Parallelism::Sequential,
                trace: true,
                ..Default::default()
            },
        }
    }

    #[test]
    fn runs_and_records_history() {
        let sc = tiny_problem(3, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let r = HierMinimax::new(quick_cfg(4)).run(&fp, 42);
        assert_eq!(r.history.rounds.len(), 4);
        assert_eq!(r.final_p.len(), 3);
        // p stays on the simplex.
        let sum: f32 = r.final_p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(r.final_p.iter().all(|&x| x >= -1e-6));
        // One cloud round per training round (Phases 1+2 share the
        // round's exchange window).
        assert_eq!(r.comm.cloud_rounds(), 4);
        // slots = rounds · τ1 τ2.
        assert_eq!(r.history.rounds.last().unwrap().slots_done, 16);
    }

    #[test]
    fn deterministic_across_parallelism() {
        let sc = tiny_problem(3, 2, 2);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let mut cfg = quick_cfg(3);
        cfg.opts.trace = false;
        cfg.opts.parallelism = Parallelism::Sequential;
        let a = HierMinimax::new(cfg.clone()).run(&fp, 7);
        cfg.opts.parallelism = Parallelism::Rayon;
        let b = HierMinimax::new(cfg).run(&fp, 7);
        assert_eq!(a.final_w, b.final_w);
        assert_eq!(a.final_p, b.final_p);
    }

    #[test]
    fn seeds_change_the_run() {
        let sc = tiny_problem(3, 2, 2);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let a = HierMinimax::new(quick_cfg(3)).run(&fp, 1);
        let b = HierMinimax::new(quick_cfg(3)).run(&fp, 2);
        assert_ne!(a.final_w, b.final_w);
    }

    #[test]
    fn training_reduces_objective() {
        let sc = tiny_problem(3, 2, 3);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w0 = vec![0.0; fp.num_params()];
        let p0 = fp.initial_p();
        let before = fp.objective(&w0, &p0);
        let mut cfg = quick_cfg(30);
        cfg.m_edges = 3;
        let r = HierMinimax::new(cfg).run(&fp, 5);
        let after = fp.objective(&r.final_w, &p0);
        assert!(after < before * 0.8, "objective {before} -> {after}");
    }

    #[test]
    fn trace_contains_protocol_events() {
        use hm_simnet::trace::Event;
        let sc = tiny_problem(3, 2, 4);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let r = HierMinimax::new(quick_cfg(2)).run(&fp, 9);
        let events = r.trace.events();
        let phase1 = events
            .iter()
            .filter(|e| matches!(e, Event::Phase1EdgesSampled { .. }))
            .count();
        let phase2 = events
            .iter()
            .filter(|e| matches!(e, Event::Phase2EdgesSampled { .. }))
            .count();
        let cps = events
            .iter()
            .filter(|e| matches!(e, Event::CheckpointSampled { .. }))
            .count();
        let wu = events
            .iter()
            .filter(|e| matches!(e, Event::WeightUpdate { .. }))
            .count();
        assert_eq!(phase1, 2);
        assert_eq!(phase2, 2);
        assert_eq!(cps, 2);
        assert_eq!(wu, 2);
        // Checkpoint indices are within [τ1]×[τ2].
        for e in &events {
            if let Event::CheckpointSampled { c1, c2, .. } = e {
                assert!(*c1 < 2 && *c2 < 2);
            }
        }
    }

    #[test]
    fn weights_shift_toward_lossier_edges() {
        // With one class per edge and per-edge losses, after training the
        // weight of the worst edge should not be the smallest one.
        let sc = tiny_problem(4, 2, 6);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let mut cfg = quick_cfg(40);
        cfg.m_edges = 2;
        cfg.opts.eval_every = 0;
        let r = HierMinimax::new(cfg).run(&fp, 3);
        // p must have moved off the uniform start.
        let uniform = 1.0 / 4.0_f32;
        assert!(
            r.final_p.iter().any(|&x| (x - uniform).abs() > 1e-3),
            "p never moved: {:?}",
            r.final_p
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_many_edges_panics() {
        let sc = tiny_problem(2, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let mut cfg = quick_cfg(1);
        cfg.m_edges = 5;
        let _ = HierMinimax::new(cfg).run(&fp, 0);
    }
}
