//! Multi-level HierMinimax — the paper's claimed generalisation beyond
//! three layers ("we use [client-edge-cloud] as a representative example…
//! our work can be easily generalized", §3).
//!
//! The network is a tree: clients → edge servers → one or more levels of
//! intermediate aggregators ("regions") → cloud. Each intermediate level
//! `l` performs `τ_l` aggregations of the level below per aggregation of
//! the level above; the minimax weights `p` live on the level directly
//! under the cloud (the level whose mixture the cloud can actually
//! reweight), exactly as the paper's `p` lives on edge areas in the
//! three-layer case.
//!
//! Grouping is structural: level `l`'s groups are contiguous runs of the
//! level below. With `upper: []` this degenerates to HierMinimax itself
//! (weights on edge areas) — asserted in the tests.
//!
//! Communication metering note: links between intermediate levels are
//! metered on `ClientEdge` (local/cheap class) and only the top level's
//! exchange with the cloud on `EdgeCloud` (WAN class), consistent with the
//! cost model where everything below the cloud is site-local.

use super::hier_common::{multiplicities, robust_reduce_into, run_edge_blocks, EdgeBlockParams};
use super::hierminimax::{delivery_fault_kind, record_edge_fault};
use super::{finish_round, Algorithm, IterateAverage, RunOpts, RunResult};
use crate::checkpoint::{emit_preamble, CheckpointCtx, ResumedRun};
use crate::history::History;
use crate::localsgd::estimate_loss;
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_optim::sgd::projected_ascent_step;
use hm_simnet::sampling::{sample_edges_uniform, sample_edges_weighted};
use hm_simnet::trace::Event;
use hm_simnet::trace::Trace;
use hm_simnet::{CommMeter, FaultInjector, FaultKind, FaultStats, Link, MsgChannel, Quantizer};
use hm_telemetry::{Phase, TelemetryEvent};

/// One intermediate aggregation level above the edge servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpperLevel {
    /// How many groups of the level below form one group of this level
    /// (contiguous grouping).
    pub group_size: usize,
    /// Aggregations of the level below per aggregation of this level.
    pub tau: usize,
}

/// Configuration of a multi-level HierMinimax run.
#[derive(Debug, Clone)]
pub struct MultiLevelConfig {
    /// Training rounds `K`.
    pub rounds: usize,
    /// Local SGD steps per client-edge aggregation (`τ1`).
    pub tau1: usize,
    /// Client-edge aggregations per edge-level sync (`τ2`).
    pub tau2: usize,
    /// Intermediate levels above the edges, bottom-up (empty = the plain
    /// three-layer HierMinimax).
    pub upper: Vec<UpperLevel>,
    /// Top-level groups sampled per round (`m` of the weighted sampling).
    pub m_groups: usize,
    /// Model learning rate.
    pub eta_w: f32,
    /// Weight learning rate (the update applies `η_p · Π τ`).
    pub eta_p: f32,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// Mini-batch size for loss estimation.
    pub loss_batch: usize,
    /// Per-block client dropout probability (folded into the fault plan's
    /// `client_crash`; `0.0` = the paper's failure-free protocol).
    pub dropout: f32,
    /// Shared runner options.
    pub opts: RunOpts,
}

impl Default for MultiLevelConfig {
    fn default() -> Self {
        Self {
            rounds: 50,
            tau1: 2,
            tau2: 2,
            upper: vec![UpperLevel {
                group_size: 2,
                tau: 2,
            }],
            m_groups: 2,
            eta_w: 0.05,
            eta_p: 0.01,
            batch_size: 4,
            loss_batch: 16,
            dropout: 0.0,
            opts: RunOpts::default(),
        }
    }
}

impl MultiLevelConfig {
    /// Time slots consumed per training round: `τ1 τ2 Π_l τ_l`.
    pub fn slots_per_round(&self) -> usize {
        self.tau1 * self.tau2 * self.upper.iter().map(|u| u.tau).product::<usize>()
    }

    /// Edges per top-level group: `Π_l group_size_l`.
    pub fn edges_per_group(&self) -> usize {
        self.upper.iter().map(|u| u.group_size).product()
    }
}

/// Multi-level HierMinimax.
#[derive(Debug, Clone)]
pub struct MultiLevelMinimax {
    cfg: MultiLevelConfig,
}

impl MultiLevelMinimax {
    /// Build a runner from a config.
    ///
    /// # Panics
    /// Panics on degenerate configs (zero rounds/taus/groups).
    pub fn new(cfg: MultiLevelConfig) -> Self {
        assert!(cfg.rounds > 0 && cfg.tau1 > 0 && cfg.tau2 > 0);
        assert!(cfg.m_groups > 0 && cfg.batch_size > 0 && cfg.loss_batch > 0);
        assert!(cfg.upper.iter().all(|u| u.group_size > 0 && u.tau > 0));
        Self { cfg }
    }

    /// Number of top-level (weighted) groups for a problem.
    ///
    /// # Panics
    /// Panics unless the problem's edge count is divisible by the grouping.
    pub fn num_groups(&self, problem: &FederatedProblem) -> usize {
        let per = self.cfg.edges_per_group();
        let n = problem.num_edges();
        assert!(
            n.is_multiple_of(per),
            "{n} edges do not divide into groups of {per}"
        );
        n / per
    }

    /// Recursive subtree update: runs the level `li` (index into
    /// `cfg.upper`, from the top) aggregation loop over the given edge
    /// set, returning `(model, checkpoint)`.
    #[allow(clippy::too_many_arguments)]
    fn subtree_update(
        &self,
        problem: &FederatedProblem,
        w_start: &[f32],
        edges: &[usize],
        li: usize,
        cp_index: &[usize], // one entry per upper level + the (c1, c2) base
        round_tag: usize,   // unique per (round, position) for RNG keying
        seed: u64,
        meter: &CommMeter,
        trace: &Trace,
        fault: &FaultInjector,
    ) -> (Vec<f32>, Option<Vec<f32>>) {
        let cfg = &self.cfg;
        if li == cfg.upper.len() {
            // Base case: one edge-level block over these edges. Client
            // faults key on the tree depth as their level, so a deeper
            // hierarchy draws survival bits independent of the three-layer
            // case even when block indices coincide (with `upper: []` the
            // depth is 0 and the legacy streams are preserved).
            let (c1, c2) = (cp_index[cp_index.len() - 2], cp_index[cp_index.len() - 1]);
            let outputs = run_edge_blocks(EdgeBlockParams {
                problem,
                w_start,
                edges,
                tau1: cfg.tau1,
                tau2: cfg.tau2,
                eta_w: cfg.eta_w,
                batch_size: cfg.batch_size,
                checkpoint: Some((c1, c2)),
                quantizer: Quantizer::Exact,
                fault,
                level: cfg.upper.len(),
                record_rounds: true,
                round: round_tag,
                seed,
                meter,
                par: cfg.opts.parallelism,
                engine: cfg.opts.engine,
                trace,
                telemetry: &cfg.opts.telemetry,
                profile: &cfg.opts.profile,
                aggregator: cfg.opts.aggregator,
                quarantined: &[],
                track_norms: false,
                roster: None,
            });
            let agg = &cfg.opts.aggregator;
            let mut agg_scratch: Vec<f32> = Vec::new();
            let finals: Vec<&[f32]> = outputs.iter().map(|o| o.w_final.as_slice()).collect();
            let mut w = vec![0.0_f32; w_start.len()];
            robust_reduce_into(agg, &finals, None, w_start, &mut agg_scratch, &mut w);
            let cps: Vec<&[f32]> = outputs
                .iter()
                .map(|o| {
                    o.checkpoint
                        .as_deref()
                        .expect("base level captures checkpoints")
                })
                .collect();
            let mut cp = vec![0.0_f32; w_start.len()];
            robust_reduce_into(agg, &cps, None, w_start, &mut agg_scratch, &mut cp);
            // The edge→aggregator upload is metered by the parent level's
            // gather (every recursion level records one gather over its
            // children), so nothing extra is recorded here.
            return (w, Some(cp));
        }

        let level = cfg.upper[li];
        // Split this subtree's edges into the child groups of the next
        // level down (contiguous, equal-sized by construction).
        let child_edges: usize = cfg.upper[li + 1..]
            .iter()
            .map(|u| u.group_size)
            .product::<usize>()
            .max(1);
        let children: Vec<&[usize]> = edges.chunks(child_edges).collect();
        let mut w = w_start.to_vec();
        let mut checkpoint: Option<Vec<f32>> = None;
        for t in 0..level.tau {
            // Broadcast down to children (intermediate link).
            meter.record_broadcast(Link::ClientEdge, w.len() as u64, children.len() as u64);
            let mut child_results = Vec::with_capacity(children.len());
            for (ci, child) in children.iter().enumerate() {
                let tag = (round_tag * level.tau + t) * children.len() + ci;
                child_results.push(self.subtree_update(
                    problem,
                    &w,
                    child,
                    li + 1,
                    cp_index,
                    tag,
                    seed,
                    meter,
                    trace,
                    fault,
                ));
            }
            // Gather child models (+ checkpoints when this is the
            // checkpointed sub-block) and aggregate.
            meter.record_gather(Link::ClientEdge, 2 * w.len() as u64, children.len() as u64);
            meter.record_round(Link::ClientEdge);
            let agg = &cfg.opts.aggregator;
            let mut agg_scratch: Vec<f32> = Vec::new();
            let base = if agg.needs_base() {
                w.clone()
            } else {
                Vec::new()
            };
            let models: Vec<&[f32]> = child_results.iter().map(|(m, _)| m.as_slice()).collect();
            robust_reduce_into(agg, &models, None, &base, &mut agg_scratch, &mut w);
            if t == cp_index[li] {
                let cps: Vec<&[f32]> = child_results
                    .iter()
                    .map(|(_, cp)| cp.as_deref().expect("children carry checkpoints"))
                    .collect();
                let mut cp = vec![0.0_f32; w.len()];
                robust_reduce_into(agg, &cps, None, &base, &mut agg_scratch, &mut cp);
                checkpoint = Some(cp);
            }
        }
        (w, checkpoint)
    }
}

impl Algorithm for MultiLevelMinimax {
    fn name(&self) -> &'static str {
        "MultiLevelMinimax"
    }

    fn run(&self, problem: &FederatedProblem, seed: u64) -> RunResult {
        let cfg = &self.cfg;
        assert!(
            cfg.opts.churn.is_none(),
            "MultiLevelMinimax does not support membership churn; use HierMinimax"
        );
        let num_groups = self.num_groups(problem);
        assert!(
            cfg.m_groups <= num_groups,
            "m_groups {} exceeds {} groups",
            cfg.m_groups,
            num_groups
        );
        let per_group = cfg.edges_per_group();
        let d = problem.num_params();
        let n0 = problem.clients_per_edge();
        let meter = CommMeter::new();
        let trace = cfg.opts.make_trace();
        let mut history = History::default();
        let mut avg_w = IterateAverage::new(d);
        let mut avg_p = IterateAverage::new(num_groups);

        let mut w = problem
            .model
            .init_params(&mut StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::Init,
                0,
                0,
            )));
        let mut p = vec![1.0 / num_groups as f32; num_groups];
        let group_edges: Vec<Vec<usize>> = (0..num_groups)
            .map(|g| (g * per_group..(g + 1) * per_group).collect())
            .collect();
        let total_tau = cfg.slots_per_round();
        // Cloud-link faults (outages, message loss) act on the top-level
        // groups at level 0; client faults key on the tree depth inside
        // `subtree_update`. Intermediate links are site-local and modeled
        // as reliable.
        let fault = FaultInjector::new(seed, cfg.opts.fault.clone().with_dropout(cfg.dropout));
        let mut faults_prev = FaultStats::default();
        let mut adv_prev = hm_simnet::QuarantineStats::default();

        let resumed = ResumedRun::from_opts(&cfg.opts, "MultiLevelMinimax", seed, cfg.rounds);
        let start_round = match &resumed {
            Some(rr) => {
                w.clone_from(&rr.w);
                p.clone_from(&rr.p);
                avg_w = rr.avg_w.clone();
                avg_p = rr.avg_p.clone();
                history = rr.history.clone();
                meter.restore(&rr.comm);
                fault.restore(&rr.faults);
                faults_prev = rr.faults;
                if let Some(bytes) = rr.snap.extra(crate::checkpoint::QUARANTINE_SECTION) {
                    let (_, adv) = crate::checkpoint::decode_quarantine(bytes)
                        .unwrap_or_else(|e| panic!("cannot resume: {e}"));
                    fault.restore_adversary(&adv);
                    adv_prev = adv;
                }
                rr.start_round
            }
            None => 0,
        };
        let mut comm_prev = meter.snapshot();

        let tel = &cfg.opts.telemetry;
        let run_timer = tel.timer();
        // The weighted top-level groups play the edge-area role here, so
        // they are what `n_edges` (and the `p` vectors below) count.
        emit_preamble(
            tel,
            resumed.as_ref(),
            "MultiLevelMinimax",
            cfg.rounds,
            num_groups,
            d,
            seed,
        );
        cfg.opts.emit_aggregator_summary();
        let ckpt = CheckpointCtx::new(&cfg.opts, "MultiLevelMinimax", seed, cfg.rounds, true);

        let prof = &cfg.opts.profile;
        // ClientEdge traffic spreads over every disjoint bottom-level
        // network: one per edge area across all sampled groups.
        let edge_areas = (cfg.m_groups * per_group).max(1);
        for k in start_round..cfg.rounds {
            tel.record(|| TelemetryEvent::RoundStart { round: k });
            let round_timer = tel.timer();
            let phase1_timer = tel.timer();
            let round_span = prof.start();
            let sampling_span = prof.start();
            // --- Phase 1: weighted top-level sampling + recursive update.
            let mut e_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
            let p64: Vec<f64> = p.iter().map(|&x| f64::from(x).max(0.0)).collect();
            let sampled = sample_edges_weighted(&p64, cfg.m_groups, &mut e_rng);
            trace.record(|| Event::Phase1EdgesSampled {
                round: k,
                edges: sampled.clone(),
            });
            let (distinct, counts) = multiplicities(&sampled);

            // Checkpoint index: one coordinate per upper level plus (c2, c1).
            let mut c_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::Checkpoint, k as u64, 0));
            let mut cp_index: Vec<usize> = cfg.upper.iter().map(|u| c_rng.below(u.tau)).collect();
            let c1 = c_rng.below(cfg.tau1);
            let c2 = c_rng.below(cfg.tau2);
            cp_index.push(c1);
            cp_index.push(c2);
            trace.record(|| Event::CheckpointSampled { round: k, c1, c2 });
            // The reported (c1, c2) is the base-level coordinate of the
            // checkpoint; the upper-level coordinates stay internal.
            tel.record(|| TelemetryEvent::Phase1Sampled {
                round: k,
                edges: sampled.clone(),
                checkpoint: Some((c1, c2)),
            });
            prof.record(tel, Phase::Phase1Sampling, Some(k), None, sampling_span);

            // Cloud-link fault pipeline on the sampled top-level groups:
            // outage filter, then downlink deliveries with metered retries.
            let payload_down = d as u64 + cp_index.len() as u64;
            let mut active: Vec<usize> = Vec::with_capacity(distinct.len());
            let mut active_counts: Vec<usize> = Vec::with_capacity(distinct.len());
            for (&g, &c) in distinct.iter().zip(&counts) {
                if fault.edge_out(k as u64, 0, g) {
                    record_edge_fault(&trace, tel, k, 0, g, FaultKind::EdgeOutage, 0);
                } else {
                    active.push(g);
                    active_counts.push(c);
                }
            }
            meter.record_broadcast(Link::EdgeCloud, payload_down, active.len() as u64);
            trace.record(|| Event::CloudBroadcast {
                round: k,
                recipients: active.clone(),
            });
            let mut participants: Vec<usize> = Vec::with_capacity(active.len());
            let mut part_counts: Vec<usize> = Vec::with_capacity(active.len());
            let mut retries = 0u64;
            let retry_span = prof.start();
            for (&g, &c) in active.iter().zip(&active_counts) {
                let dv = fault.deliver(k as u64, 0, MsgChannel::Phase1Down, g);
                retries += u64::from(dv.attempts - 1);
                if let Some(kind) = delivery_fault_kind(dv.delivered, dv.attempts) {
                    record_edge_fault(&trace, tel, k, 0, g, kind, dv.attempts as usize);
                }
                if dv.delivered {
                    participants.push(g);
                    part_counts.push(c);
                }
            }
            // Retried downlinks, metered once for the whole loop (every
            // retry carries the same payload, so the totals are exact).
            if retries > 0 {
                meter.record_broadcast(Link::EdgeCloud, payload_down, retries);
                prof.record(tel, Phase::FaultRetry, Some(k), None, retry_span);
            }
            let results: Vec<(Vec<f32>, Option<Vec<f32>>)> = participants
                .iter()
                .map(|&g| {
                    self.subtree_update(
                        problem,
                        &w,
                        &group_edges[g],
                        0,
                        &cp_index,
                        k * num_groups + g,
                        seed,
                        &meter,
                        &trace,
                        &fault,
                    )
                })
                .collect();
            // Uplink deliveries: every attempt transmits (first attempts
            // in the base gather, retries here).
            let mut reported: Vec<usize> = Vec::with_capacity(participants.len());
            let mut retries = 0u64;
            let retry_span = prof.start();
            for (i, &g) in participants.iter().enumerate() {
                let dv = fault.deliver(k as u64, 0, MsgChannel::Phase1Up, g);
                retries += u64::from(dv.attempts - 1);
                if let Some(kind) = delivery_fault_kind(dv.delivered, dv.attempts) {
                    record_edge_fault(&trace, tel, k, 0, g, kind, dv.attempts as usize);
                }
                if dv.delivered {
                    reported.push(i);
                }
            }
            if retries > 0 {
                meter.record_gather(Link::EdgeCloud, 2 * d as u64, retries);
                prof.record(tel, Phase::FaultRetry, Some(k), None, retry_span);
            }
            meter.record_gather(Link::EdgeCloud, 2 * d as u64, participants.len() as u64);
            meter.record_round(Link::EdgeCloud);

            // Aggregation over the surviving reports, weights renormalized
            // (fault-free the denominator is exactly m_groups); a fully
            // failed round keeps w^(k) bit-identically.
            let agg_span = prof.start();
            let mut w_checkpoint = vec![0.0_f32; d];
            if reported.is_empty() {
                w_checkpoint.copy_from_slice(&w);
            } else {
                let m_reported: usize = reported.iter().map(|&i| part_counts[i]).sum();
                let weights: Vec<f64> = reported
                    .iter()
                    .map(|&i| part_counts[i] as f64 / m_reported as f64)
                    .collect();
                let models: Vec<&[f32]> =
                    reported.iter().map(|&i| results[i].0.as_slice()).collect();
                let base_w = if cfg.opts.aggregator.needs_base() {
                    w.clone()
                } else {
                    Vec::new()
                };
                let mut agg_scratch: Vec<f32> = Vec::new();
                robust_reduce_into(
                    &cfg.opts.aggregator,
                    &models,
                    Some(&weights),
                    &base_w,
                    &mut agg_scratch,
                    &mut w,
                );
                let cps: Vec<&[f32]> = reported
                    .iter()
                    .map(|&i| results[i].1.as_deref().expect("groups carry checkpoints"))
                    .collect();
                robust_reduce_into(
                    &cfg.opts.aggregator,
                    &cps,
                    Some(&weights),
                    &base_w,
                    &mut agg_scratch,
                    &mut w_checkpoint,
                );
            }
            prof.record(tel, Phase::Aggregation, Some(k), None, agg_span);
            trace.record(|| Event::GlobalAggregation { round: k });
            trace.record(|| Event::GlobalModel {
                round: k,
                w: w.clone(),
            });
            tel.record(|| TelemetryEvent::Phase1Done {
                round: k,
                elapsed_s: phase1_timer.elapsed_s(),
            });

            // --- Phase 2: uniform group sampling, loss estimation, ascent.
            let phase2_timer = tel.timer();
            let dual_span = prof.start();
            let mut u_rng = StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::LossEstSampling,
                k as u64,
                u64::MAX,
            ));
            let u_set = sample_edges_uniform(num_groups, cfg.m_groups, &mut u_rng);
            trace.record(|| Event::Phase2EdgesSampled {
                round: k,
                edges: u_set.clone(),
            });
            // Outage + downlink-delivery filter for the Phase-2 estimate
            // request; the scalar uplink rides the reliable control channel.
            let live: Vec<usize> = u_set
                .iter()
                .copied()
                .filter(|&g| {
                    if fault.edge_out(k as u64, 0, g) {
                        record_edge_fault(&trace, tel, k, 0, g, FaultKind::EdgeOutage, 0);
                        false
                    } else {
                        true
                    }
                })
                .collect();
            meter.record_broadcast(Link::EdgeCloud, d as u64, live.len() as u64);
            let mut est: Vec<usize> = Vec::with_capacity(live.len());
            let mut retries = 0u64;
            let retry_span = prof.start();
            for &g in &live {
                let dv = fault.deliver(k as u64, 0, MsgChannel::Phase2Down, g);
                retries += u64::from(dv.attempts - 1);
                if let Some(kind) = delivery_fault_kind(dv.delivered, dv.attempts) {
                    record_edge_fault(&trace, tel, k, 0, g, kind, dv.attempts as usize);
                }
                if dv.delivered {
                    est.push(g);
                }
            }
            if retries > 0 {
                meter.record_broadcast(Link::EdgeCloud, d as u64, retries);
                prof.record(tel, Phase::FaultRetry, Some(k), None, retry_span);
            }
            meter.record_broadcast(
                Link::ClientEdge,
                d as u64,
                (est.len() * per_group * n0) as u64,
            );
            let topo = problem.topology();
            let group_losses: Vec<f64> = cfg.opts.parallelism.map_ref(&est, |&g| {
                let mut total = 0.0_f64;
                for &e in &group_edges[g] {
                    for c in 0..n0 {
                        let client = topo.client_id(e, c);
                        let mut rng = StreamRng::for_key(StreamKey::new(
                            seed,
                            Purpose::LossEstSampling,
                            k as u64,
                            client as u64,
                        ));
                        total += estimate_loss(
                            &*problem.model,
                            problem.client_data(e, c),
                            &w_checkpoint,
                            cfg.loss_batch,
                            &mut rng,
                        );
                    }
                }
                total / (per_group * n0) as f64
            });
            meter.record_gather(Link::ClientEdge, 1, (est.len() * per_group * n0) as u64);
            meter.record_round(Link::ClientEdge);
            meter.record_gather(Link::EdgeCloud, 1, est.len() as u64);

            // Failed groups contribute v_g = 0: their weight coordinate is
            // simply not pushed this round; the projection keeps p ∈ P.
            let mut v = vec![0.0_f32; num_groups];
            let scale = num_groups as f64 / cfg.m_groups as f64;
            for (&g, &l) in est.iter().zip(&group_losses) {
                v[g] = (scale * l) as f32;
            }
            projected_ascent_step(&mut p, &v, cfg.eta_p * total_tau as f32, &problem.p_domain);
            prof.record(tel, Phase::DualUpdate, Some(k), None, dual_span);
            trace.record(|| Event::WeightUpdate {
                round: k,
                p: p.clone(),
            });
            tel.record(|| TelemetryEvent::DualUpdate {
                round: k,
                edges: est.clone(),
                losses: group_losses.clone(),
                p: p.clone(),
                elapsed_s: phase2_timer.elapsed_s(),
            });
            if fault.is_active() {
                let fnow = fault.stats();
                let fd = fnow.since(&faults_prev);
                tel.record(|| TelemetryEvent::FaultSummary {
                    round: k,
                    crashes: fd.crashes,
                    outages: fd.outages,
                    retries: fd.retries,
                    gave_up: fd.gave_up,
                    deadline_missed: fd.deadline_missed,
                    backoff_s: fd.backoff_s,
                    straggler_slots: fd.straggler_slots,
                });
                faults_prev = fnow;
            }
            let adv_now = fault.adversary_stats();
            if fault.has_adversary() {
                let ad = adv_now.since(&adv_prev);
                trace.record(|| Event::AdversaryRound {
                    round: k,
                    corrupted: ad.corrupted_updates,
                    attack: cfg.opts.fault.attack.as_str(),
                });
                tel.record_unsequenced(|| TelemetryEvent::Adversary {
                    round: k,
                    corrupted: ad.corrupted_updates,
                    attack: cfg.opts.fault.attack.as_str().to_string(),
                });
            }
            adv_prev = adv_now;
            let comm_now = meter.snapshot();
            trace.record(|| Event::RoundComm {
                round: k,
                delta: comm_now.since(&comm_prev),
            });
            let slots_done = (k + 1) * total_tau;
            let fcum = fault.stats();
            tel.record(|| TelemetryEvent::RoundEnd {
                round: k,
                slots: slots_done,
                comm_delta: comm_now.since(&comm_prev),
                comm_total: comm_now,
                sim_s: tel.sim_seconds(&comm_now, slots_done, edge_areas)
                    + tel.fault_seconds(fcum.straggler_slots, fcum.backoff_s),
                elapsed_s: round_timer.elapsed_s(),
            });
            comm_prev = comm_now;
            prof.record(tel, Phase::Round, Some(k), None, round_span);

            finish_round(
                problem,
                &cfg.opts,
                &mut history,
                &mut avg_w,
                &mut avg_p,
                k,
                cfg.rounds,
                total_tau,
                comm_now,
                &w,
                p.clone(),
            );
            ckpt.after_round(
                k,
                &w,
                &p,
                &avg_w,
                &avg_p,
                &history,
                comm_now,
                fcum,
                if fault.has_adversary() {
                    vec![(
                        crate::checkpoint::QUARANTINE_SECTION.to_string(),
                        crate::checkpoint::encode_quarantine(&[], &adv_now),
                    )]
                } else {
                    vec![]
                },
            );
        }

        let comm_final = meter.snapshot();
        let faults_final = fault.stats();
        let total_slots = cfg.rounds * total_tau;
        cfg.opts.profile.emit_summary(tel);
        tel.record(|| TelemetryEvent::RunEnd {
            rounds: cfg.rounds,
            slots: total_slots,
            comm_total: comm_final,
            sim_s: tel.sim_seconds(
                &comm_final,
                total_slots,
                (cfg.m_groups * cfg.edges_per_group()).max(1),
            ) + tel.fault_seconds(faults_final.straggler_slots, faults_final.backoff_s),
            elapsed_s: run_timer.elapsed_s(),
        });
        tel.flush();

        RunResult {
            final_w: w,
            avg_w: avg_w.mean(),
            final_p: p.clone(),
            avg_p: avg_p.mean(),
            history,
            comm: comm_final,
            trace,
            faults: faults_final,
            quarantine: fault.adversary_stats(),
            churn: hm_simnet::ChurnStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;
    use hm_simnet::Parallelism;

    fn quick_cfg(upper: Vec<UpperLevel>, m: usize) -> MultiLevelConfig {
        MultiLevelConfig {
            rounds: 4,
            tau1: 2,
            tau2: 2,
            upper,
            m_groups: m,
            eta_w: 0.1,
            eta_p: 0.01,
            batch_size: 2,
            loss_batch: 4,
            dropout: 0.0,
            opts: RunOpts {
                eval_every: 1,
                parallelism: Parallelism::Sequential,
                trace: true,
                ..Default::default()
            },
        }
    }

    #[test]
    fn four_layer_runs_and_accounts_slots() {
        // 4 edges grouped 2-per-region → 2 regions; τ_region = 2.
        let sc = tiny_problem(4, 2, 51);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let cfg = quick_cfg(
            vec![UpperLevel {
                group_size: 2,
                tau: 2,
            }],
            2,
        );
        let alg = MultiLevelMinimax::new(cfg.clone());
        assert_eq!(alg.num_groups(&fp), 2);
        let r = alg.run(&fp, 3);
        // slots per round = τ1 τ2 τ_region = 8.
        assert_eq!(r.history.rounds.last().unwrap().slots_done, 4 * 8);
        // One cloud round per training round.
        assert_eq!(r.comm.cloud_rounds(), 4);
        // p over regions (2 of them), still a distribution.
        assert_eq!(r.final_p.len(), 2);
        let sum: f32 = r.final_p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn five_layer_runs() {
        // 8 edges → regions of 2 → super-regions of 2 regions = 2 groups.
        let sc = tiny_problem(8, 2, 52);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let cfg = quick_cfg(
            vec![
                UpperLevel {
                    group_size: 2,
                    tau: 2,
                }, // super-region level
                UpperLevel {
                    group_size: 2,
                    tau: 3,
                }, // region level
            ],
            2,
        );
        let alg = MultiLevelMinimax::new(cfg);
        assert_eq!(alg.num_groups(&fp), 2);
        let r = alg.run(&fp, 5);
        // slots/round = 2·2·3·2 = 24.
        assert_eq!(r.history.rounds.last().unwrap().slots_done, 4 * 24);
        assert_eq!(r.comm.cloud_rounds(), 4);
    }

    #[test]
    fn no_upper_levels_matches_hierminimax_structure() {
        // With upper = [], groups are single edges and the protocol is the
        // plain 3-layer HierMinimax: same slot accounting and cloud rounds.
        let sc = tiny_problem(3, 2, 53);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let cfg = quick_cfg(vec![], 2);
        let alg = MultiLevelMinimax::new(cfg);
        assert_eq!(alg.num_groups(&fp), 3);
        let r = alg.run(&fp, 7);
        assert_eq!(r.history.rounds.last().unwrap().slots_done, 4 * 4);
        assert_eq!(r.comm.cloud_rounds(), 4);
        assert_eq!(r.final_p.len(), 3);
    }

    #[test]
    fn training_reduces_objective() {
        let sc = tiny_problem(4, 2, 54);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w0 = vec![0.0; fp.num_params()];
        let uniform = vec![0.5_f32, 0.5];
        let mut cfg = quick_cfg(
            vec![UpperLevel {
                group_size: 2,
                tau: 2,
            }],
            2,
        );
        cfg.rounds = 25;
        let r = MultiLevelMinimax::new(cfg).run(&fp, 9);
        // Compare the group-mixture objective before/after.
        let group_loss = |w: &[f32]| -> f64 {
            let l = fp.edge_losses(w);
            0.5 * (l[0] + l[1]) / 2.0 + 0.5 * (l[2] + l[3]) / 2.0
        };
        let before = {
            let _ = &uniform;
            group_loss(&w0)
        };
        assert!(group_loss(&r.final_w) < before * 0.8);
    }

    #[test]
    fn deterministic_across_parallelism() {
        let sc = tiny_problem(4, 2, 55);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let mut cfg = quick_cfg(
            vec![UpperLevel {
                group_size: 2,
                tau: 2,
            }],
            2,
        );
        cfg.opts.trace = false;
        let a = MultiLevelMinimax::new(cfg.clone()).run(&fp, 11);
        cfg.opts.parallelism = Parallelism::Rayon;
        let b = MultiLevelMinimax::new(cfg).run(&fp, 11);
        assert_eq!(a.final_w, b.final_w);
        assert_eq!(a.final_p, b.final_p);
    }

    #[test]
    #[should_panic(expected = "do not divide")]
    fn indivisible_grouping_panics() {
        let sc = tiny_problem(3, 2, 56);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let cfg = quick_cfg(
            vec![UpperLevel {
                group_size: 2,
                tau: 2,
            }],
            1,
        );
        let _ = MultiLevelMinimax::new(cfg).run(&fp, 0);
    }
}
