//! The distributed optimization algorithms.
//!
//! - [`HierMinimax`] — the paper's contribution (Algorithm 1): three-layer
//!   minimax with multi-step local SGD, multi-step client-edge aggregation,
//!   checkpoint-based edge-weight updates, and partial participation.
//! - [`MultiLevelMinimax`] — the paper's §3 generalisation to arbitrary
//!   hierarchy depth (clients → edges → regions → … → cloud).
//! - Baselines, exactly the four the evaluation compares against (§6):
//!   [`FedAvg`] (two-layer minimization, multi-step), [`StochasticAfl`]
//!   (two-layer minimax, single-step), [`Drfa`] (two-layer minimax,
//!   multi-step), and [`HierFavg`] (three-layer minimization).
//!
//! ## Communication-round convention
//!
//! Following the paper's framing (cloud connectivity is the scarce
//! resource), "communication rounds" counts synchronisation rounds on
//! cloud-terminating links ([`CommStats::cloud_rounds`]): exactly one per
//! training round for every method — the O(1)-per-round accounting behind
//! Table 1's `Θ(T^{1−α})` edge-cloud complexity. Weight-update exchanges
//! (DRFA's checkpoint round, HierMinimax's Phase 2) share the round's
//! exchange window; their payloads are still metered in the float/message
//! counters. Client-edge aggregations are metered on the `ClientEdge` link
//! and visible in [`CommStats::total_rounds`] and the float counters, but
//! do not count toward the headline metric.

mod churnctl;
mod drfa;
mod fedavg;
mod fedprox;
mod flat_common;
mod hier_common;
mod hierfavg;
mod hierminimax;
mod multilevel;
mod overselect;
mod qffl;

pub use drfa::{Drfa, DrfaConfig};
pub use fedavg::{FedAvg, FedAvgConfig};
pub use fedprox::{FedProx, FedProxConfig};
pub use hierfavg::{HierFavg, HierFavgConfig};
pub use hierminimax::{HierMinimax, HierMinimaxConfig, WeightUpdateModel};
pub use multilevel::{MultiLevelConfig, MultiLevelMinimax, UpperLevel};
pub use overselect::{OverselectConfig, OverselectMinimax, OverselectResult};
pub use qffl::{QFedAvg, QfflConfig};

use crate::history::History;
use crate::metrics::evaluate;
use crate::problem::FederatedProblem;
use hm_simnet::trace::Trace;
use hm_simnet::{
    ChurnPlan, ChurnStats, CommStats, ExecEngine, FaultPlan, FaultStats, Parallelism,
    QuarantineStats,
};
use hm_telemetry::{Phase, Profiler, Telemetry, TelemetryEvent};
use hm_tensor::Aggregator;

mod afl;
pub use afl::{AflConfig, StochasticAfl};

/// Options shared by every algorithm runner.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Evaluate on test data every `eval_every` rounds (`0` = only after
    /// the final round). The final round is always evaluated.
    pub eval_every: usize,
    /// Client/edge execution mode. The default resolves from the
    /// `HM_PARALLELISM` environment variable (see
    /// [`Parallelism::from_env`]), which is how CI runs the whole suite
    /// under both executors.
    pub parallelism: Parallelism,
    /// Collect a protocol [`Trace`] (off by default; used by tests).
    pub trace: bool,
    /// Structured run telemetry (disabled by default; see `hm-telemetry`
    /// and DESIGN.md §10). A disabled handle costs one branch per
    /// round-boundary event and cannot perturb the run.
    pub telemetry: Telemetry,
    /// Deterministic fault injection (see `hm_simnet::fault` and
    /// DESIGN.md §11). The default all-zero plan makes no RNG draws, so a
    /// fault-capable run with zero rates is bit-identical to a fault-free
    /// one. Hierarchical configs fold their legacy `dropout` knob into the
    /// plan's `client_crash` (the plan wins when both are set); flat
    /// two-layer baselines ignore the plan.
    pub fault: FaultPlan,
    /// Round scheduling engine for the hierarchical algorithms (see
    /// `hm_simnet::ExecEngine` and DESIGN.md §7). [`ExecEngine::Chained`]
    /// (the default) runs each edge's `τ2` blocks as one task chain;
    /// [`ExecEngine::Barrier`] is the pre-chain per-block fork/join
    /// scheduler, kept as the benchmarking baseline. Both are bit-identical
    /// (asserted by `tests/determinism.rs`). Flat baselines, which have no
    /// block structure, ignore this.
    pub engine: ExecEngine,
    /// Crash-consistent checkpointing: where/how often to write snapshots
    /// and, optionally, a snapshot to resume from (see `hm-checkpoint` and
    /// DESIGN.md §12). The default neither writes nor resumes.
    pub checkpoint: crate::checkpoint::CheckpointOpts,
    /// Per-phase wall-clock profiling (disabled by default; see
    /// `hm_telemetry::profile` and DESIGN.md §13). Spans and the end-of-run
    /// summary are emitted *unsequenced* through the telemetry handle, so
    /// enabling profiling cannot perturb the sequenced event stream, the
    /// trained bits, or checkpoint/resume splices (`tests/profile.rs`).
    pub profile: Profiler,
    /// Client→edge (and edge→cloud) reduction rule (see
    /// `hm_tensor::robust` and DESIGN.md §14). The default
    /// [`Aggregator::Mean`] is the frozen historical path, bit-identical
    /// to pre-robust builds; the robust rules bound the influence of
    /// Byzantine uploads. Flat two-layer baselines ignore this.
    pub aggregator: Aggregator,
    /// Update-norm quarantine trigger threshold in standard deviations
    /// (`0.0` = disabled, the default). When positive, the hierarchical
    /// runs z-score each reporting client's mean per-block upload norm
    /// every round and bench outliers for [`RunOpts::quarantine_window`]
    /// rounds.
    pub quarantine_z: f64,
    /// Rounds a quarantined client sits out after being flagged.
    pub quarantine_window: usize,
    /// Deterministic membership churn (see `hm_simnet::churn` and
    /// DESIGN.md §15): clients leave/join mid-run and edge servers fail
    /// permanently with their clients re-homed onto survivors. The
    /// default zero-rate plan makes no RNG draws and takes the frozen
    /// legacy paths everywhere, so churn-capable runs with churn off are
    /// bit-identical to pre-churn builds. Only the three-layer
    /// hierarchical runs (HierMinimax, HierFAVG) support churn; the
    /// multi-level and flat runners reject or ignore an active plan.
    pub churn: ChurnPlan,
    /// Abort cap on consecutive stale rounds (rounds in which every
    /// sampled edge failed to report, leaving the global model untouched).
    /// `0` (the default) preserves the legacy behaviour of looping on the
    /// stale model forever; a positive cap makes
    /// [`Algorithm::try_run`] return
    /// [`RunError::StaleRoundsExceeded`] once that many stale rounds
    /// occur back to back.
    pub max_stale_rounds: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            eval_every: 10,
            parallelism: Parallelism::from_env(),
            trace: false,
            telemetry: Telemetry::disabled(),
            fault: FaultPlan::default(),
            engine: ExecEngine::default(),
            checkpoint: crate::checkpoint::CheckpointOpts::default(),
            profile: Profiler::disabled(),
            aggregator: Aggregator::Mean,
            quarantine_z: 0.0,
            quarantine_window: 0,
            churn: ChurnPlan::default(),
            max_stale_rounds: 0,
        }
    }
}

impl RunOpts {
    /// Whether round `k` (0-based) of `rounds` total should be evaluated.
    pub fn should_eval(&self, k: usize, rounds: usize) -> bool {
        let last = k + 1 == rounds;
        last || (self.eval_every > 0 && (k + 1).is_multiple_of(self.eval_every))
    }

    /// Build the trace handle for a run.
    pub fn make_trace(&self) -> Trace {
        if self.trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        }
    }

    /// Emit the one-shot unsequenced `aggregator_summary` telemetry event.
    /// A no-op for the default `mean` rule, so robust-off streams are
    /// byte-identical to historical ones.
    pub(crate) fn emit_aggregator_summary(&self) {
        if self.aggregator != Aggregator::Mean {
            self.telemetry
                .record_unsequenced(|| TelemetryEvent::AggregatorSummary {
                    aggregator: self.aggregator.as_str().to_string(),
                    param: self.aggregator.param(),
                });
        }
    }
}

/// Output of one algorithm run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final global model `w^(K)`.
    pub final_w: Vec<f32>,
    /// Running average of the per-round global models — the practical proxy
    /// for Theorem 1's time-averaged iterate `ŵ` used by the duality-gap
    /// evaluation.
    pub avg_w: Vec<f32>,
    /// Final edge weights (per edge area; two-layer minimax methods report
    /// their client weights summed per edge, minimization methods report
    /// the uniform vector).
    pub final_p: Vec<f32>,
    /// Running average of the per-round edge weights (`p̂` in Theorem 1).
    pub avg_p: Vec<f32>,
    /// Per-round history (communication, weights, periodic evaluations).
    pub history: History,
    /// Final cumulative communication counters.
    pub comm: CommStats,
    /// Protocol trace (empty unless requested in [`RunOpts`]).
    pub trace: Trace,
    /// Cumulative injected-fault bookkeeping (all zeros for fault-free
    /// runs and for the flat baselines, which ignore the fault plan).
    pub faults: FaultStats,
    /// Cumulative Byzantine-adversary bookkeeping: corrupted uploads,
    /// quarantined clients, and quarantine-excluded upload slots (all
    /// zeros when the adversary and quarantine are off).
    pub quarantine: QuarantineStats,
    /// Cumulative membership-churn bookkeeping: joins, leaves, permanent
    /// edge failures, re-homed and stranded clients (all zeros when the
    /// churn plan is inert or the runner does not support churn).
    pub churn: ChurnStats,
}

/// A typed abort from a run loop (see [`Algorithm::try_run`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The run exceeded [`RunOpts::max_stale_rounds`] consecutive rounds
    /// in which no sampled edge reported, so the global model was stuck
    /// on its stale value with no progress possible.
    StaleRoundsExceeded {
        /// The round (0-based) at which the cap was breached.
        round: usize,
        /// Consecutive stale rounds observed, including this one.
        consecutive: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::StaleRoundsExceeded {
                round,
                consecutive,
                limit,
            } => write!(
                f,
                "aborted at round {round}: {consecutive} consecutive stale rounds \
                 (no sampled edge reported) exceeded the max_stale_rounds cap of {limit}"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// A distributed algorithm that solves (or approximates) problem (3).
pub trait Algorithm {
    /// Short name used in experiment tables ("HierMinimax", "DRFA", …).
    fn name(&self) -> &'static str;

    /// Run the algorithm on a problem with a master seed.
    ///
    /// # Panics
    /// Panics if the run hits a typed abort condition (see
    /// [`Algorithm::try_run`] for the non-panicking form).
    fn run(&self, problem: &FederatedProblem, seed: u64) -> RunResult;

    /// Fallible form of [`Algorithm::run`]: runners with abort conditions
    /// (the hierarchical loops' `max_stale_rounds` cap) return a typed
    /// [`RunError`] instead of panicking. The default forwards to `run`,
    /// which never aborts for the other algorithms.
    fn try_run(&self, problem: &FederatedProblem, seed: u64) -> Result<RunResult, RunError> {
        Ok(self.run(problem, seed))
    }
}

/// Running f64 accumulator for iterate averaging (`ŵ`, `p̂`).
#[derive(Debug, Clone)]
pub(crate) struct IterateAverage {
    sum: Vec<f64>,
    count: usize,
}

impl IterateAverage {
    pub(crate) fn new(dim: usize) -> Self {
        Self {
            sum: vec![0.0; dim],
            count: 0,
        }
    }

    pub(crate) fn add(&mut self, x: &[f32]) {
        assert_eq!(x.len(), self.sum.len());
        for (s, &v) in self.sum.iter_mut().zip(x) {
            *s += f64::from(v);
        }
        self.count += 1;
    }

    pub(crate) fn mean(&self) -> Vec<f32> {
        let n = self.count.max(1) as f64;
        self.sum.iter().map(|&s| (s / n) as f32).collect()
    }

    /// Raw accumulator state `(sum, count)`, for checkpointing.
    pub(crate) fn parts(&self) -> (&[f64], u64) {
        (&self.sum, self.count as u64)
    }

    /// Rebuild from checkpointed accumulator state.
    pub(crate) fn from_parts(sum: Vec<f64>, count: u64) -> Self {
        Self {
            sum,
            count: count as usize,
        }
    }
}

/// Shared end-of-round bookkeeping: push a history record (evaluating if
/// scheduled) and fold the iterates into the running averages.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_round(
    problem: &FederatedProblem,
    opts: &RunOpts,
    history: &mut History,
    avg_w: &mut IterateAverage,
    avg_p: &mut IterateAverage,
    round: usize,
    rounds_total: usize,
    slots_per_round: usize,
    comm: CommStats,
    w: &[f32],
    p_per_edge: Vec<f32>,
) {
    avg_w.add(w);
    avg_p.add(&p_per_edge);
    let eval = if opts.should_eval(round, rounds_total) {
        let eval_timer = opts.profile.start();
        let e = evaluate(problem, w, opts.parallelism);
        opts.profile
            .record(&opts.telemetry, Phase::Eval, Some(round), None, eval_timer);
        Some(e)
    } else {
        None
    };
    if let Some(e) = &eval {
        opts.telemetry.record(|| TelemetryEvent::Eval {
            round,
            average: e.average,
            worst: e.worst,
            variance_pp: e.variance_pp,
            per_edge_accuracy: e.per_edge_accuracy.clone(),
        });
    }
    history.push(crate::history::RoundRecord {
        round,
        slots_done: (round + 1) * slots_per_round,
        comm,
        p: p_per_edge,
        eval,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_schedule() {
        let opts = RunOpts {
            eval_every: 5,
            ..Default::default()
        };
        assert!(!opts.should_eval(0, 100));
        assert!(opts.should_eval(4, 100)); // round 5
        assert!(opts.should_eval(99, 100)); // final
        let only_final = RunOpts {
            eval_every: 0,
            ..Default::default()
        };
        assert!(!only_final.should_eval(42, 100));
        assert!(only_final.should_eval(99, 100));
    }

    #[test]
    fn iterate_average_means() {
        let mut a = IterateAverage::new(2);
        a.add(&[1.0, 0.0]);
        a.add(&[3.0, 1.0]);
        assert_eq!(a.mean(), vec![2.0, 0.5]);
    }

    #[test]
    fn iterate_average_empty_is_zero() {
        let a = IterateAverage::new(3);
        assert_eq!(a.mean(), vec![0.0; 3]);
    }
}
